"""Battery-lifetime estimation for duty-cycled far-edge deployments.

The paper's motivation is battery-operated far-edge MCUs: "preserving
energy resources becomes crucial, since ... computationally hungry
DNNs can rapidly deplete the battery" (Sec. I). This module closes
that loop: given an inference report (energy per QoS window), a duty
cycle (inferences per hour) and a battery, estimate deployment
lifetime — turning the paper's percentage savings into the unit the
deployment engineer actually cares about (extra days in the field).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.runtime import InferenceReport
from ..errors import PowerModelError


@dataclass(frozen=True)
class Battery:
    """An ideal primary cell (no self-discharge, flat voltage).

    Attributes:
        capacity_mah: rated capacity in milliamp-hours.
        voltage_v: nominal cell voltage.
        usable_fraction: fraction of the rated capacity the regulator
            can actually extract before brown-out.
    """

    capacity_mah: float = 1200.0   # a CR123A-class primary cell
    voltage_v: float = 3.0
    usable_fraction: float = 0.85

    def __post_init__(self) -> None:
        if self.capacity_mah <= 0 or self.voltage_v <= 0:
            raise PowerModelError("battery capacity/voltage must be positive")
        if not 0 < self.usable_fraction <= 1:
            raise PowerModelError("usable_fraction must be in (0, 1]")

    @property
    def usable_energy_j(self) -> float:
        """Extractable energy in joules."""
        return (
            self.capacity_mah * 1e-3 * 3600.0
            * self.voltage_v * self.usable_fraction
        )


#: ``((min_supply_v, max_sysclk_hz), ...)`` descending by voltage: the
#: board's regulator needs input headroom to hold the higher VOS core
#: scales, so a sagging supply caps the fastest usable SYSCLK.  The
#: thresholds model a 3.0 V primary-cell board; a fresh cell supports
#: the full 216 MHz grid and an almost-flat cell is pinned to the
#: lowest VOS scale.
SUPPLY_RAILS = (
    (2.9, 216e6),
    (2.7, 180e6),
    (2.5, 150e6),
    (2.3, 108e6),
    (0.0, 84e6),
)


def max_sysclk_for_voltage(
    voltage_v: float, rails=SUPPLY_RAILS
) -> float:
    """Fastest SYSCLK the supply voltage can sustain."""
    for min_v, max_hz in rails:
        if voltage_v >= min_v:
            return max_hz
    return rails[-1][1]


@dataclass(frozen=True)
class BatteryState:
    """A battery at a point along its discharge curve.

    The open-circuit voltage droops linearly with depth of discharge
    (a deliberate first-order stand-in for a real Li/MnO2 curve) and
    the loaded terminal voltage additionally drops across the internal
    resistance path.  The terminal voltage is what gates the supply
    rails: as the cell sags, :meth:`max_sysclk_hz` falls and the fleet
    governor must re-plan the device onto slower HFO choices.

    Attributes:
        battery: the cell's rated parameters.
        charge_fraction: remaining fraction of the usable capacity.
        droop_v: total open-circuit voltage droop from full to empty.
        load_drop_v: additional drop under inference load.
    """

    battery: Battery = Battery()
    charge_fraction: float = 1.0
    droop_v: float = 0.6
    load_drop_v: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 <= self.charge_fraction <= 1.0:
            raise PowerModelError("charge_fraction must be in [0, 1]")
        if self.droop_v < 0 or self.load_drop_v < 0:
            raise PowerModelError("voltage drops must be >= 0")

    @property
    def voltage_v(self) -> float:
        """Loaded terminal voltage at the current state of charge."""
        return (
            self.battery.voltage_v
            - (1.0 - self.charge_fraction) * self.droop_v
            - self.load_drop_v
        )

    @property
    def remaining_energy_j(self) -> float:
        """Usable energy left in the cell."""
        return self.charge_fraction * self.battery.usable_energy_j

    def max_sysclk_hz(self, rails=SUPPLY_RAILS) -> float:
        """Fastest SYSCLK the sagging cell can currently sustain."""
        return max_sysclk_for_voltage(self.voltage_v, rails)

    def discharged(self, energy_j: float) -> "BatteryState":
        """State after drawing ``energy_j`` from the cell (floored at
        empty)."""
        if energy_j < 0:
            raise PowerModelError("energy_j must be >= 0")
        usable = self.battery.usable_energy_j
        drop = energy_j / usable if usable > 0 else 1.0
        return BatteryState(
            battery=self.battery,
            charge_fraction=max(0.0, self.charge_fraction - drop),
            droop_v=self.droop_v,
            load_drop_v=self.load_drop_v,
        )


@dataclass(frozen=True)
class DutyCycle:
    """How often the node wakes up to run an inference window.

    Attributes:
        windows_per_hour: QoS windows executed per hour.
        sleep_power_w: board power between windows (deep sleep / RTC
            standby -- well below even the clock-gated idle).
    """

    windows_per_hour: float = 60.0
    sleep_power_w: float = 0.25e-3

    def __post_init__(self) -> None:
        if self.windows_per_hour < 0:
            raise PowerModelError("windows_per_hour must be >= 0")
        if self.sleep_power_w < 0:
            raise PowerModelError("sleep_power_w must be >= 0")


@dataclass(frozen=True)
class LifetimeEstimate:
    """Projected deployment lifetime."""

    hours: float
    energy_per_hour_j: float
    active_share: float

    @property
    def days(self) -> float:
        """Lifetime in days."""
        return self.hours / 24.0


def estimate_lifetime(
    battery: Battery,
    report: InferenceReport,
    duty_cycle: DutyCycle,
) -> LifetimeEstimate:
    """Project battery lifetime for a deployment running ``report``'s
    schedule at the given duty cycle.

    Each hour spends ``windows_per_hour`` QoS windows at the report's
    measured window energy, and the remaining time asleep.

    Raises:
        PowerModelError: if the duty cycle does not fit in an hour
            (windows longer than their period).
    """
    window_s = (
        report.qos_s if report.qos_s is not None else report.latency_s
    )
    active_s = duty_cycle.windows_per_hour * window_s
    if active_s > 3600.0:
        raise PowerModelError(
            f"{duty_cycle.windows_per_hour:.0f} windows of "
            f"{window_s * 1e3:.1f} ms exceed one hour"
        )
    energy_active = duty_cycle.windows_per_hour * report.energy_j
    energy_sleep = (3600.0 - active_s) * duty_cycle.sleep_power_w
    energy_per_hour = energy_active + energy_sleep
    if energy_per_hour == 0.0:
        raise PowerModelError("duty cycle consumes no energy")
    return LifetimeEstimate(
        hours=battery.usable_energy_j / energy_per_hour,
        energy_per_hour_j=energy_per_hour,
        active_share=active_s / 3600.0,
    )
