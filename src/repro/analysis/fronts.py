"""Pareto-front data export.

Dumps the per-layer solution clouds / Pareto fronts the DSE produced
(the data behind the paper's Fig. 4 scatter and Step 2B) as CSV, for
external plotting or archival next to the deployment plan.
"""

from __future__ import annotations

import csv
import io
import pathlib
from typing import Dict, Sequence, Union

from ..dse.explorer import SolutionPoint

CSV_HEADER = (
    "node_id",
    "layer_name",
    "layer_kind",
    "granularity",
    "hfo_mhz",
    "latency_us",
    "energy_uj",
)


def fronts_csv(fronts: Dict[int, Sequence[SolutionPoint]]) -> str:
    """Render per-layer solution points as CSV text.

    Accepts either full clouds or Pareto-pruned fronts (any mapping of
    node id to :class:`SolutionPoint` sequences, e.g.
    ``OptimizationResult.pareto_fronts``).
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(CSV_HEADER)
    for node_id in sorted(fronts):
        for point in fronts[node_id]:
            writer.writerow(
                (
                    node_id,
                    point.layer_name,
                    point.layer_kind.value,
                    point.granularity,
                    f"{point.hfo.sysclk_hz / 1e6:.1f}",
                    f"{point.latency_s * 1e6:.3f}",
                    f"{point.energy_j * 1e6:.4f}",
                )
            )
    return buffer.getvalue()


def write_fronts_csv(
    fronts: Dict[int, Sequence[SolutionPoint]],
    path: Union[str, pathlib.Path],
) -> None:
    """Write the per-layer solution points to a CSV file."""
    pathlib.Path(path).write_text(fronts_csv(fronts))
