"""The paper's Sec. II-A addition-loop microbenchmark.

To characterize clock configurations, the paper runs "repetitive
addition operations within a loop" and records board power per
(HSE, PLLM, PLLN) tuple.  This module reproduces that workload on the
simulated board: a pure-compute segment of ``iterations`` add
operations, priced under any clock configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..clock.configs import ClockConfig
from ..errors import ShapeError
from ..mcu.board import Board
from ..mcu.core import SegmentWorkload
from ..power.model import PowerState

#: Cycles per loop iteration: one add plus the loop compare/branch.
CYCLES_PER_ITERATION = 3.0


@dataclass(frozen=True)
class MicrobenchResult:
    """Measured execution of the addition loop under one clock config."""

    config: ClockConfig
    iterations: int
    latency_s: float
    energy_j: float

    @property
    def power_w(self) -> float:
        """Average board power during the loop."""
        if self.latency_s == 0.0:
            return 0.0
        return self.energy_j / self.latency_s


def run_addition_loop(
    board: Board,
    config: ClockConfig,
    iterations: int = 1_000_000,
) -> MicrobenchResult:
    """Run the addition microbenchmark under ``config``.

    Args:
        board: the simulated board.
        config: clock configuration to characterize.
        iterations: loop trip count.

    Raises:
        ShapeError: for a non-positive iteration count.
    """
    if iterations <= 0:
        raise ShapeError(f"iterations must be positive, got {iterations}")
    workload = SegmentWorkload(
        cpu_cycles=iterations * CYCLES_PER_ITERATION
    )
    latency = board.core.segment_time_s(workload, config.sysclk_hz)
    power = board.power_model.power(config, PowerState.ACTIVE_COMPUTE)
    return MicrobenchResult(
        config=config,
        iterations=iterations,
        latency_s=latency,
        energy_j=latency * power,
    )
