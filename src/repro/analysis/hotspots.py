"""Hotspot identification (paper Step 1A).

The methodology's first action is to "identify the CNN model's most
computationally-intensive and time-consuming layers" (Fig. 3, 1A)
before applying DAE.  This helper ranks a model's layers by their
predicted latency/energy at the baseline 216 MHz clock, so users can
see where the optimization leverage is before running the full DSE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..clock.configs import max_performance_config
from ..dse.explorer import LayerCostModel
from ..engine.cost import TraceBuilder, TraceParams
from ..mcu.board import Board
from ..nn.graph import Model
from ..nn.layers.base import LayerKind


@dataclass(frozen=True)
class Hotspot:
    """One layer's baseline cost."""

    node_id: int
    layer_name: str
    layer_kind: LayerKind
    latency_s: float
    energy_j: float
    macs: int
    latency_share: float
    supports_dae: bool


def identify_hotspots(
    board: Board,
    model: Model,
    top_k: Optional[int] = None,
    trace_params: Optional[TraceParams] = None,
) -> List[Hotspot]:
    """Rank conv-family layers by baseline (216 MHz, fused) latency.

    Args:
        board: the simulated board.
        model: the model to analyze.
        top_k: return only the ``top_k`` most expensive layers (all
            when omitted).
        trace_params: access-pattern constants.

    Returns:
        Hotspots in descending latency order, each annotated with its
        share of the total conv-layer latency.
    """
    tracer = TraceBuilder(board, trace_params)
    pricer = LayerCostModel(board)
    clock = max_performance_config()
    lfo = clock  # fused pricing: memory phases never run at LFO here
    rows = []
    for node in model.conv_nodes():
        trace = tracer.build(model, node, 0)
        latency, energy = pricer.price(
            trace, clock, lfo, assume_relock=False
        )
        rows.append(
            (
                node,
                latency,
                energy,
                node.layer.macs(*model.input_shapes_of(node)),
            )
        )
    total_latency = sum(latency for _, latency, _, _ in rows) or 1.0
    rows.sort(key=lambda row: row[1], reverse=True)
    hotspots = [
        Hotspot(
            node_id=node.node_id,
            layer_name=node.layer.name,
            layer_kind=node.layer.kind,
            latency_s=latency,
            energy_j=energy,
            macs=macs,
            latency_share=latency / total_latency,
            supports_dae=node.layer.supports_dae,
        )
        for node, latency, energy, macs in rows
    ]
    if top_k is not None:
        hotspots = hotspots[:top_k]
    return hotspots
