"""Schedule/figure analysis helpers and the Sec. II-A microbenchmark."""

from .battery import (
    SUPPLY_RAILS,
    Battery,
    BatteryState,
    DutyCycle,
    LifetimeEstimate,
    estimate_lifetime,
    max_sysclk_for_voltage,
)
from .microbench import MicrobenchResult, run_addition_loop
from .sweep import QoSSweepRow, qos_energy_sweep, saturation_slack
from .timeline import (
    TimelineEvent,
    timeline_csv,
    timeline_events,
    write_timeline_csv,
)
from .fronts import fronts_csv, write_fronts_csv
from .gantt import render_gantt
from .hotspots import Hotspot, identify_hotspots
from .figures import (
    frequency_histogram,
    granularity_histogram,
    mean_frequency_hz,
    share_at_frequency,
    share_at_granularity,
    share_at_or_below_frequency,
)

__all__ = [
    "SUPPLY_RAILS",
    "Battery",
    "BatteryState",
    "max_sysclk_for_voltage",
    "DutyCycle",
    "LifetimeEstimate",
    "estimate_lifetime",
    "TimelineEvent",
    "timeline_csv",
    "timeline_events",
    "write_timeline_csv",
    "MicrobenchResult",
    "run_addition_loop",
    "QoSSweepRow",
    "qos_energy_sweep",
    "saturation_slack",
    "fronts_csv",
    "write_fronts_csv",
    "render_gantt",
    "Hotspot",
    "identify_hotspots",
    "frequency_histogram",
    "granularity_histogram",
    "mean_frequency_hz",
    "share_at_frequency",
    "share_at_granularity",
    "share_at_or_below_frequency",
]
