"""Execution-timeline export.

Flattens an :class:`~repro.engine.runtime.InferenceReport`'s energy
ledger into an ordered timeline of (start, duration, layer, category,
power) events, and writes it as CSV — the raw material for the kind of
power-over-time plots the paper's Figs. 4-6 are built from, and a
practical debugging artifact when a schedule behaves unexpectedly.
"""

from __future__ import annotations

import csv
import io
import pathlib
from dataclasses import dataclass
from typing import List, Union

from ..engine.runtime import InferenceReport
from ..power.energy import EnergyCategory


@dataclass(frozen=True)
class TimelineEvent:
    """One homogeneous interval of the execution, with absolute time."""

    start_s: float
    duration_s: float
    label: str
    category: EnergyCategory
    power_w: float

    @property
    def end_s(self) -> float:
        """Interval end time."""
        return self.start_s + self.duration_s

    @property
    def energy_j(self) -> float:
        """Interval energy."""
        return self.duration_s * self.power_w


def timeline_events(report: InferenceReport) -> List[TimelineEvent]:
    """The report's ledger as absolute-time events, in order."""
    events: List[TimelineEvent] = []
    now = 0.0
    for interval in report.account.intervals:
        events.append(
            TimelineEvent(
                start_s=now,
                duration_s=interval.duration_s,
                label=interval.label,
                category=interval.category,
                power_w=interval.power_w,
            )
        )
        now += interval.duration_s
    return events


CSV_HEADER = ("start_s", "duration_s", "label", "category", "power_w",
              "energy_j")


def timeline_csv(report: InferenceReport) -> str:
    """Render the timeline as CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(CSV_HEADER)
    for event in timeline_events(report):
        writer.writerow(
            (
                f"{event.start_s:.9f}",
                f"{event.duration_s:.9f}",
                event.label,
                event.category.value,
                f"{event.power_w:.6f}",
                f"{event.energy_j:.9e}",
            )
        )
    return buffer.getvalue()


def write_timeline_csv(
    report: InferenceReport, path: Union[str, pathlib.Path]
) -> None:
    """Write the timeline CSV to ``path``."""
    pathlib.Path(path).write_text(timeline_csv(report))
