"""Fleet work-queue: fan the planning pipeline across a worker pool.

The scheduler owns one fleet's shared pricing state (traces, time
decompositions, replayed schedules -- see :mod:`repro.fleet.pricing`)
and builds one :class:`~repro.pipeline.DAEDVFSPipeline` per distinct
board fingerprint, wired into that shared state.  Devices then flow
through a :class:`concurrent.futures.ThreadPoolExecutor`: every worker
optimizes + deploys its device on the device's pipeline, and all
cross-device reuse happens through the lock-protected caches.

Two executions of the same fleet produce identical results regardless
of worker count or scheduling order: per-device computations are
independent, shared caches publish canonical values with
``setdefault``, and results are reported in device-id order.

The ``share=False`` mode prices every device from scratch on a private
pipeline (the PR-1 single-device cost, N times) -- it exists as the
honest baseline the fleet benchmark compares against.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..dse.space import DesignSpace, paper_design_space
from ..engine.cost import TraceParams
from ..engine.runtime import InferenceReport
from ..errors import (
    ClockSwitchError,
    FaultInjectionError,
    ReproError,
    SensorReadError,
    WatchdogResetError,
)
from ..faults.plan import FaultPlan, PLAN_STAGE
from ..mcu.board import Board, make_nucleo_f767zi
from ..nn.graph import Model
from ..obs.audit import get_audit_log
from ..obs.series import SeriesStore
from ..obs.tracing import span, wrap
from ..optimize.qos import QoSLevel
from ..pipeline import DAEDVFSPipeline, OptimizationResult
from .pricing import (
    FleetSharedState,
    ReplayingRuntime,
    SharedComponentExplorer,
)
from .variation import DeviceProfile

#: Failures worth retrying: the transient hardware faults.  Everything
#: else (config errors, solver failures, poisoned models) is
#: deterministic -- retrying would reproduce it, so the device goes
#: straight to the error/quarantine path.
TRANSIENT_ERRORS = (
    ClockSwitchError,
    WatchdogResetError,
    SensorReadError,
    FaultInjectionError,
)


@dataclass
class _BoardGroup:
    """Per-board-target pricing state of a heterogeneous fleet.

    Attributes:
        board: the target's nominal (unperturbed) anchor board.
        space: the target's canonical design space.
        shared: the target's fleet-shared pricing state.
        nominal: pipeline on the anchor board; new device pipelines of
            this target warm-start their timing-only caches from it.
    """

    board: Board
    space: DesignSpace
    shared: FleetSharedState
    nominal: Optional[DAEDVFSPipeline] = None


@dataclass
class DeviceResult:
    """Planning outcome for one device.

    Attributes:
        profile: the device this result belongs to.
        optimized: the full optimization result (plan, fronts, budget).
        report: the plan deployed over one QoS window on this device.
        error: failure description when planning raised (the fleet
            keeps going; the report counts failures).
        attempts: planning attempts consumed (1 without faults).
        quarantined: the device exhausted its retry budget (or failed
            persistently) and was pulled from the fleet.
    """

    profile: DeviceProfile
    optimized: Optional[OptimizationResult] = None
    report: Optional[InferenceReport] = None
    error: Optional[str] = None
    attempts: int = 1
    quarantined: bool = False

    @property
    def device_id(self) -> int:
        """The device's stable fleet index."""
        return self.profile.device_id


class FleetScheduler:
    """Plans a heterogeneous fleet against one model and QoS setting.

    Args:
        model: the network every device deploys.
        qos_level: latency budget relative to the TinyEngine baseline
            (exactly one of ``qos_level``/``qos_s``).
        qos_s: absolute latency budget in seconds.
        base_board: nominal board the design space is derived from.
            One *canonical* space serves the whole fleet -- the space
            prunes iso-frequency configs with the power model, so
            deriving it per device would fragment every shared cache
            (and real deployments ship one frequency grid, not one per
            unit).
        trace_params: access-pattern constants.
        solver / dp_resolution / max_refinements: forwarded to each
            device pipeline.
        max_workers: thread-pool width for :meth:`run_pooled`.
        share: wire devices into the fleet-shared pricing state.  Off,
            every device pays the full single-device planning cost on
            a private pipeline (the benchmark's serial baseline).
        fault_plan: optional :class:`~repro.faults.plan.FaultPlan`;
            every device deploys under its own deterministic fault
            stream (spawn-keyed by device id, so results are invariant
            to worker scheduling).
        max_plan_attempts: planning attempts per device before it is
            quarantined.  Only transient hardware faults are retried.
        plan_backoff_s: base of the exponential backoff slept between
            attempts (0.0, the default, retries immediately -- real
            wall-clock sleeps would only slow the simulation down).
    """

    def __init__(
        self,
        model: Model,
        qos_level: Optional[QoSLevel] = None,
        qos_s: Optional[float] = None,
        base_board: Optional[Board] = None,
        trace_params: Optional[TraceParams] = None,
        solver: str = "dp",
        dp_resolution: int = 4000,
        max_refinements: int = 3,
        max_workers: int = 4,
        share: bool = True,
        fault_plan: Optional[FaultPlan] = None,
        max_plan_attempts: int = 3,
        plan_backoff_s: float = 0.0,
    ):
        if (qos_level is None) == (qos_s is None):
            raise ReproError("provide exactly one of qos_level or qos_s")
        if max_workers < 1:
            raise ReproError("max_workers must be >= 1")
        if max_plan_attempts < 1:
            raise ReproError("max_plan_attempts must be >= 1")
        if plan_backoff_s < 0:
            raise ReproError("plan_backoff_s must be >= 0")
        self.model = model
        self.qos_level = qos_level
        self.qos_s = qos_s
        self.base_board = base_board or make_nucleo_f767zi()
        self.trace_params = trace_params
        self.solver = solver
        self.dp_resolution = dp_resolution
        self.max_refinements = max_refinements
        self.max_workers = max_workers
        self.share = share
        self.fault_plan = fault_plan
        self.max_plan_attempts = max_plan_attempts
        self.plan_backoff_s = plan_backoff_s
        #: Device ids pulled from the fleet after exhausting retries
        #: (sorted; stable across worker scheduling).
        self.quarantined: List[int] = []
        self._quarantine_lock = threading.Lock()
        # Heterogeneous fleets carry several board targets; pricing
        # state only shares across devices of the *same* target, so
        # each board name gets its own group: a nominal anchor board,
        # the board's canonical design space, the shared pricing state
        # and the nominal pipeline new device pipelines warm-start
        # from.  The base board's group is the historical scheduler
        # state, and ``space`` / ``shared`` keep aliasing it.
        base_group = _BoardGroup(
            board=self.base_board,
            space=self._space_for(self.base_board),
            shared=FleetSharedState(self.base_board, trace_params),
        )
        base_group.nominal = self._build_pipeline(self.base_board, base_group)
        self.space: DesignSpace = base_group.space
        self.shared = base_group.shared
        self._nominal = base_group.nominal
        self._groups: Dict[str, _BoardGroup] = {
            self.base_board.name: base_group
        }
        self._groups_lock = threading.Lock()
        self._pipelines: Dict[Tuple, DAEDVFSPipeline] = {
            self.base_board.fingerprint(): self._nominal
        }
        self._pipelines_lock = threading.Lock()

    # -- pipeline wiring ---------------------------------------------------------

    @staticmethod
    def _space_for(board: Board) -> DesignSpace:
        """One canonical design space per board target.

        The space prunes iso-frequency configs with the *nominal*
        power model; deriving it per perturbed device would fragment
        every shared cache (and real deployments ship one frequency
        grid per SKU, not one per unit).
        """
        if board.space_factory is not None:
            return board.space_factory(board)
        return paper_design_space(board.power_model)

    def _group_for(self, board: Board) -> "_BoardGroup":
        """The pricing group of a device's board target (by name)."""
        with self._groups_lock:
            group = self._groups.get(board.name)
        if group is not None:
            return group
        nominal_board = self._nominal_board_for(board)
        group = _BoardGroup(
            board=nominal_board,
            space=self._space_for(nominal_board),
            shared=FleetSharedState(nominal_board, self.trace_params),
        )
        group.nominal = self._build_pipeline(nominal_board, group)
        with self._groups_lock:
            return self._groups.setdefault(board.name, group)

    @staticmethod
    def _nominal_board_for(board: Board) -> Board:
        """The unperturbed anchor of a device's target.

        Registered names rebuild the spec's nominal board (datasheet
        power constants); unregistered boards anchor on the device
        itself.
        """
        from ..boards.registry import get_spec
        from ..errors import BoardError

        try:
            return get_spec(board.name).build()
        except BoardError:
            return board

    def _build_pipeline(
        self, board: Board, group: "_BoardGroup"
    ) -> DAEDVFSPipeline:
        if not self.share:
            return DAEDVFSPipeline(
                board=board,
                space=group.space,
                trace_params=self.trace_params,
                solver=self.solver,
                dp_resolution=self.dp_resolution,
                max_refinements=self.max_refinements,
            )
        explorer = SharedComponentExplorer(board, group.space, group.shared)
        runtime = ReplayingRuntime(board, group.shared, self.trace_params)
        return DAEDVFSPipeline(
            board=board,
            space=group.space,
            trace_params=self.trace_params,
            solver=self.solver,
            dp_resolution=self.dp_resolution,
            max_refinements=self.max_refinements,
            explorer=explorer,
            runtime=runtime,
        )

    def pipeline_for(self, profile: DeviceProfile) -> DAEDVFSPipeline:
        """The device's pipeline (shared across equal-fingerprint boards).

        Pipeline caches embed the power model through their prices, so
        only devices whose boards fingerprint equal may share one;
        distinct devices of one target still share everything
        timing-side through their group's fleet state.
        """
        if not self.share:
            return self._build_pipeline(
                profile.board, self._group_for(profile.board)
            )
        key = profile.board.fingerprint()
        with self._pipelines_lock:
            pipeline = self._pipelines.get(key)
        if pipeline is not None:
            return pipeline
        group = self._group_for(profile.board)
        pipeline = self._build_pipeline(profile.board, group)
        pipeline.warm_start_from(group.nominal, self.model)
        with self._pipelines_lock:
            return self._pipelines.setdefault(key, pipeline)

    # -- execution ---------------------------------------------------------------

    def plan_device(self, profile: DeviceProfile) -> DeviceResult:
        """Optimize + deploy one device (errors captured, not raised).

        No exception escapes: a failure of *any* class -- ReproError or
        an unexpected bug in a device's models -- is captured as
        :attr:`DeviceResult.error` so one poisoned device cannot kill a
        pooled fleet run.  Transient hardware faults
        (:data:`TRANSIENT_ERRORS`) are retried with exponential backoff
        up to ``max_plan_attempts``; a device that exhausts its budget
        (or fails persistently under injection) is quarantined.
        """
        with span("fleet.plan_device", device_id=profile.device_id):
            return self._plan_device(profile)

    def _plan_device(self, profile: DeviceProfile) -> DeviceResult:
        fault_clock = None
        if self.fault_plan is not None and self.fault_plan.any_faults:
            fault_clock = self.fault_plan.clock_for(
                profile.device_id, stage=PLAN_STAGE
            )
        last_error: Optional[str] = None
        transient = False
        attempt = 0
        while attempt < self.max_plan_attempts:
            attempt += 1
            try:
                pipeline = self.pipeline_for(profile)
                optimized = pipeline.optimize(
                    self.model, qos_level=self.qos_level, qos_s=self.qos_s
                )
                report = pipeline.deploy(
                    self.model, optimized.plan, fault_clock=fault_clock
                )
                return DeviceResult(
                    profile=profile, optimized=optimized, report=report,
                    attempts=attempt,
                )
            except TRANSIENT_ERRORS as err:
                last_error = f"{type(err).__name__}: {err}"
                transient = True
                if attempt < self.max_plan_attempts and self.plan_backoff_s:
                    time.sleep(self.plan_backoff_s * 2 ** (attempt - 1))
            except Exception as err:  # noqa: BLE001 -- isolate the pool
                last_error = f"{type(err).__name__}: {err}"
                transient = False
                break
        # Retry budget exhausted (transient) or persistent failure:
        # pull the device out of the fleet.
        quarantined = fault_clock is not None or transient
        if quarantined:
            with self._quarantine_lock:
                self.quarantined.append(profile.device_id)
                self.quarantined.sort()
            get_audit_log().record(
                "fleet.scheduler",
                "quarantine",
                device_id=profile.device_id,
                attempts=attempt,
                transient=transient,
                error=last_error,
            )
        return DeviceResult(
            profile=profile, error=last_error, attempts=attempt,
            quarantined=quarantined,
        )

    def run_serial(
        self,
        profiles: Sequence[DeviceProfile],
        series: Optional[SeriesStore] = None,
    ) -> List[DeviceResult]:
        """Plan every device on the calling thread, in order.

        With ``series``, the registry is sampled after every planned
        device at the *device index* timestamp -- the fleet path's
        injectable clock is its own progress, never the wall clock --
        so rollups over the series answer "how did cache hit rates
        evolve as the fleet filled in", deterministically.
        """
        results = []
        for index, profile in enumerate(profiles):
            results.append(self.plan_device(profile))
            if series is not None:
                series.sample(float(index + 1))
        results.sort(key=lambda r: r.device_id)
        return results

    def run_pooled(
        self,
        profiles: Sequence[DeviceProfile],
        series: Optional[SeriesStore] = None,
    ) -> List[DeviceResult]:
        """Plan the fleet on the worker pool; results in device order.

        A pooled run samples ``series`` only at the barrier: mid-pool
        snapshots would order on thread scheduling, and a
        scheduling-dependent series is exactly what the store exists
        to rule out.
        """
        # wrap() carries the caller's span/correlation context into the
        # worker threads (identity while tracing is off).
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            results = list(pool.map(wrap(self.plan_device), profiles))
        results.sort(key=lambda r: r.device_id)
        if series is not None:
            series.sample(float(len(profiles)))
        return results

    def run(
        self,
        profiles: Sequence[DeviceProfile],
        pooled: bool = True,
        series: Optional[SeriesStore] = None,
    ) -> List[DeviceResult]:
        """Plan the fleet, pooled or serial."""
        if pooled:
            return self.run_pooled(profiles, series=series)
        return self.run_serial(profiles, series=series)
