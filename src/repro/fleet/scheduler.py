"""Fleet work-queue: fan the planning pipeline across a worker pool.

The scheduler owns one fleet's shared pricing state (traces, time
decompositions, replayed schedules -- see :mod:`repro.fleet.pricing`)
and builds one :class:`~repro.pipeline.DAEDVFSPipeline` per distinct
board fingerprint, wired into that shared state.  Devices then flow
through a :class:`concurrent.futures.ThreadPoolExecutor`: every worker
optimizes + deploys its device on the device's pipeline, and all
cross-device reuse happens through the lock-protected caches.

Two executions of the same fleet produce identical results regardless
of worker count or scheduling order: per-device computations are
independent, shared caches publish canonical values with
``setdefault``, and results are reported in device-id order.

The ``share=False`` mode prices every device from scratch on a private
pipeline (the PR-1 single-device cost, N times) -- it exists as the
honest baseline the fleet benchmark compares against.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..dse.space import DesignSpace, paper_design_space
from ..engine.cost import TraceParams
from ..engine.runtime import InferenceReport
from ..errors import ReproError
from ..mcu.board import Board, make_nucleo_f767zi
from ..nn.graph import Model
from ..optimize.qos import QoSLevel
from ..pipeline import DAEDVFSPipeline, OptimizationResult
from .pricing import (
    FleetSharedState,
    ReplayingRuntime,
    SharedComponentExplorer,
)
from .variation import DeviceProfile


@dataclass
class DeviceResult:
    """Planning outcome for one device.

    Attributes:
        profile: the device this result belongs to.
        optimized: the full optimization result (plan, fronts, budget).
        report: the plan deployed over one QoS window on this device.
        error: failure description when planning raised (the fleet
            keeps going; the report counts failures).
    """

    profile: DeviceProfile
    optimized: Optional[OptimizationResult] = None
    report: Optional[InferenceReport] = None
    error: Optional[str] = None

    @property
    def device_id(self) -> int:
        """The device's stable fleet index."""
        return self.profile.device_id


class FleetScheduler:
    """Plans a heterogeneous fleet against one model and QoS setting.

    Args:
        model: the network every device deploys.
        qos_level: latency budget relative to the TinyEngine baseline
            (exactly one of ``qos_level``/``qos_s``).
        qos_s: absolute latency budget in seconds.
        base_board: nominal board the design space is derived from.
            One *canonical* space serves the whole fleet -- the space
            prunes iso-frequency configs with the power model, so
            deriving it per device would fragment every shared cache
            (and real deployments ship one frequency grid, not one per
            unit).
        trace_params: access-pattern constants.
        solver / dp_resolution / max_refinements: forwarded to each
            device pipeline.
        max_workers: thread-pool width for :meth:`run_pooled`.
        share: wire devices into the fleet-shared pricing state.  Off,
            every device pays the full single-device planning cost on
            a private pipeline (the benchmark's serial baseline).
    """

    def __init__(
        self,
        model: Model,
        qos_level: Optional[QoSLevel] = None,
        qos_s: Optional[float] = None,
        base_board: Optional[Board] = None,
        trace_params: Optional[TraceParams] = None,
        solver: str = "dp",
        dp_resolution: int = 4000,
        max_refinements: int = 3,
        max_workers: int = 4,
        share: bool = True,
    ):
        if (qos_level is None) == (qos_s is None):
            raise ReproError("provide exactly one of qos_level or qos_s")
        if max_workers < 1:
            raise ReproError("max_workers must be >= 1")
        self.model = model
        self.qos_level = qos_level
        self.qos_s = qos_s
        self.base_board = base_board or make_nucleo_f767zi()
        self.trace_params = trace_params
        self.solver = solver
        self.dp_resolution = dp_resolution
        self.max_refinements = max_refinements
        self.max_workers = max_workers
        self.share = share
        self.space: DesignSpace = paper_design_space(
            self.base_board.power_model
        )
        self.shared = FleetSharedState(self.base_board, trace_params)
        # The nominal pipeline anchors the timing-only results every
        # device inherits (baseline latency, fixed overhead).
        self._nominal = self._build_pipeline(self.base_board)
        self._pipelines: Dict[Tuple, DAEDVFSPipeline] = {
            self.base_board.fingerprint(): self._nominal
        }
        self._pipelines_lock = threading.Lock()

    # -- pipeline wiring ---------------------------------------------------------

    def _build_pipeline(self, board: Board) -> DAEDVFSPipeline:
        if not self.share:
            return DAEDVFSPipeline(
                board=board,
                space=self.space,
                trace_params=self.trace_params,
                solver=self.solver,
                dp_resolution=self.dp_resolution,
                max_refinements=self.max_refinements,
            )
        explorer = SharedComponentExplorer(board, self.space, self.shared)
        runtime = ReplayingRuntime(board, self.shared, self.trace_params)
        return DAEDVFSPipeline(
            board=board,
            space=self.space,
            trace_params=self.trace_params,
            solver=self.solver,
            dp_resolution=self.dp_resolution,
            max_refinements=self.max_refinements,
            explorer=explorer,
            runtime=runtime,
        )

    def pipeline_for(self, profile: DeviceProfile) -> DAEDVFSPipeline:
        """The device's pipeline (shared across equal-fingerprint boards).

        Pipeline caches embed the power model through their prices, so
        only devices whose boards fingerprint equal may share one;
        distinct devices still share everything timing-side through
        the fleet state.
        """
        if not self.share:
            return self._build_pipeline(profile.board)
        key = profile.board.fingerprint()
        with self._pipelines_lock:
            pipeline = self._pipelines.get(key)
        if pipeline is not None:
            return pipeline
        pipeline = self._build_pipeline(profile.board)
        pipeline.warm_start_from(self._nominal, self.model)
        with self._pipelines_lock:
            return self._pipelines.setdefault(key, pipeline)

    # -- execution ---------------------------------------------------------------

    def plan_device(self, profile: DeviceProfile) -> DeviceResult:
        """Optimize + deploy one device (errors captured, not raised)."""
        try:
            pipeline = self.pipeline_for(profile)
            optimized = pipeline.optimize(
                self.model, qos_level=self.qos_level, qos_s=self.qos_s
            )
            report = pipeline.deploy(self.model, optimized.plan)
            return DeviceResult(
                profile=profile, optimized=optimized, report=report
            )
        except ReproError as err:
            return DeviceResult(
                profile=profile, error=f"{type(err).__name__}: {err}"
            )

    def run_serial(
        self, profiles: Sequence[DeviceProfile]
    ) -> List[DeviceResult]:
        """Plan every device on the calling thread, in order."""
        results = [self.plan_device(profile) for profile in profiles]
        results.sort(key=lambda r: r.device_id)
        return results

    def run_pooled(
        self, profiles: Sequence[DeviceProfile]
    ) -> List[DeviceResult]:
        """Plan the fleet on the worker pool; results in device order."""
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            results = list(pool.map(self.plan_device, profiles))
        results.sort(key=lambda r: r.device_id)
        return results

    def run(
        self,
        profiles: Sequence[DeviceProfile],
        pooled: bool = True,
    ) -> List[DeviceResult]:
        """Plan the fleet, pooled or serial."""
        if pooled:
            return self.run_pooled(profiles)
        return self.run_serial(profiles)
