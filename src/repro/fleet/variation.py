"""Seeded per-device parameter sampling for simulated fleets.

A real deployment fleet is not N copies of the datasheet board:
process corners spread the static/leakage power, oscillator and VCO
driver strengths vary part to part, devices sit in different ambient
temperatures and start from different battery states (Bartoli et al.
2025 measure enough energy/latency spread across identical MCU SKUs to
change deployment rankings).  :func:`sample_fleet` draws that
heterogeneity reproducibly: one root seed spawns an independent
:class:`numpy.random.SeedSequence` per device, so device *k* of a
1000-device fleet sees the same perturbations whether the fleet is
sampled serially, pooled, or resampled tomorrow.

Deliberate modelling constraint: variation perturbs only the **power**
side of the board -- static power, leakage, dynamic coefficients,
ambient temperature, battery state.  Cycle counts, cache geometry,
memory timings and switch latencies are identical across the fleet
(they are design properties, not process/environment properties, to
first order).  That is what lets the fleet scheduler share traces,
time decompositions and replayed interval schedules across every
device and re-price only the energy per device.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..analysis.battery import Battery, BatteryState
from ..errors import PowerModelError
from ..mcu.board import Board, make_nucleo_f767zi
from ..power.model import PowerModelParams
from ..power.sensor import INA219Config, INA219Sensor
from ..power.thermal import ThermalModelParams


@dataclass(frozen=True)
class VariationModel:
    """Distribution parameters of the per-device perturbations.

    Multiplicative spreads are log-normal sigmas (keeps every constant
    positive); ambient temperature and battery charge draw uniformly
    from their ranges.

    Attributes:
        static_sigma: spread of the board static power.
        leakage_sigma: spread of the MCU leakage (process corner; the
            widest spread, as leakage varies exponentially with
            threshold voltage).
        k_core_sigma: spread of the core dynamic coefficient.
        k_vco_sigma: spread of the VCO dynamic coefficient.
        k_hse_sigma: spread of the HSE driver coefficient.
        ambient_low_c / ambient_high_c: uniform ambient range the
            fleet is deployed into.
        charge_low / charge_high: uniform battery state-of-charge
            range at deployment time.
    """

    static_sigma: float = 0.08
    leakage_sigma: float = 0.18
    k_core_sigma: float = 0.05
    k_vco_sigma: float = 0.06
    k_hse_sigma: float = 0.05
    ambient_low_c: float = 10.0
    ambient_high_c: float = 40.0
    charge_low: float = 0.35
    charge_high: float = 1.0

    def __post_init__(self) -> None:
        for name in (
            "static_sigma",
            "leakage_sigma",
            "k_core_sigma",
            "k_vco_sigma",
            "k_hse_sigma",
        ):
            if getattr(self, name) < 0:
                raise PowerModelError(f"{name} must be >= 0")
        if self.ambient_high_c < self.ambient_low_c:
            raise PowerModelError("ambient range is inverted")
        if not 0.0 <= self.charge_low <= self.charge_high <= 1.0:
            raise PowerModelError("charge range must be within [0, 1]")


@dataclass(frozen=True)
class DeviceProfile:
    """One simulated device of the fleet.

    Attributes:
        device_id: stable index within the fleet (ties results to the
            sampling order, not the execution order).
        board: the device's board -- nominal timing models, perturbed
            power model.
        thermal: the device's thermal network (its ambient, its
            leakage reference).
        battery: the device's battery at deployment time.
        sensor_seed: this device's private INA219 noise stream (a
            spawned child of the fleet seed; no two devices share it).
    """

    device_id: int
    board: Board
    thermal: ThermalModelParams
    battery: BatteryState
    sensor_seed: np.random.SeedSequence = field(repr=False)

    def make_sensor(
        self, config: Optional[INA219Config] = None, fault_clock=None
    ) -> INA219Sensor:
        """This device's INA219, on its own seeded noise stream.

        ``fault_clock`` optionally wires the sensor's dropout / stuck /
        NACK fault hooks (see :class:`repro.faults.plan.FaultClock`).
        """
        return INA219Sensor(
            config=config, seed=self.sensor_seed, fault_clock=fault_clock
        )


def _lognormal(rng: np.random.Generator, sigma: float) -> float:
    """Multiplicative perturbation factor with log-sigma ``sigma``."""
    if sigma == 0.0:
        return 1.0
    return float(np.exp(sigma * rng.standard_normal()))


def sample_device(
    device_id: int,
    seed_seq: np.random.SeedSequence,
    variation: VariationModel,
    base_power: PowerModelParams,
    base_battery: Battery,
    board_name: Optional[str] = None,
) -> DeviceProfile:
    """Draw one device from its private seed sequence.

    ``board_name`` selects the unit's hardware target from the board
    registry (heterogeneous fleets); ``None`` keeps the historical
    F767 path, byte-identical to pre-registry sampling.  The draw
    order is independent of the board, so device *k*'s perturbation
    stream is the same whichever target it lands on.
    """
    rng = np.random.default_rng(seed_seq)
    params = base_power.scaled(
        p_board_static_w=base_power.p_board_static_w
        * _lognormal(rng, variation.static_sigma),
        p_mcu_leakage_w=base_power.p_mcu_leakage_w
        * _lognormal(rng, variation.leakage_sigma),
        k_core_w_per_hz=base_power.k_core_w_per_hz
        * _lognormal(rng, variation.k_core_sigma),
        k_vco_w_per_hz=base_power.k_vco_w_per_hz
        * _lognormal(rng, variation.k_vco_sigma),
        k_hse_w_per_hz=base_power.k_hse_w_per_hz
        * _lognormal(rng, variation.k_hse_sigma),
    )
    ambient = float(
        rng.uniform(variation.ambient_low_c, variation.ambient_high_c)
    )
    charge = float(
        rng.uniform(variation.charge_low, variation.charge_high)
    )
    if board_name is None:
        board = make_nucleo_f767zi(power_params=params)
    else:
        from ..boards.registry import get_spec

        board = get_spec(board_name).build(power_params=params)
    thermal = ThermalModelParams(
        t_ambient_c=ambient,
        leakage_ref_w=params.p_mcu_leakage_w,
    )
    battery = BatteryState(battery=base_battery, charge_fraction=charge)
    # One child for the sensor so future per-device streams (e.g. a
    # workload-arrival process) can spawn siblings without touching it.
    sensor_seed = seed_seq.spawn(1)[0]
    return DeviceProfile(
        device_id=device_id,
        board=board,
        thermal=thermal,
        battery=battery,
        sensor_seed=sensor_seed,
    )


def sample_fleet(
    n_devices: int,
    seed: int = 0,
    variation: Optional[VariationModel] = None,
    base_power: Optional[PowerModelParams] = None,
    base_battery: Optional[Battery] = None,
    boards: Optional[Sequence[str]] = None,
) -> List[DeviceProfile]:
    """Sample a reproducible heterogeneous fleet.

    Args:
        n_devices: fleet size.
        seed: root seed; each device gets an independent spawned
            child stream, so the fleet is order-independent and
            resampling with the same seed is bit-identical.
        variation: spread parameters (defaults above).
        base_power: nominal power constants the spreads multiply.
            When ``boards`` is given and this is ``None``, each
            device's nominal constants come from its board's spec.
        base_battery: cell model every device starts from.
        boards: registry names to mix (heterogeneous fleet).  Each
            device's target is drawn from a *separate* spawned stream,
            so the per-device perturbation streams are exactly the
            ones the homogeneous fleet would see; ``None`` keeps the
            historical F767-only sampling bit-identical.

    Raises:
        PowerModelError: for a non-positive fleet size or an empty
            board mix.
    """
    if n_devices <= 0:
        raise PowerModelError("n_devices must be positive")
    variation = variation or VariationModel()
    base_battery = base_battery or Battery()
    root = np.random.SeedSequence(seed)
    children = root.spawn(n_devices)
    if boards is None:
        base = base_power or PowerModelParams()
        return [
            sample_device(i, child, variation, base, base_battery)
            for i, child in enumerate(children)
        ]
    board_list = list(boards)
    if not board_list:
        raise PowerModelError("boards must name at least one registry entry")
    from ..boards.registry import get_spec

    specs = {name: get_spec(name) for name in board_list}
    # Assignment consumes its own spawned stream (a sibling of the
    # device streams), so mixing boards never shifts the per-device
    # perturbation draws.
    assign_rng = np.random.default_rng(root.spawn(1)[0])
    assignment = [
        board_list[int(k)]
        for k in assign_rng.integers(0, len(board_list), size=n_devices)
    ]
    return [
        sample_device(
            i,
            child,
            variation,
            base_power or specs[name].base_power_params(),
            base_battery,
            board_name=name,
        )
        for i, (child, name) in enumerate(zip(children, assignment))
    ]
