"""Fleet-level aggregation of per-device planning and telemetry.

Turns a fleet run (device results from the scheduler, optional
governor telemetry) into the numbers a deployment operator reads:
energy/latency distributions across the population, the share of
devices meeting their QoS budget, how many re-plans the governor
spent, and the fleet-aggregated frequency/granularity histograms
(the Fig. 6 statistics of :mod:`repro.analysis.figures`, summed over
devices instead of layers of one device).

Everything here is deterministic: summaries are keyed and sorted by
device id, no wall-clock times enter the report, and :meth:`digest`
hashes the full-precision rows -- two runs of the same fleet must
produce the same digest, which the CLI prints and the tests pin.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..analysis.figures import frequency_histogram, granularity_histogram
from ..nn.graph import Model
from .governor import GovernorResult
from .scheduler import DeviceResult


@dataclass(frozen=True)
class DeviceSummary:
    """One device's row of the fleet report."""

    device_id: int
    energy_j: float = 0.0
    latency_s: float = 0.0
    met_qos: bool = False
    replans: int = 0
    epochs_met: int = 0
    epochs: int = 0
    converged: bool = True
    final_temperature_c: float = 0.0
    final_charge: float = 0.0
    error: Optional[str] = None
    #: Board target of heterogeneous fleets.  ``None`` (homogeneous
    #: default-board fleets) keeps the row -- and the fleet digest --
    #: byte-identical to pre-registry reports.
    board: Optional[str] = None


@dataclass
class FleetReport:
    """Aggregated outcome of one fleet run."""

    model_name: str
    qos_s: float
    summaries: List[DeviceSummary] = field(default_factory=list)
    frequency_hist: Dict[float, int] = field(default_factory=dict)
    granularity_hist: Dict[int, int] = field(default_factory=dict)

    # -- population statistics ---------------------------------------------------

    @property
    def n_devices(self) -> int:
        """Fleet size (failed devices included)."""
        return len(self.summaries)

    @property
    def planned(self) -> List[DeviceSummary]:
        """Successfully planned devices."""
        return [s for s in self.summaries if s.error is None]

    @property
    def failures(self) -> int:
        """Devices whose planning raised."""
        return sum(1 for s in self.summaries if s.error is not None)

    def _stats(self, values: Sequence[float]) -> Dict[str, float]:
        if not values:
            return {"mean": 0.0, "p50": 0.0, "p95": 0.0}
        arr = np.asarray(values, dtype=np.float64)
        return {
            "mean": float(arr.mean()),
            "p50": float(np.percentile(arr, 50)),
            "p95": float(np.percentile(arr, 95)),
        }

    @property
    def energy_stats_j(self) -> Dict[str, float]:
        """Mean/median/p95 window energy across planned devices."""
        return self._stats([s.energy_j for s in self.planned])

    @property
    def latency_stats_s(self) -> Dict[str, float]:
        """Mean/median/p95 inference latency across planned devices."""
        return self._stats([s.latency_s for s in self.planned])

    @property
    def qos_met_fraction(self) -> float:
        """Share of planned devices whose deployed window met QoS."""
        planned = self.planned
        if not planned:
            return 0.0
        return sum(1 for s in planned if s.met_qos) / len(planned)

    @property
    def converged_fraction(self) -> float:
        """Share of planned devices the governor left converged."""
        planned = self.planned
        if not planned:
            return 0.0
        return sum(1 for s in planned if s.converged) / len(planned)

    @property
    def total_replans(self) -> int:
        """Governor re-solves spent across the fleet."""
        return sum(s.replans for s in self.summaries)

    @property
    def devices_replanned(self) -> int:
        """Devices that re-planned at least once."""
        return sum(1 for s in self.summaries if s.replans > 0)

    # -- serialization -----------------------------------------------------------

    def rows(self) -> List[Dict]:
        """Canonical per-device rows (sorted, full precision).

        The ``board`` key appears only in heterogeneous fleets (any
        summary carrying a board label); homogeneous default-board
        rows keep their original shape so pre-registry digests pin.
        """
        labelled = any(s.board is not None for s in self.summaries)
        rows = []
        for s in sorted(self.summaries, key=lambda s: s.device_id):
            row = {
                "device_id": s.device_id,
                "energy_j": s.energy_j,
                "latency_s": s.latency_s,
                "met_qos": s.met_qos,
                "replans": s.replans,
                "epochs_met": s.epochs_met,
                "epochs": s.epochs,
                "converged": s.converged,
                "final_temperature_c": s.final_temperature_c,
                "final_charge": s.final_charge,
                "error": s.error,
            }
            if labelled:
                row["board"] = s.board
            rows.append(row)
        return rows

    def digest(self) -> str:
        """SHA-256 over the canonical rows -- the determinism anchor.

        ``repr`` of a float round-trips the exact binary value, so two
        runs agree on the digest iff they agree bit-for-bit on every
        device's results.
        """
        payload = json.dumps(
            {
                "model": self.model_name,
                "qos_s": repr(self.qos_s),
                "rows": [
                    {
                        k: (repr(v) if isinstance(v, float) else v)
                        for k, v in row.items()
                    }
                    for row in self.rows()
                ],
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def to_dict(self) -> Dict:
        """JSON-ready representation (aggregates + rows + digest).

        Heterogeneous fleets additionally carry a ``boards`` histogram;
        the key is absent for homogeneous default-board fleets so their
        payload shape is unchanged.
        """
        data = {
            "model": self.model_name,
            "qos_ms": self.qos_s * 1e3,
            "n_devices": self.n_devices,
            "failures": self.failures,
            "energy_mj": {
                k: v * 1e3 for k, v in self.energy_stats_j.items()
            },
            "latency_ms": {
                k: v * 1e3 for k, v in self.latency_stats_s.items()
            },
            "qos_met_fraction": self.qos_met_fraction,
            "converged_fraction": self.converged_fraction,
            "total_replans": self.total_replans,
            "devices_replanned": self.devices_replanned,
            "frequency_hist_mhz": {
                str(k): v for k, v in sorted(self.frequency_hist.items())
            },
            "granularity_hist": {
                str(k): v for k, v in sorted(self.granularity_hist.items())
            },
            "digest": self.digest(),
            "devices": self.rows(),
        }
        hist = self.board_hist()
        if hist:
            data["boards"] = hist
        return data

    def board_hist(self) -> Dict[str, int]:
        """Board-name histogram of a heterogeneous fleet ({} otherwise)."""
        hist: Dict[str, int] = {}
        for s in self.summaries:
            if s.board is not None:
                hist[s.board] = hist.get(s.board, 0) + 1
        return dict(sorted(hist.items()))

    def summary(self) -> str:
        """Multi-line human-readable fleet report."""
        e = self.energy_stats_j
        t = self.latency_stats_s
        lines = [
            f"fleet of {self.n_devices} devices, model "
            f"{self.model_name!r}, QoS {self.qos_s * 1e3:.3f} ms"
            + (f", {self.failures} failed to plan" if self.failures else ""),
            f"  window energy: mean {e['mean'] * 1e3:.4f} mJ, "
            f"p50 {e['p50'] * 1e3:.4f} mJ, p95 {e['p95'] * 1e3:.4f} mJ",
            f"  latency: mean {t['mean'] * 1e3:.3f} ms, "
            f"p50 {t['p50'] * 1e3:.3f} ms, p95 {t['p95'] * 1e3:.3f} ms",
            f"  QoS met: {self.qos_met_fraction:.1%} of devices; "
            f"governor: {self.total_replans} re-plans across "
            f"{self.devices_replanned} devices, "
            f"{self.converged_fraction:.1%} converged",
        ]
        boards = self.board_hist()
        if boards:
            mix = ", ".join(f"{name} x{n}" for name, n in boards.items())
            lines.append(f"  board mix: {mix}")
        if self.frequency_hist:
            hist = ", ".join(
                f"{mhz:g} MHz x{count}"
                for mhz, count in sorted(self.frequency_hist.items())
            )
            lines.append(f"  layer frequencies: {hist}")
        lines.append(f"  digest: {self.digest()}")
        return "\n".join(lines)


def aggregate_fleet(
    model: Model,
    qos_s: float,
    results: Sequence[DeviceResult],
    governed: Optional[Dict[int, GovernorResult]] = None,
) -> FleetReport:
    """Fold device results (and optional telemetry) into one report.

    Args:
        model: the deployed network (for the histogram helpers).
        qos_s: the fleet's latency budget.
        results: scheduler output, any order (rows are re-sorted).
        governed: per-device governor telemetry, keyed by device id;
            devices without telemetry count as converged with zero
            re-plans.
    """
    governed = governed or {}
    summaries: List[DeviceSummary] = []
    freq_hist: Dict[float, int] = {}
    gran_hist: Dict[int, int] = {}
    # Label rows with their board target only when the fleet actually
    # mixes targets beyond the default board -- homogeneous F767
    # fleets keep their pre-registry row shape and digest.
    from ..boards.registry import DEFAULT_BOARD

    labelled = any(
        result.profile.board.name != DEFAULT_BOARD for result in results
    )
    for result in results:
        device_id = result.device_id
        board_name = result.profile.board.name if labelled else None
        if result.error is not None or result.report is None:
            summaries.append(
                DeviceSummary(
                    device_id=device_id, error=result.error, board=board_name
                )
            )
            continue
        gov = governed.get(device_id)
        plan = gov.final_plan if gov is not None else result.optimized.plan
        for mhz, count in frequency_histogram(plan, model).items():
            freq_hist[mhz] = freq_hist.get(mhz, 0) + count
        for g, count in granularity_histogram(plan).items():
            gran_hist[g] = gran_hist.get(g, 0) + count
        last = gov.samples[-1] if gov is not None and gov.samples else None
        summaries.append(
            DeviceSummary(
                device_id=device_id,
                energy_j=result.report.energy_j,
                latency_s=result.report.latency_s,
                met_qos=(
                    result.report.met_qos
                    if last is None
                    else last.met_qos
                ),
                replans=gov.replans if gov is not None else 0,
                epochs_met=gov.epochs_met if gov is not None else 0,
                epochs=len(gov.samples) if gov is not None else 0,
                converged=gov.converged if gov is not None else True,
                final_temperature_c=(
                    last.temperature_c if last is not None else 0.0
                ),
                final_charge=(
                    last.charge_fraction
                    if last is not None
                    else result.profile.battery.charge_fraction
                ),
                board=board_name,
            )
        )
    summaries.sort(key=lambda s: s.device_id)
    return FleetReport(
        model_name=model.name,
        qos_s=qos_s,
        summaries=summaries,
        frequency_hist=freq_hist,
        granularity_hist=gran_hist,
    )
