"""repro.fleet -- fleet-scale deployment of DAE+DVFS plans.

Scales the single-device pipeline to a heterogeneous population:
seeded device variation (:mod:`.variation`), shared-timing pricing
(:mod:`.pricing`), a worker-pool scheduler (:mod:`.scheduler`), an
adaptive re-plan governor (:mod:`.governor`) and deterministic fleet
aggregation (:mod:`.report`).
"""

from .governor import (
    EpochSample,
    FleetGovernor,
    GovernorConfig,
    GovernorResult,
    supervise_device,
)
from .pricing import (
    FleetSharedState,
    ReplayingRuntime,
    SharedComponentExplorer,
    plan_signature,
)
from .report import DeviceSummary, FleetReport, aggregate_fleet
from .scheduler import DeviceResult, FleetScheduler
from .variation import (
    DeviceProfile,
    VariationModel,
    sample_device,
    sample_fleet,
)

__all__ = [
    "DeviceProfile",
    "DeviceResult",
    "DeviceSummary",
    "EpochSample",
    "FleetGovernor",
    "FleetReport",
    "FleetScheduler",
    "FleetSharedState",
    "GovernorConfig",
    "GovernorResult",
    "ReplayingRuntime",
    "SharedComponentExplorer",
    "VariationModel",
    "aggregate_fleet",
    "plan_signature",
    "sample_device",
    "sample_fleet",
    "supervise_device",
]
