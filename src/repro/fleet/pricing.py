"""Fleet-shared pricing: compute timing once, price power per device.

Everything expensive about planning one device -- tracing layers,
decomposing (trace, HFO) candidates into per-state times, executing
candidate schedules on the runtime -- depends only on the *timing*
side of the board, which the whole fleet shares (device variation
moves power curves, not cycle counts; see
:mod:`repro.fleet.variation`).  This module exploits that:

* :class:`SharedComponentExplorer` -- a :class:`DSEExplorer` whose
  :class:`~repro.dse.explorer.TimeComponents` decompositions live in a
  fleet-wide cache.  The first device to explore a layer pays the
  segment walk; every other device combines the cached decomposition
  with its own power vectors (one numpy pass per layer).
* :class:`ReplayingRuntime` -- a :class:`DVFSRuntime` that executes
  each distinct (model, plan) once, records the (duration, config,
  state)-tagged interval schedule, and re-prices those intervals under
  its own device's power model on every subsequent run.  Because the
  durations are shared floats and the re-pricing calls the very same
  ``power(config, state)`` the direct path uses, a replayed report is
  bit-identical to a direct execution (pinned by test).

Both caches are lock-protected with the compute-outside-the-lock /
``setdefault`` publication discipline, so a thread pool of devices can
hammer them concurrently: a duplicated computation costs time, never
correctness, and all threads converge on one canonical entry.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

from ..clock.configs import ClockConfig
from ..dse.explorer import (
    DSEExplorer,
    SolutionPoint,
    StackedComponents,
    TimeComponents,
)
from ..dse.space import DesignSpace
from ..engine.cost import TraceBuilder, TraceParams, model_fingerprint
from ..engine.runtime import DVFSRuntime, IdlePolicy, InferenceReport
from ..engine.schedule import DeploymentPlan
from ..mcu.board import Board
from ..nn.graph import Model, Node
from ..obs.registry import get_registry
from ..power.energy import EnergyAccount
from ..power.model import PowerState


def plan_signature(plan: DeploymentPlan) -> Tuple:
    """Hashable identity of a plan's schedulable decisions.

    Two plans with equal signatures execute the identical interval
    schedule (durations, configs, states), whatever board they price
    on -- the replay-cache key.
    """
    return (
        plan.model_name,
        plan.lfo,
        tuple(
            sorted(
                (node_id, lp.granularity, lp.hfo)
                for node_id, lp in plan.layer_plans.items()
            )
        ),
    )


class FleetSharedState:
    """The caches one fleet shares across all of its devices.

    Attributes:
        tracer: fleet-wide memoizing trace builder (timing-only).
        components: (model_fp, node_id, g, assume_relock) ->
            (TimeComponents, effective granularity).
        stacks: (model_fp, node_id, granularities, assume_relock) ->
            :class:`StackedComponents` packing a layer's whole sweep
            for one-pass per-device pricing.
        replays: (model_fp, plan signature, initial config) ->
            reference :class:`InferenceReport` executed without a QoS
            window (idle is charged analytically per device).
        lock: guards ``components``, ``stacks`` and ``replays``.
    """

    def __init__(
        self,
        board: Board,
        trace_params: Optional[TraceParams] = None,
    ):
        self.tracer = TraceBuilder(board, trace_params)
        self.components: Dict[Tuple, Tuple[TimeComponents, int]] = {}
        self.stacks: Dict[Tuple, StackedComponents] = {}
        self.replays: Dict[Tuple, InferenceReport] = {}
        self.lock = threading.RLock()

    def stats(self) -> Dict[str, int]:
        """Occupancy of each shared pool (for the obs registry)."""
        with self.lock:
            return {
                "components": len(self.components),
                "stacks": len(self.stacks),
                "replays": len(self.replays),
            }


class SharedComponentExplorer(DSEExplorer):
    """Explorer backed by a fleet-shared time-decomposition cache.

    Per device it owns only a :class:`LayerCostModel` (the power
    vectors); traces and :class:`TimeComponents` come from the shared
    state.  Produces bit-identical clouds to a plain
    :class:`DSEExplorer` because ``price_batch`` already factors
    through exactly these two halves.
    """

    def __init__(
        self,
        board: Board,
        space: DesignSpace,
        shared: FleetSharedState,
        granularity_fn=None,
    ):
        super().__init__(
            board, space, granularity_fn=granularity_fn,
            tracer=shared.tracer,
        )
        self._shared = shared

    def _components_for(
        self,
        model: Model,
        node: Node,
        granularity: int,
        assume_relock: bool,
    ) -> Tuple[TimeComponents, int]:
        key = (
            model_fingerprint(model),
            node.node_id,
            granularity,
            assume_relock,
        )
        shared = self._shared
        with shared.lock:
            cached = shared.components.get(key)
        if cached is not None:
            get_registry().count(
                "fleet.pricing", pool="components", event="hit"
            )
            return cached
        get_registry().count(
            "fleet.pricing", pool="components", event="miss"
        )
        trace = self.tracer.build(model, node, granularity)
        components = self.pricer.time_components_batch(
            trace, self.space.hfo_configs, self.space.lfo,
            assume_relock=assume_relock,
        )
        entry = (components, trace.granularity)
        with shared.lock:
            return shared.components.setdefault(key, entry)

    def _stacked_components(
        self,
        model: Model,
        node: Node,
        granularities: Tuple[int, ...],
        assume_relock: bool,
    ) -> StackedComponents:
        key = (
            model_fingerprint(model),
            node.node_id,
            granularities,
            assume_relock,
        )
        shared = self._shared
        with shared.lock:
            cached = shared.stacks.get(key)
        if cached is not None:
            get_registry().count(
                "fleet.pricing", pool="stacks", event="hit"
            )
            return cached
        get_registry().count(
            "fleet.pricing", pool="stacks", event="miss"
        )
        entries = [
            self._components_for(model, node, g, assume_relock)
            for g in granularities
        ]
        stacked = StackedComponents.stack(entries)
        with shared.lock:
            return shared.stacks.setdefault(key, stacked)

    def explore_layer(
        self,
        model: Model,
        node: Node,
        assume_relock: bool = False,
    ) -> List[SolutionPoint]:
        """Same contract as the base explorer, via the shared cache."""
        npu = self.board.npu
        if npu is not None and npu.supports(node.layer.kind):
            # NPU points carry no TimeComponents (nothing to decompose:
            # the latency/energy are fixed), so the shared cache buys
            # nothing -- price directly through the base explorer.
            return super().explore_layer(
                model, node, assume_relock=assume_relock
            )
        if not node.layer.supports_dae:
            granularities: Tuple = (0,)
        elif self.granularity_fn is not None:
            granularities = tuple(self.granularity_fn(model, node))
        else:
            granularities = self.space.granularities
        # Delegate validation (schedulability, granularity_fn contract)
        # to the base class by reproducing its checks cheaply: a
        # non-schedulable node or a granularity_fn omitting 0 should
        # fail identically whether or not the cache is warm.
        if granularities and 0 not in granularities:
            return super().explore_layer(
                model, node, assume_relock=assume_relock
            )
        from ..nn.layers.base import LayerKind

        if node.layer.kind not in {
            LayerKind.CONV2D,
            LayerKind.DEPTHWISE_CONV,
            LayerKind.POINTWISE_CONV,
            LayerKind.DENSE,
        }:
            return super().explore_layer(
                model, node, assume_relock=assume_relock
            )
        stacked = self._stacked_components(
            model, node, tuple(granularities), assume_relock
        )
        latencies, energies = self.pricer.price_components_stacked(
            stacked, self.space.hfo_configs, self.space.lfo
        )
        points: List[SolutionPoint] = []
        for row, effective_g in enumerate(
            stacked.effective_granularities
        ):
            for hfo, latency, energy in zip(
                self.space.hfo_configs, latencies[row], energies[row]
            ):
                points.append(
                    SolutionPoint(
                        node_id=node.node_id,
                        layer_name=node.layer.name,
                        layer_kind=node.layer.kind,
                        granularity=effective_g,
                        hfo=hfo,
                        latency_s=float(latency),
                        energy_j=float(energy),
                    )
                )
        return points


class ReplayingRuntime(DVFSRuntime):
    """Runtime that executes each distinct plan once fleet-wide.

    The first run of a (model, plan, initial config) triple executes
    on the real engine (without a QoS window) and records the tagged
    interval schedule in the shared state.  Every later run -- on any
    device -- re-prices the recorded (duration, config, state) triples
    under its own power model and charges the post-inference idle
    analytically.  Durations, latencies and switch counts are shared;
    only the watts differ.
    """

    def __init__(
        self,
        board: Board,
        shared: FleetSharedState,
        trace_params: Optional[TraceParams] = None,
    ):
        super().__init__(board, trace_params, tracer=shared.tracer)
        self._shared = shared

    def _record_for(
        self,
        model: Model,
        plan: DeploymentPlan,
        initial_config: Optional[ClockConfig],
    ) -> InferenceReport:
        shared = self._shared
        key = (
            model_fingerprint(model),
            plan_signature(plan),
            initial_config or plan.lfo,
        )
        with shared.lock:
            record = shared.replays.get(key)
        if record is None:
            get_registry().count(
                "fleet.pricing", pool="replays", event="miss"
            )
            record = super().run(
                model, plan, qos_s=None, initial_config=initial_config
            )
            with shared.lock:
                record = shared.replays.setdefault(key, record)
        else:
            get_registry().count(
                "fleet.pricing", pool="replays", event="hit"
            )
        return record

    def run(
        self,
        model: Model,
        plan: DeploymentPlan,
        qos_s: Optional[float] = None,
        idle_gated: bool = True,
        initial_config: Optional[ClockConfig] = None,
        idle_policy: Optional[IdlePolicy] = None,
        fault_clock=None,
    ) -> InferenceReport:
        if fault_clock is not None:
            # Fault-injected runs are device-specific and stateful (the
            # fault clock advances); replaying a shared fault-free
            # record would hide every injected event, so the run goes
            # straight to the native engine.
            return super().run(
                model, plan, qos_s=qos_s, idle_gated=idle_gated,
                initial_config=initial_config, idle_policy=idle_policy,
                fault_clock=fault_clock,
            )
        record = self._record_for(model, plan, initial_config)
        return self._reprice(record, plan, qos_s, idle_gated, idle_policy)

    def measure_latency_s(
        self,
        model: Model,
        plan: DeploymentPlan,
        initial_config: Optional[ClockConfig] = None,
    ) -> float:
        # Latency is timing-only, hence fleet-shared: answer straight
        # from the record without re-pricing a single interval.
        return self._record_for(model, plan, initial_config).latency_s

    def _reprice(
        self,
        record: InferenceReport,
        plan: DeploymentPlan,
        qos_s: Optional[float],
        idle_gated: bool,
        idle_policy: Optional[IdlePolicy],
    ) -> InferenceReport:
        power = self.board.power_model
        account = EnergyAccount()
        label_energy: Dict[str, float] = {}
        final_config = plan.lfo
        # A schedule touches thousands of intervals but only a handful
        # of distinct (config, state) pairs; memoizing the watt lookups
        # keeps the per-interval accumulation order (and therefore the
        # floats) untouched while dropping most of the replay cost.
        watts: Dict[Tuple, float] = {}
        for interval in record.account.intervals:
            # Every interval the runtime records is (config, state)
            # tagged; re-pricing runs the exact power() call the
            # direct path would, on the exact shared durations, so the
            # result is bit-identical to a native run on this board.
            pair = (interval.config, interval.state)
            p = watts.get(pair)
            if p is None:
                if interval.state is PowerState.NPU_ACTIVE:
                    # NPU power rides the accelerator's own rail, not
                    # the device-varied SYSCLK model: the recorded
                    # watts are already exact for every device.
                    p = interval.power_w
                else:
                    p = power.power(interval.config, interval.state)
                watts[pair] = p
            account.add(
                interval.duration_s, p, interval.category, interval.label,
                config=interval.config, state=interval.state,
            )
            label_energy[interval.label] = (
                label_energy.get(interval.label, 0.0)
                + interval.duration_s * p
            )
            final_config = interval.config
        inference_energy = account.total_energy_j
        latency = record.latency_s
        met_qos = True
        if qos_s is not None:
            met_qos = latency <= qos_s
            idle_time = max(0.0, qos_s - latency)
            if idle_policy is None:
                idle_policy = (
                    IdlePolicy.GATED if idle_gated else IdlePolicy.HOT
                )
            self._charge_idle(account, final_config, idle_policy, idle_time)
        reports = [
            type(layer)(
                node_id=layer.node_id,
                layer_name=layer.layer_name,
                layer_kind=layer.layer_kind,
                granularity=layer.granularity,
                hfo_hz=layer.hfo_hz,
                latency_s=layer.latency_s,
                energy_j=label_energy.get(layer.layer_name, 0.0),
            )
            for layer in record.layer_reports
        ]
        return InferenceReport(
            model_name=record.model_name,
            plan=plan,
            latency_s=latency,
            energy_j=account.total_energy_j,
            inference_energy_j=inference_energy,
            account=account,
            layer_reports=reports,
            relock_count=record.relock_count,
            mux_switch_count=record.mux_switch_count,
            qos_s=qos_s,
            met_qos=met_qos,
            css_events=record.css_events,
            watchdog_resets=record.watchdog_resets,
            pll_retries=record.pll_retries,
        )
