"""Adaptive per-device re-plan governor.

The MCKP plan a device ships with was priced against its power model
at deployment time.  In the field the operating point drifts: the die
heats up (leakage grows exponentially with temperature) and the
battery sags (the supply can no longer hold the top VOS scales, which
caps the usable SYSCLK).  The governor closes the loop the paper's
differential-measurement methodology opens:

1. every telemetry epoch, simulate one QoS window under the *true*
   conditions (thermal excess leakage, frequency clamping) and measure
   it with the device's own seeded INA219;
2. compare the measurement against the plan's prediction;
3. when the drift breaches the tolerance -- or the window misses its
   QoS budget outright -- **re-solve** the MCKP from the cached
   Pareto fronts, re-priced for the drifted conditions
   (:func:`repro.optimize.mckp.reprice_classes`), via
   :meth:`DAEDVFSPipeline.replan`.  No design-space re-exploration
   happens: the fronts' timing is drift-invariant, only the energy
   ranking moved.

The thermal response pushes hot devices toward *faster* schedules
(slow choices soak up more of the extra leakage joules); the battery
response pushes sagging devices onto HFOs their supply can still
hold.  Both re-converge within an epoch or two, which the fleet
report quantifies across the population.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import List, Optional

from ..analysis.battery import BatteryState
from ..engine.schedule import DeploymentPlan, LayerPlan
from ..errors import PowerModelError, ReproError, SensorReadError
from ..nn.graph import Model
from ..obs.audit import get_audit_log
from ..obs.registry import get_registry
from ..optimize.mckp import MCKPItem, reprice_classes
from ..pipeline import DAEDVFSPipeline, OptimizationResult
from ..power.energy import EnergyInterval
from ..power.model import PowerState
from ..power.sensor import INA219Config
from .variation import DeviceProfile

#: Sentinel distinguishing "use the governor's own fault clock" from an
#: explicit per-step override (including an explicit ``None``).
_UNSET = object()

#: Power states that carry the MCU leakage term (and therefore the
#: thermal excess); gated/deep-sleep states power the leaky domains
#: down.
LEAKY_STATES = frozenset(
    {
        PowerState.ACTIVE_COMPUTE,
        PowerState.ACTIVE_MEMORY,
        PowerState.IDLE,
        PowerState.SWITCHING,
    }
)


@dataclass(frozen=True)
class GovernorConfig:
    """Tuning of the re-plan loop.

    Attributes:
        epochs: telemetry epochs to simulate.
        epoch_s: sustained operation per epoch (back-to-back QoS
            windows); sets how fast temperature and battery move.
        drift_threshold: fractional measured-vs-predicted energy
            drift that triggers a re-plan.  The default sits about
            2x above the worst INA219 quantization+noise drift a
            nominal device shows (~1.5%), and below the steady-state
            thermal excess of a hot, leaky-corner device (~4%).
        max_replans: re-plan budget per device.
        sensor_config: INA219 configuration for the telemetry sensor.
        min_coverage: fraction of the window's trace time the sensor
            train must cover for the epoch's telemetry to count.
            Dropped conversions below this bar invalidate the epoch
            (the governor holds the last plan) instead of feeding a
            biased energy estimate into the drift trigger.
        widen_factor: multiplier applied to the drift tolerance per
            consecutive invalid-telemetry epoch -- after blind epochs
            the first fresh measurement is judged against a wider
            window so a momentarily stale prediction does not trigger
            a spurious re-plan.
        max_widen: cap on the accumulated widening factor.
    """

    epochs: int = 20
    epoch_s: float = 2.0
    drift_threshold: float = 0.03
    max_replans: int = 4
    sensor_config: Optional[INA219Config] = None
    min_coverage: float = 0.5
    widen_factor: float = 2.0
    max_widen: float = 8.0

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise PowerModelError("epochs must be >= 1")
        if self.epoch_s <= 0:
            raise PowerModelError("epoch_s must be positive")
        if self.drift_threshold <= 0:
            raise PowerModelError("drift_threshold must be positive")
        if self.max_replans < 0:
            raise PowerModelError("max_replans must be >= 0")
        if not 0.0 <= self.min_coverage <= 1.0:
            raise PowerModelError("min_coverage must be in [0, 1]")
        if self.widen_factor < 1.0:
            raise PowerModelError("widen_factor must be >= 1")
        if self.max_widen < 1.0:
            raise PowerModelError("max_widen must be >= 1")


@dataclass(frozen=True)
class EpochSample:
    """Telemetry of one epoch.

    ``valid`` is False when the epoch's telemetry was unusable (sensor
    NACK, stuck register, coverage below the bar, or the window itself
    failed under injected faults); measured/drift are zeroed then and
    never feed the drift trigger.
    """

    epoch: int
    measured_energy_j: float
    predicted_energy_j: float
    drift: float
    met_qos: bool
    clamped: bool
    temperature_c: float
    charge_fraction: float
    replanned: bool
    valid: bool = True
    #: Energy the window actually burned under the true conditions
    #: (thermal excess included) -- the scenario engine compares this
    #: against its clairvoyant oracle.  Zero for failed windows.
    true_energy_j: float = 0.0


@dataclass(frozen=True)
class ReplanIntent:
    """A replan the governor wants but has not applied yet.

    Produced by :meth:`FleetGovernor.step` in ``defer_replan`` mode so
    an external control plane (the scenario engine routes these through
    the serve tier's admission) can approve or shed the re-solve before
    it is applied.

    Attributes:
        device_id: the device asking to re-plan.
        epoch: the epoch index the trigger fired in.
        extra_w: thermal excess leakage the re-price must compensate.
        cap_hz: battery/brownout frequency cap in force.
        drift: the measured-vs-predicted drift that (possibly)
            triggered the request.
        reason: machine-readable trigger (``qos_miss`` / ``clamped`` /
            ``drift``); the first that applies, in that priority.
    """

    device_id: int
    epoch: int
    extra_w: float
    cap_hz: float
    drift: float
    reason: str


@dataclass
class GovernorResult:
    """Outcome of supervising one device.

    Attributes:
        profile: the supervised device.
        final_plan: the plan in force after the last epoch.
        samples: per-epoch telemetry, in order.
        replans: re-solves actually applied.
        converged: the last epoch met its QoS budget with drift inside
            the tolerance and no frequency clamping.
        invalid_epochs: epochs whose telemetry was unusable.
        css_events: CSS failsafe interventions across the epochs.
        watchdog_resets: watchdog resets survived across the epochs.
        pll_retries: PLL lock retries absorbed across the epochs.
    """

    profile: DeviceProfile
    final_plan: DeploymentPlan
    samples: List[EpochSample] = field(default_factory=list)
    replans: int = 0
    drift_threshold: float = float("inf")
    invalid_epochs: int = 0
    css_events: int = 0
    watchdog_resets: int = 0
    pll_retries: int = 0

    @property
    def converged(self) -> bool:
        last = self.samples[-1] if self.samples else None
        return bool(
            last
            and last.met_qos
            and not last.clamped
            and abs(last.drift) <= self.drift_threshold
        )

    @property
    def epochs_met(self) -> int:
        """Epochs whose window met the QoS budget."""
        return sum(1 for s in self.samples if s.met_qos)


def clamp_plan_to_cap(
    plan: DeploymentPlan, cap_hz: float, hfo_configs
) -> "tuple[DeploymentPlan, bool]":
    """Force every over-cap layer onto the fastest supplied HFO.

    This is what the hardware would do: the regulator cannot hold the
    VOS scale the plan asked for, so the runtime falls back to the
    fastest configuration the rail supports (and the schedule slows
    down accordingly -- possibly past its budget, which is the
    governor's re-plan trigger).
    """
    if all(
        lp.hfo.sysclk_hz <= cap_hz for lp in plan.layer_plans.values()
    ):
        return plan, False
    allowed = [c for c in hfo_configs if c.sysclk_hz <= cap_hz]
    if not allowed:
        # The rail sagged below even the slowest HFO (deep brownout).
        # Run at the slowest grid point rather than crashing: the
        # window will miss its budget, which is exactly the re-plan /
        # QoS-miss signal the governor acts on.
        allowed = [min(hfo_configs, key=lambda c: c.sysclk_hz)]
    fastest = max(allowed, key=lambda c: c.sysclk_hz)
    clamped_plans = {}
    for node_id, lp in plan.layer_plans.items():
        if lp.hfo.sysclk_hz <= cap_hz:
            clamped_plans[node_id] = lp
        else:
            clamped_plans[node_id] = LayerPlan(
                node_id=lp.node_id,
                granularity=lp.granularity,
                hfo=fastest,
                predicted_latency_s=lp.predicted_latency_s,
                predicted_energy_j=lp.predicted_energy_j,
            )
    return (
        DeploymentPlan(
            model_name=plan.model_name,
            lfo=plan.lfo,
            layer_plans=clamped_plans,
            qos_s=plan.qos_s,
            predicted_latency_s=plan.predicted_latency_s,
            predicted_energy_j=plan.predicted_energy_j,
        ),
        True,
    )


class FleetGovernor:
    """Supervises one device's deployed plan across telemetry epochs.

    Tolerates faulty telemetry: missing (NACKed), stuck or
    under-covered sensor readings invalidate the epoch -- the governor
    holds the last plan and judges the next fresh measurement against
    a temporarily widened drift window -- and a window that fails
    outright under injected faults is recorded as a missed, invalid
    epoch rather than killing the supervision loop.  ``fault_clock``
    is ``None`` by default, in which case every epoch is bit-identical
    to the fault-free governor.
    """

    def __init__(
        self,
        pipeline: DAEDVFSPipeline,
        profile: DeviceProfile,
        model: Model,
        optimized: OptimizationResult,
        config: Optional[GovernorConfig] = None,
        fault_clock=None,
    ):
        self.pipeline = pipeline
        self.profile = profile
        self.model = model
        self.optimized = optimized
        self.config = config or GovernorConfig()
        self.fault_clock = fault_clock
        node_ids = sorted(optimized.pareto_fronts)
        #: Device-priced MCKP classes rebuilt from the cached fronts;
        #: every re-plan re-prices THESE -- exploration never re-runs.
        self.base_classes = [
            [
                MCKPItem(
                    weight=p.latency_s, value=p.energy_j, payload=p
                )
                for p in optimized.pareto_fronts[node_id]
            ]
            for node_id in node_ids
        ]

    # -- supervision state -------------------------------------------------------

    def start(self) -> None:
        """(Re)initialize the supervision state.

        :meth:`supervise` calls this implicitly; external drivers (the
        scenario engine, tests) call it once and then drive
        :meth:`step` with injected timestamps.  Calling it again
        restarts supervision from the deployment plan with a fresh
        sensor stream, exactly like a second :meth:`supervise` call.
        """
        profile = self.profile
        self._sensor = profile.make_sensor(
            self.config.sensor_config, fault_clock=self.fault_clock
        )
        self._plan = self.optimized.plan
        self._battery = profile.battery
        self._thermal = profile.thermal
        self._temperature = self._thermal.t_ambient_c
        #: Extra leakage power the current plan's pricing already
        #: accounts for (set at re-plan time); drift is measured
        #: against prediction *including* this compensation.
        self._compensated_w = 0.0
        self._samples: List[EpochSample] = []
        self._replans = 0
        #: Consecutive epochs with unusable telemetry; widens the
        #: drift window the first fresh measurement is judged against.
        self._invalid_streak = 0
        self._invalid_epochs = 0
        self._css_events = 0
        self._watchdog_resets = 0
        self._pll_retries = 0
        self._epoch = 0
        self._pending: Optional[ReplanIntent] = None
        self._started = True

    # Read-only views the scenario engine consumes between steps.

    @property
    def battery_state(self) -> BatteryState:
        """The cell's current discharge state."""
        self._require_started()
        return self._battery

    @property
    def temperature_c(self) -> float:
        """Current junction temperature."""
        self._require_started()
        return self._temperature

    @property
    def plan(self) -> DeploymentPlan:
        """The plan currently in force."""
        self._require_started()
        return self._plan

    @property
    def epochs_run(self) -> int:
        """Epochs stepped since :meth:`start`."""
        self._require_started()
        return self._epoch

    @property
    def replans_used(self) -> int:
        """Re-solves applied since :meth:`start`."""
        self._require_started()
        return self._replans

    @property
    def pending_replan(self) -> Optional[ReplanIntent]:
        """The deferred replan awaiting :meth:`apply_replan`, if any."""
        self._require_started()
        return self._pending

    def _require_started(self) -> None:
        if not getattr(self, "_started", False):
            self.start()

    # -- external-environment hooks (scenario engine) ----------------------------

    def set_ambient(self, t_ambient_c: float) -> None:
        """Move the device into a new ambient temperature.

        Only the thermal network's relaxation target moves; the leakage
        calibration reference stays at deployment conditions, so a
        hotter ambient raises the junction trajectory and with it the
        thermal excess the governor must compensate.
        """
        self._require_started()
        self._thermal = replace(self._thermal, t_ambient_c=t_ambient_c)

    def set_battery(self, battery: BatteryState) -> None:
        """Replace the cell state (swap / recharge events)."""
        self._require_started()
        self._battery = battery

    def idle(self, duration_s: float, sleep_power_w: float = 0.25e-3) -> None:
        """Advance physics across a window-free stretch of time.

        The device sleeps: the cell drains at the sleep floor and the
        die relaxes toward its (sleep-power) steady state on the exact
        exponential solution of the RC model -- idle stretches span
        many thermal time constants, where the per-window explicit
        Euler step would be unstable.  No RNG is consumed, so idling
        never shifts the telemetry noise stream.
        """
        self._require_started()
        if duration_s < 0:
            raise PowerModelError("duration_s must be >= 0")
        thermal = self._thermal
        self._battery = self._battery.discharged(sleep_power_w * duration_s)
        t_ss = thermal.t_ambient_c + sleep_power_w * thermal.r_th_c_per_w
        decay = math.exp(-duration_s / thermal.time_constant_s)
        self._temperature = t_ss + (self._temperature - t_ss) * decay

    # -- the supervision loop ----------------------------------------------------

    def supervise(self) -> GovernorResult:
        """Run the configured epochs on the governor's own clock.

        The zero-argument path: epoch *k* is measured at
        ``k * epoch_s``, exactly the back-to-back window train the
        fleet path has always simulated.  Equivalent to ``start()``,
        ``epochs`` calls to ``step()`` and ``result()``.
        """
        self.start()
        for epoch in range(self.config.epochs):
            self.step(epoch * self.config.epoch_s)
        return self.result()

    def step(
        self,
        now: Optional[float] = None,
        fault_clock=_UNSET,
        defer_replan: bool = False,
    ) -> EpochSample:
        """Run one telemetry epoch at an injected timestamp.

        Args:
            now: absolute simulation time the epoch's measurement
                starts at; the INA219's deterministic thermal drift is
                a function of this time.  ``None`` keeps the internal
                clock (``epochs_run * epoch_s``).
            fault_clock: per-step fault stream override (the scenario
                engine stages campaign windows this way); omitted, the
                governor's own clock applies.
            defer_replan: do not apply a triggered re-plan inline;
                publish it as :attr:`pending_replan` for an external
                control plane to :meth:`apply_replan` or
                :meth:`decline_replan`.  With admission always granted
                the apply path is bit-identical to the inline path.

        Returns:
            The epoch's :class:`EpochSample` (also appended to the
            supervision record).
        """
        self._require_started()
        cfg = self.config
        profile = self.profile
        fault = self.fault_clock if fault_clock is _UNSET else fault_clock
        budget = self.optimized.qos_s
        fixed = self.optimized.fixed_overhead_s
        thermal = self._thermal
        sensor = self._sensor
        sensor.fault_clock = fault
        hfo_configs = self.pipeline.space.hfo_configs
        runtime = self.pipeline.runtime
        epoch = self._epoch
        if now is None:
            now = epoch * cfg.epoch_s
        self._pending = None

        cap_hz = self._battery.max_sysclk_hz()
        if fault is not None and fault.brownout_sag():
            # The rail sags below nominal for this epoch: derate
            # the sustainable SYSCLK on top of the battery cap.
            cap_hz *= fault.plan.brownout_derate
        exec_plan, clamped = clamp_plan_to_cap(
            self._plan, cap_hz, hfo_configs
        )
        try:
            ref = runtime.run(
                self.model,
                exec_plan,
                qos_s=budget,
                initial_config=exec_plan.initial_config(),
                fault_clock=fault,
            )
        except ReproError:
            # The window itself died (watchdog never made forward
            # progress, PLL never locked): a missed, invalid epoch.
            # The plan is held; the next epoch tries again.
            self._invalid_streak += 1
            self._invalid_epochs += 1
            get_audit_log().record(
                "governor.epoch",
                "window_failed",
                device_id=profile.device_id,
                epoch=epoch,
                clamped=clamped,
            )
            get_registry().count(
                "fleet.governor", event="window_failed"
            )
            sample = EpochSample(
                epoch=epoch,
                measured_energy_j=0.0,
                predicted_energy_j=0.0,
                drift=0.0,
                met_qos=False,
                clamped=clamped,
                temperature_c=self._temperature,
                charge_fraction=self._battery.charge_fraction,
                replanned=False,
                valid=False,
            )
            self._samples.append(sample)
            self._epoch += 1
            return sample
        self._css_events += ref.css_events
        self._watchdog_resets += ref.watchdog_resets
        self._pll_retries += ref.pll_retries
        extra_w = (
            thermal.leakage_at(self._temperature) - thermal.leakage_ref_w
        )
        # The window as the silicon actually burns it: leaky
        # states carry the thermal excess on top of the calibrated
        # model.
        true_trace = [
            EnergyInterval(
                duration_s=iv.duration_s,
                power_w=iv.power_w
                + (extra_w if iv.state in LEAKY_STATES else 0.0),
                category=iv.category,
                label=iv.label,
            )
            for iv in ref.account.intervals
        ]
        true_energy = sum(iv.energy_j for iv in true_trace)
        leaky_t = sum(
            iv.duration_s
            for iv in ref.account.intervals
            if iv.state in LEAKY_STATES
        )
        telemetry_valid = True
        try:
            train = sensor.measure(true_trace, start_time_s=now)
        except SensorReadError:
            train = []
            telemetry_valid = False
        if telemetry_valid and fault is not None:
            # Sanity-screen the train before trusting it: too many
            # dropped conversions bias the rectangle-rule energy
            # low, and a stuck power register reads as a perfectly
            # flat train.  (Guarded on fault mode: a nominal
            # sensor never produces either.)
            total_t = sum(iv.duration_s for iv in true_trace)
            covered = sensor.covered_duration_s(train)
            if covered < cfg.min_coverage * total_t:
                telemetry_valid = False
            elif len(train) >= 2 and len(
                {s.power_w for s in train}
            ) == 1:
                telemetry_valid = False
        predicted = ref.energy_j + self._compensated_w * leaky_t
        if telemetry_valid:
            measured = sensor.estimate_energy(train)
            drift = (
                (measured - predicted) / predicted
                if predicted > 0
                else 0.0
            )
        else:
            measured = 0.0
            drift = 0.0
            self._invalid_epochs += 1
        window_s = ref.qos_s if ref.qos_s is not None else ref.latency_s
        avg_power = true_energy / window_s if window_s > 0 else 0.0
        met = ref.met_qos

        # Blind epochs widen the tolerance the next fresh
        # measurement is judged against (stale compensation would
        # otherwise read as drift); QoS-miss and clamp triggers
        # stay live -- they come from the run, not the sensor.
        threshold = cfg.drift_threshold * min(
            cfg.widen_factor**self._invalid_streak, cfg.max_widen
        )
        drift_trigger = telemetry_valid and abs(drift) > threshold
        wants_replan = (
            not met or clamped or drift_trigger
        ) and self._replans < cfg.max_replans
        replanned = False
        if wants_replan and not defer_replan:
            new_plan = self._replan(extra_w, cap_hz, budget, fixed)
            if new_plan is not None:
                self._plan = new_plan
                self._compensated_w = extra_w
                self._replans += 1
                replanned = True
        elif wants_replan:
            self._pending = ReplanIntent(
                device_id=profile.device_id,
                epoch=epoch,
                extra_w=extra_w,
                cap_hz=cap_hz,
                drift=drift,
                reason=(
                    "qos_miss"
                    if not met
                    else ("clamped" if clamped else "drift")
                ),
            )
        # Audit the epoch's decision with the inputs it was made
        # from -- strictly observational, recorded after every
        # value above is already computed.
        if replanned:
            decision = "replan"
        elif self._pending is not None:
            decision = "replan_pending"
        elif not met or clamped or drift_trigger:
            decision = "replan_unavailable"
        elif not telemetry_valid:
            decision = "hold_invalid_telemetry"
        else:
            decision = "hold"
        get_audit_log().record(
            "governor.epoch",
            decision,
            device_id=profile.device_id,
            epoch=epoch,
            drift=drift,
            threshold=threshold,
            predicted_energy_j=predicted,
            measured_energy_j=measured,
            met_qos=met,
            clamped=clamped,
            telemetry_valid=telemetry_valid,
        )
        get_registry().count("fleet.governor", event=decision)
        self._invalid_streak = (
            0 if telemetry_valid else self._invalid_streak + 1
        )

        # Epoch bookkeeping: the die integrates toward its
        # operating temperature, the cell drains by the epoch's
        # true energy.  Physics advance even when telemetry was
        # unusable -- the window still ran and burned energy.
        self._battery = self._battery.discharged(avg_power * cfg.epoch_s)
        self._temperature = thermal.temperature_step(
            self._temperature, avg_power, cfg.epoch_s
        )
        sample = EpochSample(
            epoch=epoch,
            measured_energy_j=measured,
            predicted_energy_j=predicted,
            drift=drift,
            met_qos=met,
            clamped=clamped,
            temperature_c=self._temperature,
            charge_fraction=self._battery.charge_fraction,
            replanned=replanned,
            valid=telemetry_valid,
            true_energy_j=true_energy,
        )
        self._samples.append(sample)
        self._epoch += 1
        return sample

    def apply_replan(self) -> bool:
        """Apply the pending deferred re-plan; True when a plan landed.

        Bit-identical to the inline path of :meth:`step`: the re-solve
        runs with exactly the inputs the trigger fired on.  Clears the
        pending intent either way.
        """
        self._require_started()
        intent = self._pending
        if intent is None:
            raise ReproError("no pending replan to apply")
        self._pending = None
        budget = self.optimized.qos_s
        fixed = self.optimized.fixed_overhead_s
        new_plan = self._replan(
            intent.extra_w, intent.cap_hz, budget, fixed
        )
        applied = new_plan is not None
        if applied:
            self._plan = new_plan
            self._compensated_w = intent.extra_w
            self._replans += 1
            if self._samples:
                self._samples[-1] = replace(
                    self._samples[-1], replanned=True
                )
        decision = "replan" if applied else "replan_unavailable"
        get_audit_log().record(
            "governor.epoch",
            decision,
            device_id=intent.device_id,
            epoch=intent.epoch,
            drift=intent.drift,
            reason=intent.reason,
            deferred=True,
        )
        get_registry().count("fleet.governor", event=decision)
        return applied

    def decline_replan(self, reason: str = "shed") -> None:
        """Drop the pending re-plan (control plane shed the request)."""
        self._require_started()
        intent = self._pending
        if intent is None:
            raise ReproError("no pending replan to decline")
        self._pending = None
        get_audit_log().record(
            "governor.epoch",
            "replan_shed",
            device_id=intent.device_id,
            epoch=intent.epoch,
            drift=intent.drift,
            reason=reason,
        )
        get_registry().count("fleet.governor", event="replan_shed")

    def result(self) -> GovernorResult:
        """The supervision record accumulated so far."""
        self._require_started()
        return GovernorResult(
            profile=self.profile,
            final_plan=self._plan,
            samples=self._samples,
            replans=self._replans,
            drift_threshold=self.config.drift_threshold,
            invalid_epochs=self._invalid_epochs,
            css_events=self._css_events,
            watchdog_resets=self._watchdog_resets,
            pll_retries=self._pll_retries,
        )

    def _replan(
        self,
        extra_w: float,
        cap_hz: float,
        budget: float,
        fixed: float,
    ) -> Optional[DeploymentPlan]:
        return resolve_replan(
            self.pipeline,
            self.model,
            self.base_classes,
            extra_w=extra_w,
            cap_hz=cap_hz,
            budget=budget,
            fixed=fixed,
        )


def resolve_replan(
    pipeline: DAEDVFSPipeline,
    model: Model,
    base_classes: List[List[MCKPItem]],
    *,
    extra_w: float,
    cap_hz: float,
    budget: float,
    fixed: float,
) -> Optional[DeploymentPlan]:
    """Re-price cached fronts and re-solve; None if infeasible.

    The shared re-solve core of the governor and the scenario
    engine's clairvoyant oracle twin: re-price the device's cached
    Pareto fronts for the drifted conditions, solve the MCKP, and
    fall back to the uniform-frequency ladder when the free re-solve
    lands on a mixed-frequency schedule whose sequence-dependent
    relock overhead the knapsack cannot price.  The ladder pays at
    most one lock and always contains the schedules the refinement
    loop is hunting for.
    """
    try:
        classes = reprice_classes(
            base_classes,
            extra_power_w=extra_w,
            item_filter=lambda item: (
                item.payload.hfo.sysclk_hz <= cap_hz
            ),
        )
    except ReproError:
        return None
    try:
        plan = pipeline.replan(model, classes, budget, fixed)
    except ReproError:
        plan = None
    if plan is not None:
        return plan
    return pipeline.uniform_plan_from_classes(
        model, classes, budget, fixed, max_hfo_hz=cap_hz
    )


def supervise_device(
    pipeline: DAEDVFSPipeline,
    profile: DeviceProfile,
    model: Model,
    optimized: OptimizationResult,
    config: Optional[GovernorConfig] = None,
    fault_clock=None,
) -> GovernorResult:
    """Convenience wrapper: build a governor and run it."""
    return FleetGovernor(
        pipeline, profile, model, optimized, config, fault_clock=fault_clock
    ).supervise()
