"""Adaptive per-device re-plan governor.

The MCKP plan a device ships with was priced against its power model
at deployment time.  In the field the operating point drifts: the die
heats up (leakage grows exponentially with temperature) and the
battery sags (the supply can no longer hold the top VOS scales, which
caps the usable SYSCLK).  The governor closes the loop the paper's
differential-measurement methodology opens:

1. every telemetry epoch, simulate one QoS window under the *true*
   conditions (thermal excess leakage, frequency clamping) and measure
   it with the device's own seeded INA219;
2. compare the measurement against the plan's prediction;
3. when the drift breaches the tolerance -- or the window misses its
   QoS budget outright -- **re-solve** the MCKP from the cached
   Pareto fronts, re-priced for the drifted conditions
   (:func:`repro.optimize.mckp.reprice_classes`), via
   :meth:`DAEDVFSPipeline.replan`.  No design-space re-exploration
   happens: the fronts' timing is drift-invariant, only the energy
   ranking moved.

The thermal response pushes hot devices toward *faster* schedules
(slow choices soak up more of the extra leakage joules); the battery
response pushes sagging devices onto HFOs their supply can still
hold.  Both re-converge within an epoch or two, which the fleet
report quantifies across the population.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..engine.schedule import DeploymentPlan, LayerPlan
from ..errors import PowerModelError, ReproError, SensorReadError
from ..nn.graph import Model
from ..obs.audit import get_audit_log
from ..obs.registry import get_registry
from ..optimize.mckp import MCKPItem, reprice_classes
from ..pipeline import DAEDVFSPipeline, OptimizationResult
from ..power.energy import EnergyInterval
from ..power.model import PowerState
from ..power.sensor import INA219Config
from .variation import DeviceProfile

#: Power states that carry the MCU leakage term (and therefore the
#: thermal excess); gated/deep-sleep states power the leaky domains
#: down.
_LEAKY_STATES = frozenset(
    {
        PowerState.ACTIVE_COMPUTE,
        PowerState.ACTIVE_MEMORY,
        PowerState.IDLE,
        PowerState.SWITCHING,
    }
)


@dataclass(frozen=True)
class GovernorConfig:
    """Tuning of the re-plan loop.

    Attributes:
        epochs: telemetry epochs to simulate.
        epoch_s: sustained operation per epoch (back-to-back QoS
            windows); sets how fast temperature and battery move.
        drift_threshold: fractional measured-vs-predicted energy
            drift that triggers a re-plan.  The default sits about
            2x above the worst INA219 quantization+noise drift a
            nominal device shows (~1.5%), and below the steady-state
            thermal excess of a hot, leaky-corner device (~4%).
        max_replans: re-plan budget per device.
        sensor_config: INA219 configuration for the telemetry sensor.
        min_coverage: fraction of the window's trace time the sensor
            train must cover for the epoch's telemetry to count.
            Dropped conversions below this bar invalidate the epoch
            (the governor holds the last plan) instead of feeding a
            biased energy estimate into the drift trigger.
        widen_factor: multiplier applied to the drift tolerance per
            consecutive invalid-telemetry epoch -- after blind epochs
            the first fresh measurement is judged against a wider
            window so a momentarily stale prediction does not trigger
            a spurious re-plan.
        max_widen: cap on the accumulated widening factor.
    """

    epochs: int = 20
    epoch_s: float = 2.0
    drift_threshold: float = 0.03
    max_replans: int = 4
    sensor_config: Optional[INA219Config] = None
    min_coverage: float = 0.5
    widen_factor: float = 2.0
    max_widen: float = 8.0

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise PowerModelError("epochs must be >= 1")
        if self.epoch_s <= 0:
            raise PowerModelError("epoch_s must be positive")
        if self.drift_threshold <= 0:
            raise PowerModelError("drift_threshold must be positive")
        if self.max_replans < 0:
            raise PowerModelError("max_replans must be >= 0")
        if not 0.0 <= self.min_coverage <= 1.0:
            raise PowerModelError("min_coverage must be in [0, 1]")
        if self.widen_factor < 1.0:
            raise PowerModelError("widen_factor must be >= 1")
        if self.max_widen < 1.0:
            raise PowerModelError("max_widen must be >= 1")


@dataclass(frozen=True)
class EpochSample:
    """Telemetry of one epoch.

    ``valid`` is False when the epoch's telemetry was unusable (sensor
    NACK, stuck register, coverage below the bar, or the window itself
    failed under injected faults); measured/drift are zeroed then and
    never feed the drift trigger.
    """

    epoch: int
    measured_energy_j: float
    predicted_energy_j: float
    drift: float
    met_qos: bool
    clamped: bool
    temperature_c: float
    charge_fraction: float
    replanned: bool
    valid: bool = True


@dataclass
class GovernorResult:
    """Outcome of supervising one device.

    Attributes:
        profile: the supervised device.
        final_plan: the plan in force after the last epoch.
        samples: per-epoch telemetry, in order.
        replans: re-solves actually applied.
        converged: the last epoch met its QoS budget with drift inside
            the tolerance and no frequency clamping.
        invalid_epochs: epochs whose telemetry was unusable.
        css_events: CSS failsafe interventions across the epochs.
        watchdog_resets: watchdog resets survived across the epochs.
        pll_retries: PLL lock retries absorbed across the epochs.
    """

    profile: DeviceProfile
    final_plan: DeploymentPlan
    samples: List[EpochSample] = field(default_factory=list)
    replans: int = 0
    drift_threshold: float = float("inf")
    invalid_epochs: int = 0
    css_events: int = 0
    watchdog_resets: int = 0
    pll_retries: int = 0

    @property
    def converged(self) -> bool:
        last = self.samples[-1] if self.samples else None
        return bool(
            last
            and last.met_qos
            and not last.clamped
            and abs(last.drift) <= self.drift_threshold
        )

    @property
    def epochs_met(self) -> int:
        """Epochs whose window met the QoS budget."""
        return sum(1 for s in self.samples if s.met_qos)


def _clamp_plan(
    plan: DeploymentPlan, cap_hz: float, hfo_configs
) -> "tuple[DeploymentPlan, bool]":
    """Force every over-cap layer onto the fastest supplied HFO.

    This is what the hardware would do: the regulator cannot hold the
    VOS scale the plan asked for, so the runtime falls back to the
    fastest configuration the rail supports (and the schedule slows
    down accordingly -- possibly past its budget, which is the
    governor's re-plan trigger).
    """
    if all(
        lp.hfo.sysclk_hz <= cap_hz for lp in plan.layer_plans.values()
    ):
        return plan, False
    allowed = [c for c in hfo_configs if c.sysclk_hz <= cap_hz]
    if not allowed:
        # The rail sagged below even the slowest HFO (deep brownout).
        # Run at the slowest grid point rather than crashing: the
        # window will miss its budget, which is exactly the re-plan /
        # QoS-miss signal the governor acts on.
        allowed = [min(hfo_configs, key=lambda c: c.sysclk_hz)]
    fastest = max(allowed, key=lambda c: c.sysclk_hz)
    clamped_plans = {}
    for node_id, lp in plan.layer_plans.items():
        if lp.hfo.sysclk_hz <= cap_hz:
            clamped_plans[node_id] = lp
        else:
            clamped_plans[node_id] = LayerPlan(
                node_id=lp.node_id,
                granularity=lp.granularity,
                hfo=fastest,
                predicted_latency_s=lp.predicted_latency_s,
                predicted_energy_j=lp.predicted_energy_j,
            )
    return (
        DeploymentPlan(
            model_name=plan.model_name,
            lfo=plan.lfo,
            layer_plans=clamped_plans,
            qos_s=plan.qos_s,
            predicted_latency_s=plan.predicted_latency_s,
            predicted_energy_j=plan.predicted_energy_j,
        ),
        True,
    )


class FleetGovernor:
    """Supervises one device's deployed plan across telemetry epochs.

    Tolerates faulty telemetry: missing (NACKed), stuck or
    under-covered sensor readings invalidate the epoch -- the governor
    holds the last plan and judges the next fresh measurement against
    a temporarily widened drift window -- and a window that fails
    outright under injected faults is recorded as a missed, invalid
    epoch rather than killing the supervision loop.  ``fault_clock``
    is ``None`` by default, in which case every epoch is bit-identical
    to the fault-free governor.
    """

    def __init__(
        self,
        pipeline: DAEDVFSPipeline,
        profile: DeviceProfile,
        model: Model,
        optimized: OptimizationResult,
        config: Optional[GovernorConfig] = None,
        fault_clock=None,
    ):
        self.pipeline = pipeline
        self.profile = profile
        self.model = model
        self.optimized = optimized
        self.config = config or GovernorConfig()
        self.fault_clock = fault_clock
        node_ids = sorted(optimized.pareto_fronts)
        #: Device-priced MCKP classes rebuilt from the cached fronts;
        #: every re-plan re-prices THESE -- exploration never re-runs.
        self.base_classes = [
            [
                MCKPItem(
                    weight=p.latency_s, value=p.energy_j, payload=p
                )
                for p in optimized.pareto_fronts[node_id]
            ]
            for node_id in node_ids
        ]

    def supervise(self) -> GovernorResult:
        """Run the epochs; returns the telemetry and the final plan."""
        cfg = self.config
        profile = self.profile
        fault = self.fault_clock
        budget = self.optimized.qos_s
        fixed = self.optimized.fixed_overhead_s
        thermal = profile.thermal
        sensor = profile.make_sensor(cfg.sensor_config, fault_clock=fault)
        hfo_configs = self.pipeline.space.hfo_configs
        runtime = self.pipeline.runtime

        plan = self.optimized.plan
        battery = profile.battery
        temperature = thermal.t_ambient_c
        #: Extra leakage power the current plan's pricing already
        #: accounts for (set at re-plan time); drift is measured
        #: against prediction *including* this compensation.
        compensated_w = 0.0
        samples: List[EpochSample] = []
        replans = 0
        #: Consecutive epochs with unusable telemetry; widens the
        #: drift window the first fresh measurement is judged against.
        invalid_streak = 0
        invalid_epochs = 0
        css_events = 0
        watchdog_resets = 0
        pll_retries = 0

        for epoch in range(cfg.epochs):
            cap_hz = battery.max_sysclk_hz()
            if fault is not None and fault.brownout_sag():
                # The rail sags below nominal for this epoch: derate
                # the sustainable SYSCLK on top of the battery cap.
                cap_hz *= fault.plan.brownout_derate
            exec_plan, clamped = _clamp_plan(plan, cap_hz, hfo_configs)
            try:
                ref = runtime.run(
                    self.model,
                    exec_plan,
                    qos_s=budget,
                    initial_config=exec_plan.initial_config(),
                    fault_clock=fault,
                )
            except ReproError:
                # The window itself died (watchdog never made forward
                # progress, PLL never locked): a missed, invalid epoch.
                # The plan is held; the next epoch tries again.
                invalid_streak += 1
                invalid_epochs += 1
                get_audit_log().record(
                    "governor.epoch",
                    "window_failed",
                    device_id=profile.device_id,
                    epoch=epoch,
                    clamped=clamped,
                )
                get_registry().count(
                    "fleet.governor", event="window_failed"
                )
                samples.append(
                    EpochSample(
                        epoch=epoch,
                        measured_energy_j=0.0,
                        predicted_energy_j=0.0,
                        drift=0.0,
                        met_qos=False,
                        clamped=clamped,
                        temperature_c=temperature,
                        charge_fraction=battery.charge_fraction,
                        replanned=False,
                        valid=False,
                    )
                )
                continue
            css_events += ref.css_events
            watchdog_resets += ref.watchdog_resets
            pll_retries += ref.pll_retries
            extra_w = thermal.leakage_at(temperature) - thermal.leakage_ref_w
            # The window as the silicon actually burns it: leaky
            # states carry the thermal excess on top of the calibrated
            # model.
            true_trace = [
                EnergyInterval(
                    duration_s=iv.duration_s,
                    power_w=iv.power_w
                    + (extra_w if iv.state in _LEAKY_STATES else 0.0),
                    category=iv.category,
                    label=iv.label,
                )
                for iv in ref.account.intervals
            ]
            true_energy = sum(iv.energy_j for iv in true_trace)
            leaky_t = sum(
                iv.duration_s
                for iv in ref.account.intervals
                if iv.state in _LEAKY_STATES
            )
            telemetry_valid = True
            try:
                train = sensor.measure(
                    true_trace, start_time_s=epoch * cfg.epoch_s
                )
            except SensorReadError:
                train = []
                telemetry_valid = False
            if telemetry_valid and fault is not None:
                # Sanity-screen the train before trusting it: too many
                # dropped conversions bias the rectangle-rule energy
                # low, and a stuck power register reads as a perfectly
                # flat train.  (Guarded on fault mode: a nominal
                # sensor never produces either.)
                total_t = sum(iv.duration_s for iv in true_trace)
                covered = sensor.covered_duration_s(train)
                if covered < cfg.min_coverage * total_t:
                    telemetry_valid = False
                elif len(train) >= 2 and len(
                    {s.power_w for s in train}
                ) == 1:
                    telemetry_valid = False
            predicted = ref.energy_j + compensated_w * leaky_t
            if telemetry_valid:
                measured = sensor.estimate_energy(train)
                drift = (
                    (measured - predicted) / predicted
                    if predicted > 0
                    else 0.0
                )
            else:
                measured = 0.0
                drift = 0.0
                invalid_epochs += 1
            window_s = ref.qos_s if ref.qos_s is not None else ref.latency_s
            avg_power = true_energy / window_s if window_s > 0 else 0.0
            met = ref.met_qos

            # Blind epochs widen the tolerance the next fresh
            # measurement is judged against (stale compensation would
            # otherwise read as drift); QoS-miss and clamp triggers
            # stay live -- they come from the run, not the sensor.
            threshold = cfg.drift_threshold * min(
                cfg.widen_factor**invalid_streak, cfg.max_widen
            )
            drift_trigger = telemetry_valid and abs(drift) > threshold
            replanned = False
            if (
                not met or clamped or drift_trigger
            ) and replans < cfg.max_replans:
                new_plan = self._replan(extra_w, cap_hz, budget, fixed)
                if new_plan is not None:
                    plan = new_plan
                    compensated_w = extra_w
                    replans += 1
                    replanned = True
            # Audit the epoch's decision with the inputs it was made
            # from -- strictly observational, recorded after every
            # value above is already computed.
            if replanned:
                decision = "replan"
            elif not met or clamped or drift_trigger:
                decision = "replan_unavailable"
            elif not telemetry_valid:
                decision = "hold_invalid_telemetry"
            else:
                decision = "hold"
            get_audit_log().record(
                "governor.epoch",
                decision,
                device_id=profile.device_id,
                epoch=epoch,
                drift=drift,
                threshold=threshold,
                predicted_energy_j=predicted,
                measured_energy_j=measured,
                met_qos=met,
                clamped=clamped,
                telemetry_valid=telemetry_valid,
            )
            get_registry().count("fleet.governor", event=decision)
            invalid_streak = 0 if telemetry_valid else invalid_streak + 1

            # Epoch bookkeeping: the die integrates toward its
            # operating temperature, the cell drains by the epoch's
            # true energy.  Physics advance even when telemetry was
            # unusable -- the window still ran and burned energy.
            battery = battery.discharged(avg_power * cfg.epoch_s)
            temperature = thermal.temperature_step(
                temperature, avg_power, cfg.epoch_s
            )
            samples.append(
                EpochSample(
                    epoch=epoch,
                    measured_energy_j=measured,
                    predicted_energy_j=predicted,
                    drift=drift,
                    met_qos=met,
                    clamped=clamped,
                    temperature_c=temperature,
                    charge_fraction=battery.charge_fraction,
                    replanned=replanned,
                    valid=telemetry_valid,
                )
            )

        return GovernorResult(
            profile=profile,
            final_plan=plan,
            samples=samples,
            replans=replans,
            drift_threshold=cfg.drift_threshold,
            invalid_epochs=invalid_epochs,
            css_events=css_events,
            watchdog_resets=watchdog_resets,
            pll_retries=pll_retries,
        )

    def _replan(
        self,
        extra_w: float,
        cap_hz: float,
        budget: float,
        fixed: float,
    ) -> Optional[DeploymentPlan]:
        """Re-price the cached fronts and re-solve; None if infeasible.

        The free MCKP re-solve can land on a mixed-frequency schedule
        whose sequence-dependent relock overhead the knapsack cannot
        price; when the refinement loop fails to converge such a
        schedule under the budget, fall back to the uniform-frequency
        ladder (the paper's global-DVFS shape), which pays at most one
        lock and always contains the schedules the refinement loop is
        hunting for.
        """
        try:
            classes = reprice_classes(
                self.base_classes,
                extra_power_w=extra_w,
                item_filter=lambda item: (
                    item.payload.hfo.sysclk_hz <= cap_hz
                ),
            )
        except ReproError:
            return None
        try:
            plan = self.pipeline.replan(self.model, classes, budget, fixed)
        except ReproError:
            plan = None
        if plan is not None:
            return plan
        return self.pipeline.uniform_plan_from_classes(
            self.model, classes, budget, fixed, max_hfo_hz=cap_hz
        )


def supervise_device(
    pipeline: DAEDVFSPipeline,
    profile: DeviceProfile,
    model: Model,
    optimized: OptimizationResult,
    config: Optional[GovernorConfig] = None,
    fault_clock=None,
) -> GovernorResult:
    """Convenience wrapper: build a governor and run it."""
    return FleetGovernor(
        pipeline, profile, model, optimized, config, fault_clock=fault_clock
    ).supervise()
