"""repro: Decoupled Access-Execute enabled DVFS for tinyML on STM32 MCUs.

A faithful Python reproduction of the DATE 2024 paper by Alvanaki,
Katsaragakis, Masouros, Xydis and Soudris.  The physical STM32F767ZI
testbed is replaced by calibrated simulation substrates (clock tree,
power model, core timing, cache -- see DESIGN.md); the methodology
itself (DAE restructuring, DAE x clocking DSE, Pareto extraction,
MCKP-based QoS-aware energy optimization) is implemented exactly as
published.

Quickstart::

    from repro import DAEDVFSPipeline, build_vww
    from repro.optimize import MODERATE

    pipeline = DAEDVFSPipeline()
    row = pipeline.compare(build_vww(), MODERATE)
    print(f"energy vs TinyEngine: -{row.savings_vs_tinyengine:.1%}")
"""

from .errors import (
    ClockConfigError,
    ClockSwitchError,
    DesignSpaceError,
    FaultInjectionError,
    GraphError,
    PowerModelError,
    ProfilingError,
    QoSInfeasibleError,
    QuantizationError,
    ReproError,
    SensorReadError,
    ShapeError,
    SolverError,
    TraceError,
    WatchdogResetError,
)
from .mcu.board import Board, make_nucleo_f767zi
from .nn.models import (
    PAPER_MODELS,
    build_mbv2,
    build_person_detection,
    build_tiny_test_model,
    build_vww,
)
from .pipeline import ComparisonResult, DAEDVFSPipeline, OptimizationResult

__version__ = "1.0.0"

__all__ = [
    "ClockConfigError",
    "ClockSwitchError",
    "DesignSpaceError",
    "FaultInjectionError",
    "GraphError",
    "PowerModelError",
    "ProfilingError",
    "QoSInfeasibleError",
    "QuantizationError",
    "ReproError",
    "SensorReadError",
    "ShapeError",
    "SolverError",
    "TraceError",
    "WatchdogResetError",
    "Board",
    "make_nucleo_f767zi",
    "PAPER_MODELS",
    "build_mbv2",
    "build_person_detection",
    "build_tiny_test_model",
    "build_vww",
    "ComparisonResult",
    "DAEDVFSPipeline",
    "OptimizationResult",
    "__version__",
]
