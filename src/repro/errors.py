"""Exception hierarchy for the library.

Every error raised by :mod:`repro` derives from :class:`ReproError`
so downstream users can catch library failures with a single handler
while still distinguishing the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ClockConfigError(ReproError):
    """An illegal clock-tree configuration was requested.

    Raised when PLL divider/multiplier values fall outside the legal
    STM32F7 ranges, the VCO input/output frequency constraints are
    violated, or the resulting SYSCLK exceeds the part's maximum.
    """


class ClockSwitchError(ReproError):
    """A clock switch was requested that the RCC cannot perform.

    For example selecting the PLL as the SYSCLK source while the PLL is
    disabled or not yet locked.
    """


class PowerModelError(ReproError):
    """The power model was queried with an inconsistent state."""


class QuantizationError(ReproError):
    """Invalid quantization parameters or out-of-range quantized data."""


class ShapeError(ReproError):
    """A tensor shape does not match what a layer expects."""


class GraphError(ReproError):
    """The model graph is malformed (dangling refs, cycles, type errors)."""


class TraceError(ReproError):
    """An execution trace is inconsistent (e.g. negative durations)."""


class ProfilingError(ReproError):
    """The profiler was used incorrectly (e.g. stop before start)."""


class DesignSpaceError(ReproError):
    """An empty or inconsistent design space was supplied to the DSE."""


class BoardError(ReproError):
    """An unknown board name or an invalid board descriptor."""


class QoSInfeasibleError(ReproError):
    """No selection of per-layer configurations can satisfy the QoS.

    Carries the tightest achievable latency so callers can report how
    far away the requested budget is.
    """

    def __init__(self, qos_s: float, min_latency_s: float):
        self.qos_s = qos_s
        self.min_latency_s = min_latency_s
        super().__init__(
            f"QoS budget of {qos_s * 1e3:.3f} ms is infeasible: the "
            f"minimum achievable latency is {min_latency_s * 1e3:.3f} ms"
        )


class SolverError(ReproError):
    """The knapsack solver received a malformed problem instance."""


class FaultInjectionError(ReproError):
    """A fault plan or chaos campaign was configured inconsistently.

    Raised for out-of-range fault rates, malformed scheduled events or
    invalid campaign parameters -- never for an *injected* fault, which
    surfaces through the domain error of the failing subsystem
    (:class:`ClockSwitchError`, :class:`SensorReadError`,
    :class:`WatchdogResetError`).
    """


class ProtocolError(ReproError):
    """A serve-layer request or response violates the wire schema.

    Raised for unparseable JSON lines, unsupported protocol versions,
    unknown operations and missing/ill-typed request fields.  Maps to
    the ``bad_request`` error payload on the wire.
    """


class OverloadedError(ReproError):
    """The serve layer shed this request instead of queueing it.

    Carries the shed reason (``queue_full`` or ``rate_limited``) and a
    retry hint so clients can back off instead of hammering.  Maps to
    the ``overloaded`` error payload on the wire.
    """

    def __init__(self, reason: str, retry_after_s: float = 0.0):
        self.reason = reason
        self.retry_after_s = retry_after_s
        super().__init__(
            f"request shed ({reason}); retry after {retry_after_s:.3f} s"
        )


class ServeUnavailableError(ReproError):
    """The serve endpoint stayed unreachable through the retry budget.

    Raised by :class:`~repro.serve.client.ServeClient` once its bounded
    exponential retry budget is exhausted (connection refused, reset
    mid-conversation, or repeated overload sheds past the budget).
    Carries the attempt count and the last underlying failure so
    callers can distinguish "never came up" from "went away".  Maps to
    the ``unavailable`` error payload on the wire.
    """

    def __init__(self, attempts: int = 1, last_error: str = ""):
        self.attempts = attempts
        self.last_error = last_error
        suffix = f": {last_error}" if last_error else ""
        super().__init__(
            f"serve endpoint unavailable after {attempts} "
            f"attempt{'s' if attempts != 1 else ''}{suffix}"
        )


class DeadlineExceededError(ReproError):
    """A serve request missed its client-supplied deadline.

    The work may still complete (and warm the plan cache) but the
    response is no longer useful to the caller.  Maps to the
    ``deadline_exceeded`` error payload on the wire.
    """

    def __init__(self, deadline_s: float):
        self.deadline_s = deadline_s
        super().__init__(
            f"request deadline of {deadline_s * 1e3:.1f} ms exceeded"
        )


class SensorReadError(ReproError):
    """The INA219 failed to deliver a reading (I2C NACK / bus fault).

    The telemetry consumer (the fleet governor) must treat the epoch's
    measurement as missing rather than as a zero-energy window.
    """


class WatchdogResetError(ReproError):
    """The watchdog reset the core repeatedly at the same checkpoint.

    Carries the layer at which forward progress stopped so the fleet
    layer can quarantine the device instead of spinning forever.
    """

    def __init__(self, layer_name: str, resets: int):
        self.layer_name = layer_name
        self.resets = resets
        super().__init__(
            f"watchdog reset the core {resets} consecutive times at "
            f"layer {layer_name!r}; no forward progress"
        )
