"""repro.serve -- planning-as-a-service for the DAE+DVFS toolchain.

Turns the batch planner into a long-lived asyncio service: a versioned
JSON-lines protocol (:mod:`.protocol`), a bounded LRU plan cache
(:mod:`.cache`), micro-batching that coalesces concurrent plan
requests into one shared-explorer run (:mod:`.batcher`), admission
control that sheds load with a structured response instead of queueing
unboundedly (:mod:`.admission`), an asyncio TCP server and clients
(:mod:`.server`, :mod:`.client`), per-endpoint latency metrics
(:mod:`.metrics`), the synchronous planning backend (:mod:`.service`)
and a closed-loop seeded load generator (:mod:`.loadgen`).

The paper's plans are pure functions of (model, board, QoS), which is
exactly what the cache and the request coalescing exploit: N
concurrent requests for one model cost ~1 design-space exploration,
and a cached plan payload is byte-identical (sha256) to a freshly
computed one.
"""

from .admission import AdmissionController, ArrivalClock, TokenBucket
from .batcher import PlanBatcher
from .cache import PlanCache
from .client import InProcessClient, ServeClient
from .loadgen import LoadGenConfig, run_loadgen
from .metrics import LatencyHistogram, ServeMetrics
from .protocol import (
    PROTOCOL_VERSION,
    ErrorPayload,
    Request,
    Response,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
    error_from_exception,
    plan_digest,
)
from .server import PlanServer, ServeConfig
from .service import PlanService

__all__ = [
    "AdmissionController",
    "ArrivalClock",
    "ErrorPayload",
    "InProcessClient",
    "LatencyHistogram",
    "LoadGenConfig",
    "PROTOCOL_VERSION",
    "PlanBatcher",
    "PlanCache",
    "PlanServer",
    "PlanService",
    "Request",
    "Response",
    "ServeClient",
    "ServeConfig",
    "ServeMetrics",
    "TokenBucket",
    "decode_request",
    "decode_response",
    "encode_request",
    "encode_response",
    "error_from_exception",
    "plan_digest",
    "run_loadgen",
]
