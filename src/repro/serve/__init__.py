"""repro.serve -- planning-as-a-service for the DAE+DVFS toolchain.

Turns the batch planner into a long-lived asyncio service: a versioned
JSON-lines protocol (:mod:`.protocol`), a bounded LRU plan cache
(:mod:`.cache`), micro-batching that coalesces concurrent plan
requests into one shared-explorer run (:mod:`.batcher`), admission
control that sheds load with a structured response instead of queueing
unboundedly (:mod:`.admission`), an asyncio TCP server and clients
(:mod:`.server`, :mod:`.client`), per-endpoint latency metrics
(:mod:`.metrics`), the synchronous planning backend (:mod:`.service`)
and a seeded load generator -- closed-loop, burst, and multi-client
open-loop with latency-SLO gates (:mod:`.loadgen`).

The tier also scales *out*: :mod:`.router` fronts N ``spawn``-ed
worker processes (:mod:`.worker`, each a full :class:`PlanServer`)
with a consistent-hash ring over the (model, QoS) coalescing identity,
and the workers exchange plans byte-identically through the
digest-addressed shared cache tier (:mod:`.shared_cache`).

The paper's plans are pure functions of (model, board, QoS), which is
exactly what the cache and the request coalescing exploit: N
concurrent requests for one model cost ~1 design-space exploration,
and a cached plan payload is byte-identical (sha256) to a freshly
computed one.
"""

from .admission import AdmissionController, ArrivalClock, TokenBucket
from .batcher import PlanBatcher
from .cache import PlanCache
from .client import InProcessClient, ServeClient
from .loadgen import LoadGenConfig, run_loadgen
from .metrics import LatencyHistogram, ServeMetrics
from .protocol import (
    PROTOCOL_VERSION,
    ErrorPayload,
    Request,
    Response,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
    error_from_exception,
    plan_digest,
)
from .router import HashRing, RouterConfig, ShardRouter, shard_key
from .server import PlanServer, ServeConfig
from .service import PlanService
from .shared_cache import (
    LocalSharedCache,
    ManagedSharedCache,
    managed_shared_cache,
)
from .worker import worker_main

__all__ = [
    "AdmissionController",
    "ArrivalClock",
    "ErrorPayload",
    "HashRing",
    "InProcessClient",
    "LatencyHistogram",
    "LoadGenConfig",
    "LocalSharedCache",
    "ManagedSharedCache",
    "PROTOCOL_VERSION",
    "PlanBatcher",
    "PlanCache",
    "PlanServer",
    "PlanService",
    "Request",
    "Response",
    "RouterConfig",
    "ServeClient",
    "ServeConfig",
    "ServeMetrics",
    "ShardRouter",
    "TokenBucket",
    "decode_request",
    "decode_response",
    "encode_request",
    "encode_response",
    "error_from_exception",
    "managed_shared_cache",
    "plan_digest",
    "run_loadgen",
    "shard_key",
    "worker_main",
]
