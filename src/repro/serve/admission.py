"""Admission control: bounded in-flight queue + token-bucket limiter.

A production planner must degrade by *shedding* -- answering a
structured ``overloaded`` response immediately -- rather than queueing
unboundedly until every client times out.  Two independent gates:

* a bounded in-flight count (requests admitted but not yet answered):
  exceeding it sheds with reason ``queue_full``;
* an optional token bucket over admissions: empty sheds with reason
  ``rate_limited`` and a retry hint equal to the time one token needs.

Both gates take their time from an injectable clock.  The default is
``time.monotonic``; tests and the deterministic load generator inject
an :class:`ArrivalClock` that advances a fixed amount per *arrival*,
making every shed decision a pure function of the arrival sequence
(the benchmark's reproducible-shed-count gate).
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

from ..errors import OverloadedError, ReproError
from ..obs.audit import get_audit_log


class ArrivalClock:
    """Logical clock advancing a fixed tick per reading.

    Gives the token bucket deterministic time: the n-th admission
    check always happens at ``start + n * tick_s``, whatever the
    wall-clock scheduler did.
    """

    def __init__(self, tick_s: float, start_s: float = 0.0):
        if tick_s < 0:
            raise ReproError("tick_s must be >= 0")
        self.tick_s = tick_s
        self._now_s = start_s
        self._lock = threading.Lock()

    def __call__(self) -> float:
        with self._lock:
            self._now_s += self.tick_s
            return self._now_s


class TokenBucket:
    """Classic token bucket: ``rate_per_s`` refill, ``burst`` capacity.

    Construction reads no time: the first :meth:`try_acquire` anchors
    the refill clock.  With an :class:`ArrivalClock` as ``time_fn``
    this keeps the documented invariant that the n-th admission check
    happens at ``start + n * tick_s`` -- an eager read at construction
    would consume tick #1 and shift every deterministic shed decision
    by one arrival.
    """

    def __init__(
        self,
        rate_per_s: float,
        burst: float,
        time_fn: Callable[[], float] = time.monotonic,
    ):
        if rate_per_s <= 0:
            raise ReproError("rate_per_s must be positive")
        if burst < 1:
            raise ReproError("burst must be >= 1")
        self.rate_per_s = rate_per_s
        self.burst = float(burst)
        self._time_fn = time_fn
        self._tokens = float(burst)
        self._last_s: Optional[float] = None
        self._lock = threading.Lock()

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; never blocks."""
        with self._lock:
            now = self._time_fn()
            if self._last_s is None:
                elapsed = 0.0  # first reading anchors the clock
            else:
                elapsed = max(0.0, now - self._last_s)
            self._last_s = now
            self._tokens = min(
                self.burst, self._tokens + elapsed * self.rate_per_s
            )
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    @property
    def retry_after_s(self) -> float:
        """Time until the *next* token completes at the refill rate.

        Fractional tokens already accrued count toward it, so a bucket
        at 0.75 tokens hints a quarter period, not a full one.  Clamped
        below by zero (a bucket holding a full token needs no wait).
        """
        with self._lock:
            deficit = max(0.0, 1.0 - self._tokens)
        return deficit / self.rate_per_s


class AdmissionController:
    """The serve layer's front door.

    Args:
        max_queue_depth: admitted-but-unanswered request bound.
        bucket: optional rate limiter over admissions.
    """

    def __init__(
        self,
        max_queue_depth: int = 64,
        bucket: Optional[TokenBucket] = None,
    ):
        if max_queue_depth < 1:
            raise ReproError("max_queue_depth must be >= 1")
        self.max_queue_depth = max_queue_depth
        self.bucket = bucket
        self._lock = threading.Lock()
        self._in_flight = 0
        self.sheds: Dict[str, int] = {"queue_full": 0, "rate_limited": 0}

    @property
    def depth(self) -> int:
        """Currently admitted, unanswered requests."""
        with self._lock:
            return self._in_flight

    @property
    def shed_count(self) -> int:
        """Total sheds across both reasons."""
        with self._lock:
            return sum(self.sheds.values())

    def admit(self) -> int:
        """Admit one request or shed it.

        Returns:
            The in-flight depth *after* admission (for the gauge).

        Raises:
            OverloadedError: with the shed reason and a retry hint;
                the caller must NOT :meth:`release` a shed request.
        """
        with self._lock:
            if self._in_flight >= self.max_queue_depth:
                self.sheds["queue_full"] += 1
                depth = self._in_flight
                get_audit_log().record(
                    "serve.admission",
                    "shed",
                    reason="queue_full",
                    depth=depth,
                    max_queue_depth=self.max_queue_depth,
                )
                raise OverloadedError(
                    reason="queue_full",
                    # Draining one slot takes about one service time;
                    # clients cannot see that, so hint a token period
                    # when rate-limited and a small constant otherwise.
                    retry_after_s=(
                        self.bucket.retry_after_s if self.bucket else 0.05
                    ),
                )
            if self.bucket is not None and not self.bucket.try_acquire():
                self.sheds["rate_limited"] += 1
                get_audit_log().record(
                    "serve.admission",
                    "shed",
                    reason="rate_limited",
                    depth=self._in_flight,
                    rate_per_s=self.bucket.rate_per_s,
                )
                raise OverloadedError(
                    reason="rate_limited",
                    retry_after_s=self.bucket.retry_after_s,
                )
            self._in_flight += 1
            return self._in_flight

    def release(self) -> int:
        """Mark one admitted request answered; returns the new depth."""
        with self._lock:
            if self._in_flight <= 0:
                raise ReproError("release() without a matching admit()")
            self._in_flight -= 1
            return self._in_flight
