"""Serve-layer observability: latency histograms and counters.

The ``stats`` endpoint answers straight from a
:class:`ServeMetrics` snapshot: per-endpoint latency percentiles
(p50/p95/p99 out of log-spaced histogram buckets plus the exact
per-bucket counts), queue depth (current and peak), shed counts by
reason, batch coalescing ratios and the plan cache's
hit/miss/eviction counters.

:class:`LatencyHistogram` now lives in :mod:`repro.obs.registry` --
the process-wide metrics registry -- and is re-exported here so
existing imports keep working.  :class:`ServeMetrics` additionally
mirrors its counters into the default registry, so the serve numbers
appear alongside pipeline/fleet metrics in one
:meth:`~repro.obs.registry.MetricsRegistry.snapshot`.

Everything is lock-protected and cheap to record -- one bisect and a
few integer adds per request -- so metrics never become the reason the
event loop stalls.
"""

from __future__ import annotations

import threading
from typing import Any, Dict

from ..obs.registry import LatencyHistogram, _log_bounds, get_registry

__all__ = ["LatencyHistogram", "ServeMetrics", "_log_bounds"]


class ServeMetrics:
    """All counters and histograms of one server instance."""

    def __init__(self):
        self._lock = threading.Lock()
        self._latency: Dict[str, LatencyHistogram] = {}
        self._requests: Dict[str, int] = {}
        self._errors: Dict[str, int] = {}
        self._sheds: Dict[str, int] = {}
        self.queue_depth = 0
        self.queue_depth_peak = 0
        self.batches = 0
        self.batched_requests = 0
        self.telemetry_samples: Dict[str, Dict[str, float]] = {}

    # -- recording ---------------------------------------------------------------

    def record_request(self, op: str, latency_s: float) -> None:
        """Count one completed request and its service latency."""
        with self._lock:
            self._requests[op] = self._requests.get(op, 0) + 1
            histogram = self._latency.get(op)
            if histogram is None:
                histogram = self._latency.setdefault(op, LatencyHistogram())
            histogram.record(latency_s)
        registry = get_registry()
        registry.count("serve.requests", op=op)
        registry.observe("serve.latency", latency_s, op=op)

    def record_error(self, kind: str) -> None:
        """Count one failed request by its typed error kind."""
        with self._lock:
            self._errors[kind] = self._errors.get(kind, 0) + 1
        get_registry().count("serve.errors", kind=kind)

    def record_shed(self, reason: str) -> None:
        """Count one admission-control shed by reason."""
        with self._lock:
            self._sheds[reason] = self._sheds.get(reason, 0) + 1
        get_registry().count("serve.sheds", reason=reason)

    def record_queue_depth(self, depth: int) -> None:
        """Track the in-flight gauge (and its high-water mark)."""
        with self._lock:
            self.queue_depth = depth
            self.queue_depth_peak = max(self.queue_depth_peak, depth)
        registry = get_registry()
        registry.gauge_set("serve.queue_depth", float(depth))
        registry.gauge_set(
            "serve.queue_depth_peak", float(self.queue_depth_peak)
        )

    def record_batch(self, size: int) -> None:
        """Count one coalesced exploration batch of ``size`` requests."""
        with self._lock:
            self.batches += 1
            self.batched_requests += size
        registry = get_registry()
        registry.count("serve.batches")
        registry.count("serve.batched_requests", n=size)

    def record_telemetry(
        self, model: str, predicted_j: float, measured_j: float
    ) -> Dict[str, float]:
        """Fold one field sample into the per-model drift aggregate."""
        drift = 0.0
        if predicted_j > 0:
            drift = (measured_j - predicted_j) / predicted_j
        get_registry().count("serve.telemetry_samples", model=model)
        with self._lock:
            entry = self.telemetry_samples.setdefault(
                model, {"count": 0.0, "drift_sum": 0.0, "abs_drift_max": 0.0}
            )
            entry["count"] += 1
            entry["drift_sum"] += drift
            entry["abs_drift_max"] = max(entry["abs_drift_max"], abs(drift))
            return {
                "samples": int(entry["count"]),
                "mean_drift": entry["drift_sum"] / entry["count"],
                "max_abs_drift": entry["abs_drift_max"],
            }

    # -- reporting ---------------------------------------------------------------

    @property
    def shed_count(self) -> int:
        """Total sheds across all reasons."""
        with self._lock:
            return sum(self._sheds.values())

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-safe copy of every metric (the ``stats`` payload)."""
        with self._lock:
            requests_total = sum(self._requests.values())
            batched = self.batched_requests
            return {
                "requests_total": requests_total,
                "requests_by_op": dict(self._requests),
                "errors_by_kind": dict(self._errors),
                "sheds_by_reason": dict(self._sheds),
                "shed_count": sum(self._sheds.values()),
                "queue_depth": self.queue_depth,
                "queue_depth_peak": self.queue_depth_peak,
                "batches": self.batches,
                "batched_requests": batched,
                "coalesce_ratio": (
                    batched / self.batches if self.batches else 0.0
                ),
                "latency_by_op": {
                    op: histogram.to_dict(include_buckets=True)
                    for op, histogram in sorted(self._latency.items())
                },
                "telemetry": {
                    model: {
                        "samples": int(entry["count"]),
                        "mean_drift": (
                            entry["drift_sum"] / entry["count"]
                            if entry["count"]
                            else 0.0
                        ),
                        "max_abs_drift": entry["abs_drift_max"],
                    }
                    for model, entry in sorted(
                        self.telemetry_samples.items()
                    )
                },
            }
