"""Serve-layer observability: latency histograms and counters.

The ``stats`` endpoint answers straight from a
:class:`ServeMetrics` snapshot: per-endpoint latency percentiles
(p50/p95/p99 out of log-spaced histogram buckets), queue depth (current
and peak), shed counts by reason, batch coalescing ratios and the plan
cache's hit/miss/eviction counters.

Everything is lock-protected and cheap to record -- one bisect and a
few integer adds per request -- so metrics never become the reason the
event loop stalls.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Dict, List, Optional


def _log_bounds(
    lo_s: float = 1e-6, hi_s: float = 100.0, per_decade: int = 8
) -> List[float]:
    """Log-spaced bucket upper bounds from ``lo_s`` to ``hi_s``."""
    bounds = []
    value = lo_s
    ratio = 10.0 ** (1.0 / per_decade)
    while value < hi_s:
        bounds.append(value)
        value *= ratio
    bounds.append(hi_s)
    return bounds


class LatencyHistogram:
    """Fixed-bucket log-spaced latency histogram.

    Percentiles are answered as the upper bound of the bucket holding
    the requested rank -- a deterministic over-estimate whose relative
    error is bounded by the bucket ratio (~33% at 8 buckets/decade),
    plenty for load-shedding decisions and benchmark gates.
    """

    def __init__(self, bounds: Optional[List[float]] = None):
        self.bounds = bounds if bounds is not None else _log_bounds()
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum_s = 0.0
        self.min_s = float("inf")
        self.max_s = 0.0

    def record(self, latency_s: float) -> None:
        """Add one observation."""
        index = bisect.bisect_left(self.bounds, latency_s)
        self.counts[index] += 1
        self.count += 1
        self.sum_s += latency_s
        self.min_s = min(self.min_s, latency_s)
        self.max_s = max(self.max_s, latency_s)

    def percentile_s(self, p: float) -> float:
        """The ``p``-th percentile (0 < p <= 100), 0.0 when empty."""
        if self.count == 0:
            return 0.0
        rank = max(1, int(round(p / 100.0 * self.count)))
        seen = 0
        for index, count in enumerate(self.counts):
            seen += count
            if seen >= rank:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.max_s
        return self.max_s

    def to_dict(self) -> Dict[str, Any]:
        """Summary statistics (no raw buckets -- they are internal)."""
        return {
            "count": self.count,
            "mean_s": self.sum_s / self.count if self.count else 0.0,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
            "p50_s": self.percentile_s(50),
            "p95_s": self.percentile_s(95),
            "p99_s": self.percentile_s(99),
        }


class ServeMetrics:
    """All counters and histograms of one server instance."""

    def __init__(self):
        self._lock = threading.Lock()
        self._latency: Dict[str, LatencyHistogram] = {}
        self._requests: Dict[str, int] = {}
        self._errors: Dict[str, int] = {}
        self._sheds: Dict[str, int] = {}
        self.queue_depth = 0
        self.queue_depth_peak = 0
        self.batches = 0
        self.batched_requests = 0
        self.telemetry_samples: Dict[str, Dict[str, float]] = {}

    # -- recording ---------------------------------------------------------------

    def record_request(self, op: str, latency_s: float) -> None:
        """Count one completed request and its service latency."""
        with self._lock:
            self._requests[op] = self._requests.get(op, 0) + 1
            histogram = self._latency.get(op)
            if histogram is None:
                histogram = self._latency.setdefault(op, LatencyHistogram())
            histogram.record(latency_s)

    def record_error(self, kind: str) -> None:
        """Count one failed request by its typed error kind."""
        with self._lock:
            self._errors[kind] = self._errors.get(kind, 0) + 1

    def record_shed(self, reason: str) -> None:
        """Count one admission-control shed by reason."""
        with self._lock:
            self._sheds[reason] = self._sheds.get(reason, 0) + 1

    def record_queue_depth(self, depth: int) -> None:
        """Track the in-flight gauge (and its high-water mark)."""
        with self._lock:
            self.queue_depth = depth
            self.queue_depth_peak = max(self.queue_depth_peak, depth)

    def record_batch(self, size: int) -> None:
        """Count one coalesced exploration batch of ``size`` requests."""
        with self._lock:
            self.batches += 1
            self.batched_requests += size

    def record_telemetry(
        self, model: str, predicted_j: float, measured_j: float
    ) -> Dict[str, float]:
        """Fold one field sample into the per-model drift aggregate."""
        drift = 0.0
        if predicted_j > 0:
            drift = (measured_j - predicted_j) / predicted_j
        with self._lock:
            entry = self.telemetry_samples.setdefault(
                model, {"count": 0.0, "drift_sum": 0.0, "abs_drift_max": 0.0}
            )
            entry["count"] += 1
            entry["drift_sum"] += drift
            entry["abs_drift_max"] = max(entry["abs_drift_max"], abs(drift))
            return {
                "samples": int(entry["count"]),
                "mean_drift": entry["drift_sum"] / entry["count"],
                "max_abs_drift": entry["abs_drift_max"],
            }

    # -- reporting ---------------------------------------------------------------

    @property
    def shed_count(self) -> int:
        """Total sheds across all reasons."""
        with self._lock:
            return sum(self._sheds.values())

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-safe copy of every metric (the ``stats`` payload)."""
        with self._lock:
            requests_total = sum(self._requests.values())
            batched = self.batched_requests
            return {
                "requests_total": requests_total,
                "requests_by_op": dict(self._requests),
                "errors_by_kind": dict(self._errors),
                "sheds_by_reason": dict(self._sheds),
                "shed_count": sum(self._sheds.values()),
                "queue_depth": self.queue_depth,
                "queue_depth_peak": self.queue_depth_peak,
                "batches": self.batches,
                "batched_requests": batched,
                "coalesce_ratio": (
                    batched / self.batches if self.batches else 0.0
                ),
                "latency_by_op": {
                    op: histogram.to_dict()
                    for op, histogram in sorted(self._latency.items())
                },
                "telemetry": {
                    model: {
                        "samples": int(entry["count"]),
                        "mean_drift": (
                            entry["drift_sum"] / entry["count"]
                            if entry["count"]
                            else 0.0
                        ),
                        "max_abs_drift": entry["abs_drift_max"],
                    }
                    for model, entry in sorted(
                        self.telemetry_samples.items()
                    )
                },
            }
