"""Shard router: consistent-hash front for N worker processes.

The single-process :class:`~repro.serve.server.PlanServer` is capped
by the GIL however well it batches.  :class:`ShardRouter` scales it
out: N ``spawn``-ed worker processes (:mod:`repro.serve.worker`), each
owning the full single-process stack -- warm pipeline, local LRU,
micro-batcher, deterministic admission -- behind a front that routes
every planning request by the consistent hash of its *coalescing
identity* (model + QoS).  Same-key requests therefore always land on
the same shard, so per-worker batching and front stores keep working,
``reprice`` hits the shard whose fronts are warm, and each shard's
admission decisions remain a pure function of its own arrival
sequence (per-shard shed determinism).

Workers exchange plans through a digest-addressed shared cache tier
(:mod:`repro.serve.shared_cache`): the first worker to solve a key
publishes the canonical payload bytes, and any worker later routed a
colliding key (after churn, or via broadcast traffic) serves the
byte-identical payload -- so every routed plan digests identically to
a single-process solve.

Health is driven by the workers' ``health`` endpoint (the
``run_selftest(quick=True)`` subset): :meth:`ShardRouter.check_workers`
probes every shard, evicts a failed worker from the ring and respawns
it (same worker id, so its ring arcs -- and key ownership -- are
restored).  A worker that exhausts its respawn budget stays evicted
and the ring redistributes its keys to the survivors.

Correlation propagates across the process boundary by construction:
the router forwards each request with its original id, and the worker
opens its ``serve.request`` span under exactly that id, so one
correlation identity stitches router-side and worker-side traces
together.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import json
import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from ..errors import OverloadedError, ProtocolError, ReproError
from ..obs.audit import get_audit_log
from ..obs.prom import to_prometheus
from ..obs.registry import get_registry, merge_snapshot, snapshot_digest
from ..obs.tracing import correlation, get_tracer, span
from ..recovery.journal import (
    JournaledSharedCache,
    PlanJournal,
    replay_into_cache,
)
from .client import ServeClient
from .protocol import (
    Request,
    Response,
    decode_request,
    encode_response,
    error_from_exception,
)
from .server import JsonLinesListener, ServeConfig
from .service import board_from_params, qos_key_from_params
from .shared_cache import managed_shared_cache, request_key
from .worker import worker_main


class HashRing:
    """Consistent hash ring with virtual nodes.

    Each node owns ``replicas`` points placed by sha256 (stable across
    processes and Python builds, unlike ``hash()``), and a key routes
    to the first point clockwise from its own hash.  Adding or
    removing one node only remaps the keys on that node's arcs -- the
    property that keeps per-shard request streams (and with them shed
    determinism and warm caches) stable under worker churn.
    """

    def __init__(self, replicas: int = 64):
        if replicas < 1:
            raise ReproError("replicas must be >= 1")
        self.replicas = replicas
        self._points: List[Tuple[int, int]] = []  # (point, node), sorted
        self._nodes: set = set()

    @staticmethod
    def _hash(value: str) -> int:
        return int.from_bytes(
            hashlib.sha256(value.encode("utf-8")).digest()[:8], "big"
        )

    def add(self, node: int) -> None:
        """Place ``node``'s virtual points on the ring (idempotent)."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        for replica in range(self.replicas):
            point = self._hash(f"{node}#{replica}")
            bisect.insort(self._points, (point, node))

    def remove(self, node: int) -> None:
        """Drop ``node``'s points; its keys remap to the survivors."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        self._points = [
            (point, owner)
            for point, owner in self._points
            if owner != node
        ]

    @property
    def nodes(self) -> List[int]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def route(self, key: str) -> int:
        """The node owning ``key`` (first point clockwise)."""
        if not self._points:
            raise ReproError("hash ring is empty")
        point = self._hash(key)
        index = bisect.bisect_right(self._points, (point, 2**64))
        if index >= len(self._points):
            index = 0  # wrap
        return self._points[index][1]


def shard_key(params: Dict[str, Any]) -> str:
    """The routing identity of one request's params.

    Deliberately *just* (model, QoS, board): plan and reprice requests
    for the same deployment co-locate (reprice then reuses the shard's
    warm front store), telemetry aggregates per model, and drift
    parameters stay out so a repriced deployment is owned by the same
    shard that planned it.  The board element is appended only when
    the request selects one, so default-board routing (and any
    persisted shard assignment) is unchanged, while the same
    (model, QoS) planned for two boards never shares a shard's warm
    state by accident.
    """
    qos: List[Any] = []
    for name in ("qos_percent", "qos_ms"):
        if params.get(name) is not None:
            qos = [name, str(params[name])]
    identity: List[Any] = [str(params.get("model")), qos]
    if params.get("board") is not None:
        identity.append(str(params["board"]))
    return json.dumps(identity, separators=(",", ":"))


@dataclass
class RouterConfig:
    """Everything one :class:`ShardRouter` is built from.

    Attributes:
        shards: worker-process count.
        host / port: TCP bind address of the router front end.
        replicas: virtual nodes per worker on the hash ring.
        shared_cache_enabled / shared_cache_capacity: the cross-worker
            digest-addressed plan-cache tier.
        health_interval_s: period of the background health loop
            (None disables it; :meth:`ShardRouter.check_workers` can
            still be driven manually).
        health_timeout_s: per-probe deadline before a worker counts
            as failed.
        health_refresh: re-run the worker selftest on every probe
            instead of serving the memoized result.
        max_respawns: per-worker respawn budget; beyond it the worker
            stays evicted from the ring.
        spawn_timeout_s: bound on worker startup (import + pipeline
            warm-up + bind).
        drain_timeout_s: bound on the front-end drain at stop.
        serve: the per-worker :class:`ServeConfig` (its host/port are
            overridden to loopback/ephemeral per worker).
        journal_path: write-ahead journal for the shared plan-cache
            tier (:mod:`repro.recovery.journal`).  On start the tier
            is rebuilt from the journal (so a router restart -- or a
            respawned worker -- starts warm instead of cold), and
            every subsequent publish is journaled write-ahead.
        fault_plan: optional :class:`~repro.faults.plan.FaultPlan`
            whose ``worker_kill_rate`` SIGKILLs the owning worker
            mid-request (the serve tier's chaos hook); decisions come
            from the plan's deterministic ``SERVE_STAGE`` clock.
    """

    shards: int = 2
    host: str = "127.0.0.1"
    port: int = 0
    replicas: int = 64
    shared_cache_enabled: bool = True
    shared_cache_capacity: int = 1024
    health_interval_s: Optional[float] = None
    health_timeout_s: float = 10.0
    health_refresh: bool = False
    max_respawns: int = 2
    spawn_timeout_s: float = 120.0
    drain_timeout_s: float = 10.0
    serve: ServeConfig = field(default_factory=ServeConfig)
    journal_path: Optional[str] = None
    fault_plan: Optional[Any] = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ReproError("shards must be >= 1")


@dataclass
class _Worker:
    """Router-side bookkeeping for one shard."""

    worker_id: int
    process: Any = None
    conn: Any = None
    client: Optional[ServeClient] = None
    port: Optional[int] = None
    pid: Optional[int] = None
    respawns: int = 0
    evicted: bool = False


class ShardRouter(JsonLinesListener):
    """Consistent-hash front over N spawned shard workers.

    Mirrors the :class:`~repro.serve.server.PlanServer` surface that
    clients and the load generator use (``handle_request``,
    ``handle_request_dict``, ``handle_line``, ``stats``, ``start`` /
    ``stop``), so an
    :class:`~repro.serve.client.InProcessClient` drives a router and a
    single server interchangeably.
    """

    def __init__(self, config: Optional[RouterConfig] = None):
        self.config = config or RouterConfig()
        cfg = self.config
        self._init_listener(cfg.host, cfg.port, cfg.drain_timeout_s)
        self._workers: Dict[int, _Worker] = {}
        self.ring = HashRing(replicas=cfg.replicas)
        self.shared_cache: Optional[Any] = None
        self._manager: Any = None
        self._mp_context: Any = None
        self._health_task: Optional[asyncio.Task] = None
        self._health_pass_lock: Optional[asyncio.Lock] = None
        self._started = False
        self._draining = False
        self.routed: Dict[int, int] = {}
        self._fault_clock: Optional[Any] = None
        self._journal_replay: Optional[Dict[str, int]] = None
        self.failovers: Dict[str, int] = {
            "triggered": 0,
            "retried_ok": 0,
            "degraded_shared_cache": 0,
            "degraded_uniform_fallback": 0,
            "chaos_kills": 0,
        }

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> None:
        """Spawn the shards, connect to them, bind the front end."""
        if self._started:
            raise ReproError("router already started")
        import multiprocessing

        self._mp_context = multiprocessing.get_context("spawn")
        self._health_pass_lock = asyncio.Lock()
        if self.config.fault_plan is not None:
            from ..faults.plan import SERVE_STAGE

            self._fault_clock = self.config.fault_plan.clock_for(
                device_id=0, stage=SERVE_STAGE
            )
        if self.config.shared_cache_enabled:
            self._manager = self._mp_context.Manager()
            self.shared_cache = managed_shared_cache(
                self._manager,
                capacity=self.config.shared_cache_capacity,
            )
            if self.config.journal_path is not None:
                # Rebuild the shared tier from the write-ahead journal
                # *before* any worker connects: a restarted router (or
                # a worker respawned into it) starts warm.
                replay = replay_into_cache(
                    self.config.journal_path, self.shared_cache
                )
                self._journal_replay = replay
                if replay["read"] or replay["dropped_tail"]:
                    get_audit_log().record(
                        "recovery.journal",
                        "replay",
                        path=self.config.journal_path,
                        replayed=replay["replayed"],
                        requests=replay["requests"],
                        dropped_tail=replay["dropped_tail"],
                    )
                if replay["replayed"]:
                    get_registry().count(
                        "recovery.journal",
                        n=float(replay["replayed"]),
                        event="replayed",
                    )
                self.shared_cache = JournaledSharedCache(
                    self.shared_cache,
                    PlanJournal(self.config.journal_path),
                )
        # Launch every worker before waiting on any: startup cost is
        # one import + pipeline warm-up, paid in parallel.
        for worker_id in range(self.config.shards):
            self._spawn(worker_id)
        await asyncio.gather(
            *(
                self._connect(worker)
                for worker in self._workers.values()
            )
        )
        for worker in self._workers.values():
            self.ring.add(worker.worker_id)
            self.routed.setdefault(worker.worker_id, 0)
        await super().start()
        if self.config.health_interval_s is not None:
            self._health_task = asyncio.ensure_future(
                self._health_loop()
            )
        self._started = True

    def _spawn(self, worker_id: int) -> _Worker:
        worker = self._workers.get(worker_id) or _Worker(worker_id)
        parent_conn, child_conn = self._mp_context.Pipe()
        worker_config = replace(
            self.config.serve,
            host="127.0.0.1",
            port=0,
            worker_id=worker_id,
        )
        process = self._mp_context.Process(
            target=worker_main,
            args=(worker_id, child_conn, worker_config, self.shared_cache),
            daemon=True,
            name=f"repro-serve-worker-{worker_id}",
        )
        process.start()
        child_conn.close()
        worker.process = process
        worker.conn = parent_conn
        worker.client = None
        worker.port = None
        worker.pid = None
        self._workers[worker_id] = worker
        return worker

    async def _connect(self, worker: _Worker) -> None:
        """Wait for the worker's ready message, then open its client."""
        loop = asyncio.get_running_loop()
        deadline = time.monotonic() + self.config.spawn_timeout_s

        def wait_ready() -> Dict[str, Any]:
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ReproError(
                        f"worker {worker.worker_id} did not become "
                        f"ready within {self.config.spawn_timeout_s}s"
                    )
                if worker.conn.poll(min(remaining, 0.5)):
                    message = worker.conn.recv()
                    if (
                        isinstance(message, dict)
                        and message.get("event") == "ready"
                    ):
                        return message
                if not worker.process.is_alive():
                    raise ReproError(
                        f"worker {worker.worker_id} died during "
                        f"startup (exitcode "
                        f"{worker.process.exitcode})"
                    )

        ready = await loop.run_in_executor(None, wait_ready)
        worker.port = int(ready["port"])
        worker.pid = ready.get("pid")
        worker.client = await ServeClient(
            "127.0.0.1",
            worker.port,
            client_id=f"router-w{worker.worker_id}",
        ).connect()

    async def stop(self) -> None:
        """Drain the front end, stop every worker, shut the tier down."""
        self._draining = True
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
            self._health_task = None
        await self._drain_listener()
        await asyncio.gather(
            *(
                self._stop_worker(worker)
                for worker in self._workers.values()
            )
        )
        if self._manager is not None:
            self._manager.shutdown()
            self._manager = None
        self._started = False

    async def _stop_worker(self, worker: _Worker) -> None:
        if worker.client is not None:
            await worker.client.close()
            worker.client = None
        process = worker.process
        if process is None:
            return
        try:
            worker.conn.send({"event": "stop"})
        except (BrokenPipeError, OSError):
            pass
        loop = asyncio.get_running_loop()
        grace = min(5.0, self.config.drain_timeout_s)
        await loop.run_in_executor(None, lambda: process.join(grace))
        await self._reap(worker)

    async def _reap(self, worker: _Worker) -> None:
        """Escalate terminate -> kill and *always* join.

        Every exit path funnels here (graceful stop, failed drain,
        eviction), so a worker that ignores its drain window is
        SIGKILLed and reaped rather than leaked as a live child or a
        zombie waiting for the next join.
        """
        process = worker.process
        if process is None:
            return
        loop = asyncio.get_running_loop()
        if process.is_alive():
            process.terminate()
            await loop.run_in_executor(None, lambda: process.join(2.0))
        if process.is_alive():
            process.kill()
        # A final unconditional join reaps the exit status whether the
        # process obeyed SIGTERM, needed SIGKILL, or was already dead.
        await loop.run_in_executor(None, process.join)
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.process = None

    # -- health / churn ----------------------------------------------------------

    async def _health_loop(self) -> None:
        assert self.config.health_interval_s is not None
        while True:
            await asyncio.sleep(self.config.health_interval_s)
            try:
                await self.check_workers()
            except asyncio.CancelledError:
                raise
            except Exception:  # noqa: BLE001 - keep probing
                pass

    async def check_workers(self) -> Dict[int, bool]:
        """Probe every shard; evict-and-respawn the ones that fail.

        Returns:
            worker id -> healthy after this pass (a respawned worker
            reports True; one that exhausted its budget, False).
        """
        verdicts: Dict[int, bool] = {}
        # One pass at a time: concurrent failovers (or the health loop)
        # must not double-respawn the same worker id.
        lock = self._health_pass_lock or asyncio.Lock()
        async with lock:
            for worker in list(self._workers.values()):
                if worker.evicted:
                    verdicts[worker.worker_id] = False
                    continue
                healthy = await self._probe(worker)
                if not healthy:
                    healthy = await self._respawn(worker)
                verdicts[worker.worker_id] = healthy
        return verdicts

    async def _probe(self, worker: _Worker) -> bool:
        if (
            worker.client is None
            or worker.process is None
            or not worker.process.is_alive()
        ):
            return False
        try:
            result = await asyncio.wait_for(
                worker.client.request(
                    "health", refresh=self.config.health_refresh
                ),
                timeout=self.config.health_timeout_s,
            )
        except (ReproError, asyncio.TimeoutError, ConnectionError):
            return False
        return bool(result.get("ok"))

    async def _respawn(self, worker: _Worker) -> bool:
        """Evict a failed worker and bring a replacement up.

        The replacement keeps the worker id, so its ring arcs -- and
        therefore key ownership -- are restored exactly.  Past the
        respawn budget the worker stays evicted and the ring
        redistributes its keys to the survivors.
        """
        self.ring.remove(worker.worker_id)
        get_registry().count(
            "router.evictions", worker=str(worker.worker_id)
        )
        get_audit_log().record(
            "serve.router",
            "evict",
            worker=worker.worker_id,
            respawns=worker.respawns,
        )
        if worker.client is not None:
            await worker.client.close()
            worker.client = None
        await self._reap(worker)
        if worker.respawns >= self.config.max_respawns:
            worker.evicted = True
            get_audit_log().record(
                "serve.router",
                "evicted_permanently",
                worker=worker.worker_id,
            )
            return False
        worker.respawns += 1
        try:
            self._spawn(worker.worker_id)
            await self._connect(worker)
        except ReproError:
            worker.evicted = True
            await self._reap(worker)  # the failed replacement too
            return False
        self.ring.add(worker.worker_id)
        get_registry().count(
            "router.respawns", worker=str(worker.worker_id)
        )
        get_audit_log().record(
            "serve.router",
            "respawn",
            worker=worker.worker_id,
            respawns=worker.respawns,
        )
        return True

    # -- request path ------------------------------------------------------------

    async def handle_request(self, request: Request) -> Response:
        """Route one decoded request (the in-process entry point)."""
        if get_tracer() is None:
            return await self._dispatch(request)
        with correlation(request.id or None):
            with span("router.request", op=request.op) as sp:
                response = await self._dispatch(request)
                sp.set(ok=response.ok)
                return response

    async def _dispatch(self, request: Request) -> Response:
        try:
            if request.op == "stats":
                return Response.success(request.id, await self.stats())
            if request.op == "metrics":
                return Response.success(
                    request.id,
                    await self.metrics_payload(request.params),
                )
            if request.op == "health":
                return Response.success(
                    request.id, await self._fanout_health(request)
                )
            return await self._forward(request)
        except Exception as err:  # noqa: BLE001 - typed wire errors
            return Response(
                id=request.id,
                ok=False,
                error=error_from_exception(err),
            )

    async def _forward(self, request: Request) -> Response:
        try:
            worker = self._owner(request)
        except OverloadedError as err:
            return await self._failover(request, None, err)
        self._maybe_chaos_kill(worker, request)
        try:
            return await self._route_to(worker, request)
        except (ReproError, ConnectionError, OSError) as err:
            return await self._failover(request, worker, err)

    async def _route_to(
        self, worker: _Worker, request: Request
    ) -> Response:
        client = worker.client
        if client is None or worker.evicted:
            # A concurrent failover's health pass reaped this worker
            # between owner resolution and the call; same treatment as
            # a dead transport.
            raise ReproError(
                f"worker {worker.worker_id} has no live connection"
            )
        with span(
            "router.route",
            op=request.op,
            worker=worker.worker_id,
        ):
            self.routed[worker.worker_id] = (
                self.routed.get(worker.worker_id, 0) + 1
            )
            get_registry().count(
                "router.routed", worker=str(worker.worker_id)
            )
            return await client.call(request)

    def _maybe_chaos_kill(
        self, worker: _Worker, request: Request
    ) -> None:
        """The WORKER_KILL fault: SIGKILL the owner mid-request."""
        if self._fault_clock is None or request.op not in (
            "plan",
            "reprice",
        ):
            return
        if not self._fault_clock.worker_kill():
            return
        process = worker.process
        if process is not None and process.is_alive():
            process.kill()
            self.failovers["chaos_kills"] += 1
            get_registry().count(
                "router.worker_kills", worker=str(worker.worker_id)
            )
            get_audit_log().record(
                "serve.router",
                "worker_kill",
                worker=worker.worker_id,
                op=request.op,
            )

    async def _failover(
        self,
        request: Request,
        worker: Optional[_Worker],
        err: Exception,
    ) -> Response:
        """Dead-shard request path: health pass, one retry, degrade.

        A request that hit a dead or evicted shard triggers an
        *immediate* health pass (evict/respawn, not waiting for the
        periodic loop), retries exactly once on whichever worker then
        owns the key (the respawned one, or the survivor the ring
        reassigned the arc to), and otherwise degrades gracefully --
        a shared-cache/journal hit or an explicit uniform-fallback
        plan -- rather than erroring.
        """
        self.failovers["triggered"] += 1
        get_registry().count("router.failovers", op=request.op)
        get_audit_log().record(
            "serve.router",
            "failover",
            op=request.op,
            worker=None if worker is None else worker.worker_id,
            error=str(err),
        )
        await self.check_workers()
        try:
            retry_worker = self._owner(request)
        except OverloadedError:
            retry_worker = None
        if retry_worker is not None:
            try:
                response = await self._route_to(retry_worker, request)
            except (ReproError, ConnectionError, OSError):
                pass
            else:
                self.failovers["retried_ok"] += 1
                get_audit_log().record(
                    "serve.router",
                    "failover_retry_ok",
                    op=request.op,
                    worker=retry_worker.worker_id,
                )
                return response
        return self._degraded(request, err)

    def _degraded(self, request: Request, err: Exception) -> Response:
        """Last rung of the failover ladder (plan/reprice only).

        Prefers a digest-verified shared-cache hit by *request*
        identity (the journal-backed index the router can address
        without a pipeline); otherwise answers with an explicit
        ``degraded: uniform-fallback`` payload -- the device holds its
        uniform single-HFO baseline, the one schedule that is always
        safe -- instead of an error.
        """
        if request.op not in ("plan", "reprice"):
            raise err
        rk = self._request_identity(request)
        if rk is not None and self.shared_cache is not None:
            payload = self.shared_cache.lookup_request(rk)
            if payload is not None:
                self.failovers["degraded_shared_cache"] += 1
                get_registry().count(
                    "router.degraded", mode="shared-cache"
                )
                get_audit_log().record(
                    "serve.router",
                    "degraded_serve",
                    op=request.op,
                    mode="shared-cache",
                )
                return Response.success(
                    request.id,
                    {
                        **payload,
                        "cached": True,
                        "degraded": "shared-cache",
                    },
                )
        self.failovers["degraded_uniform_fallback"] += 1
        get_registry().count("router.degraded", mode="uniform-fallback")
        get_audit_log().record(
            "serve.router",
            "degraded_serve",
            op=request.op,
            mode="uniform-fallback",
        )
        return Response.success(
            request.id,
            {
                "degraded": "uniform-fallback",
                "model": request.params.get("model"),
                "policy": "hold-uniform-baseline",
                "reason": str(err),
            },
        )

    @staticmethod
    def _request_identity(request: Request) -> Optional[str]:
        """The shared-cache request key for a request (None if malformed)."""
        model = request.params.get("model")
        if not isinstance(model, str) or not model:
            return None
        try:
            qos_key = qos_key_from_params(request.params)
            board = board_from_params(request.params)
        except ReproError:
            return None
        return request_key(model, qos_key, board)

    def _owner(self, request: Request) -> _Worker:
        if not len(self.ring):
            raise OverloadedError(reason="no_workers", retry_after_s=1.0)
        worker_id = self.ring.route(shard_key(request.params))
        worker = self._workers[worker_id]
        if worker.client is None:
            raise OverloadedError(
                reason="worker_down", retry_after_s=1.0
            )
        return worker

    async def _fanout_health(
        self, request: Request
    ) -> Dict[str, Any]:
        """``health`` fans out: the fleet is healthy if every live
        shard is (evicted workers report as failed)."""
        entries: Dict[str, Any] = {}
        ok = True
        for worker in self._workers.values():
            if worker.evicted or worker.client is None:
                entries[str(worker.worker_id)] = {
                    "ok": False,
                    "evicted": worker.evicted,
                }
                ok = False
                continue
            try:
                result = await asyncio.wait_for(
                    worker.client.request(
                        "health", **dict(request.params)
                    ),
                    timeout=self.config.health_timeout_s,
                )
            except (ReproError, asyncio.TimeoutError, ConnectionError):
                entries[str(worker.worker_id)] = {"ok": False}
                ok = False
                continue
            entries[str(worker.worker_id)] = result
            ok = ok and bool(result.get("ok"))
        return {"ok": ok, "workers": entries}

    # -- stats -------------------------------------------------------------------

    def _stats_local(self) -> Dict[str, Any]:
        """Router-side stats (no worker round-trips; see :meth:`stats`)."""
        return {
            "router": {
                "shards": self.config.shards,
                "replicas": self.config.replicas,
                "live_workers": len(self.ring),
                "evicted_workers": sorted(
                    w.worker_id
                    for w in self._workers.values()
                    if w.evicted
                ),
                "routed": {
                    str(wid): count
                    for wid, count in sorted(self.routed.items())
                },
                "respawns": {
                    str(w.worker_id): w.respawns
                    for w in self._workers.values()
                    if w.respawns
                },
                "shared_cache": (
                    self.shared_cache.stats()
                    if self.shared_cache is not None
                    else None
                ),
                "failovers": dict(self.failovers),
                "journal": (
                    None
                    if self.config.journal_path is None
                    else {
                        "path": self.config.journal_path,
                        "replay": self._journal_replay,
                    }
                ),
            }
        }

    async def metrics_payload(
        self, params: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        """The ``metrics`` op, fleet-coherent: every live worker's
        published registry plus the router's own, merged losslessly
        (counters and histogram buckets add cell-wise; see
        :func:`repro.obs.registry.merge_snapshot`).  The result is
        itself a valid snapshot -- scrapeable as one process --
        and carries the per-worker digests so a client can audit
        exactly which shard views went into the merge."""
        fmt = (params or {}).get("format", "json")
        if fmt not in ("json", "prom"):
            raise ProtocolError(
                f"metrics format must be 'json' or 'prom', got {fmt!r}"
            )
        # Worker registries only: the merged view must equal the sum
        # of the per-worker registries exactly (the acceptance pin);
        # the router process's own counters stay under ``stats``'s
        # local block rather than polluting the fleet totals.
        snapshots: List[Dict[str, Any]] = []
        worker_digests: Dict[str, Any] = {}
        for worker in self._workers.values():
            if worker.evicted or worker.client is None:
                continue
            try:
                result = await worker.client.request("metrics")
            except (ReproError, ConnectionError):
                continue
            snapshots.append(result.get("registry", {}))
            worker_digests[str(worker.worker_id)] = result.get(
                "digest"
            )
        merged = merge_snapshot(snapshots)
        payload: Dict[str, Any] = {
            "worker_id": None,
            "workers": worker_digests,
            "registry": merged,
            "digest": snapshot_digest(merged),
        }
        if fmt == "prom":
            payload["exposition"] = to_prometheus(merged)
        return payload

    @staticmethod
    def _legacy_totals(registry: Dict[str, Any]) -> Dict[str, Any]:
        """The pre-merge ``metrics`` block, derived from a merged
        registry snapshot so existing consumers of the single-process
        schema keep working (wire compatibility)."""

        def _cells(family: str) -> Dict[str, float]:
            return registry.get("counters", {}).get(family, {})

        def _by_label(family: str) -> Dict[str, int]:
            return {
                label_repr.partition("=")[2]: int(value)
                for label_repr, value in sorted(
                    _cells(family).items()
                )
            }

        def _total(family: str) -> int:
            return int(sum(_cells(family).values()))

        batches = _total("serve.batches")
        batched = _total("serve.batched_requests")
        return {
            "requests_total": _total("serve.requests"),
            "requests_by_op": _by_label("serve.requests"),
            "errors_by_kind": _by_label("serve.errors"),
            "sheds_by_reason": _by_label("serve.sheds"),
            "shed_count": _total("serve.sheds"),
            "batches": batches,
            "batched_requests": batched,
            "coalesce_ratio": batched / batches if batches else 0.0,
        }

    async def stats(self) -> Dict[str, Any]:
        """Aggregated stats: router view, per-worker payloads, totals.

        Unlike :class:`PlanServer` this is a coroutine -- it fans the
        ``stats`` op out to every live worker.  Each worker's payload
        already carries its full published registry, so the router
        merges those losslessly via
        :func:`repro.obs.registry.merge_snapshot` (together with its
        own registry) and publishes the result under ``registry`` --
        histograms and all, nothing hand-picked.  The legacy
        ``metrics`` block is *derived* from the merged registry for
        wire compatibility, and the per-worker views stay available
        under ``workers``.
        """
        local = self._stats_local()
        workers: Dict[str, Any] = {}
        for worker in self._workers.values():
            if worker.evicted or worker.client is None:
                continue
            try:
                workers[str(worker.worker_id)] = (
                    await worker.client.request("stats")
                )
            except (ReproError, ConnectionError):
                continue
        merged_registry = merge_snapshot(
            [stats.get("registry", {}) for stats in workers.values()]
        )
        cache = {"hits": 0, "misses": 0, "evictions": 0, "size": 0}
        for stats in workers.values():
            for key in cache:
                cache[key] += stats.get("cache", {}).get(key, 0)
        return {
            **local,
            "metrics": self._legacy_totals(merged_registry),
            "cache": cache,
            "registry": merged_registry,
            "audit": get_audit_log().counts(),
            "workers": workers,
        }

    # -- wire adapters -----------------------------------------------------------

    async def handle_request_dict(
        self, data: Dict[str, Any]
    ) -> Dict[str, Any]:
        """In-process entry point (no sockets): dict in, dict out."""
        line = json.dumps(data, separators=(",", ":"))
        response = await self.handle_line(line)
        return json.loads(response)

    async def handle_line(self, line: str) -> str:
        """One request line -> one response line (never raises)."""
        try:
            request = decode_request(line)
        except ProtocolError as err:
            return encode_response(
                Response(
                    id="", ok=False, error=error_from_exception(err)
                )
            )
        if self._draining:
            err = OverloadedError(reason="draining", retry_after_s=1.0)
            return encode_response(Response.failure(request.id, err))
        response = await self.handle_request(request)
        return encode_response(response)
