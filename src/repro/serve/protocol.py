"""Versioned JSON-lines request/response protocol of the serve layer.

One request or response is one line of JSON (no embedded newlines),
so the transport is trivially framable over TCP, pipes or files:

Request::

    {"v": 1, "id": "c1-7", "op": "plan",
     "params": {"model": "tiny", "qos_percent": 30},
     "deadline_s": 0.5}

Response::

    {"v": 1, "id": "c1-7", "ok": true, "result": {...}}
    {"v": 1, "id": "c1-7", "ok": false,
     "error": {"kind": "qos_infeasible", "message": "...",
               "detail": {"qos_s": 0.001, "min_latency_s": 0.0019}}}

Operations: ``plan`` (optimize a deployment plan), ``reprice``
(re-solve the MCKP over cached fronts under drifted conditions),
``telemetry`` (report a measured-vs-predicted energy sample),
``stats`` (full status payload), ``health`` (quick selftest subset)
and ``metrics`` (registry snapshot only, optionally rendered as
Prometheus exposition text via ``params: {"format": "prom"}``).

Every library exception maps to a *typed* error payload via
:func:`error_from_exception`, so clients switch on ``error.kind``
instead of parsing messages.  Unknown kinds degrade to ``internal``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from .. import errors

#: Wire-format version; bumped on incompatible schema changes.
PROTOCOL_VERSION = 1

#: The operations a server understands.
OPS = ("plan", "reprice", "telemetry", "stats", "health", "metrics")

#: Exception class -> wire error kind.  Checked in order, so
#: subclasses must precede their bases.
_ERROR_KINDS = (
    (errors.QoSInfeasibleError, "qos_infeasible"),
    (errors.OverloadedError, "overloaded"),
    (errors.ServeUnavailableError, "unavailable"),
    (errors.DeadlineExceededError, "deadline_exceeded"),
    (errors.ProtocolError, "bad_request"),
    (errors.SolverError, "solver"),
    (errors.GraphError, "graph"),
    (errors.DesignSpaceError, "design_space"),
    (errors.ClockConfigError, "clock_config"),
    (errors.ClockSwitchError, "clock_switch"),
    (errors.PowerModelError, "power_model"),
    (errors.SensorReadError, "sensor_read"),
    (errors.WatchdogResetError, "watchdog_reset"),
    (errors.FaultInjectionError, "fault_injection"),
    (errors.ReproError, "repro_error"),
)


@dataclass(frozen=True)
class ErrorPayload:
    """Typed wire encoding of one failure."""

    kind: str
    message: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"kind": self.kind, "message": self.message}
        if self.detail:
            data["detail"] = self.detail
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ErrorPayload":
        return cls(
            kind=str(data.get("kind", "internal")),
            message=str(data.get("message", "")),
            detail=dict(data.get("detail", {})),
        )


def error_from_exception(exc: BaseException) -> ErrorPayload:
    """Map a raised exception to its typed wire payload."""
    detail: Dict[str, Any] = {}
    if isinstance(exc, errors.QoSInfeasibleError):
        detail = {
            "qos_s": exc.qos_s,
            "min_latency_s": exc.min_latency_s,
        }
    elif isinstance(exc, errors.OverloadedError):
        detail = {
            "reason": exc.reason,
            "retry_after_s": exc.retry_after_s,
        }
    elif isinstance(exc, errors.ServeUnavailableError):
        detail = {
            "attempts": exc.attempts,
            "last_error": exc.last_error,
        }
    elif isinstance(exc, errors.DeadlineExceededError):
        detail = {"deadline_s": exc.deadline_s}
    elif isinstance(exc, errors.WatchdogResetError):
        detail = {"layer_name": exc.layer_name, "resets": exc.resets}
    for klass, kind in _ERROR_KINDS:
        if isinstance(exc, klass):
            return ErrorPayload(kind=kind, message=str(exc), detail=detail)
    return ErrorPayload(kind="internal", message=str(exc), detail=detail)


def exception_from_error(error: ErrorPayload) -> errors.ReproError:
    """Rehydrate a client-side exception from a typed payload.

    Only the kinds a client is expected to branch on get their real
    class back; everything else surfaces as a plain
    :class:`~repro.errors.ReproError` carrying the wire message.
    """
    if error.kind == "qos_infeasible":
        return errors.QoSInfeasibleError(
            qos_s=float(error.detail.get("qos_s", 0.0)),
            min_latency_s=float(error.detail.get("min_latency_s", 0.0)),
        )
    if error.kind == "overloaded":
        return errors.OverloadedError(
            reason=str(error.detail.get("reason", "overloaded")),
            retry_after_s=float(error.detail.get("retry_after_s", 0.0)),
        )
    if error.kind == "unavailable":
        return errors.ServeUnavailableError(
            attempts=int(error.detail.get("attempts", 1)),
            last_error=str(error.detail.get("last_error", "")),
        )
    if error.kind == "deadline_exceeded":
        return errors.DeadlineExceededError(
            deadline_s=float(error.detail.get("deadline_s", 0.0))
        )
    if error.kind == "bad_request":
        return errors.ProtocolError(error.message)
    return errors.ReproError(f"[{error.kind}] {error.message}")


@dataclass(frozen=True)
class Request:
    """One decoded request line."""

    op: str
    id: str
    params: Dict[str, Any] = field(default_factory=dict)
    deadline_s: Optional[float] = None


@dataclass(frozen=True)
class Response:
    """One decoded response line."""

    id: str
    ok: bool
    result: Optional[Dict[str, Any]] = None
    error: Optional[ErrorPayload] = None

    @classmethod
    def success(cls, request_id: str, result: Dict[str, Any]) -> "Response":
        return cls(id=request_id, ok=True, result=result)

    @classmethod
    def failure(cls, request_id: str, exc: BaseException) -> "Response":
        return cls(id=request_id, ok=False, error=error_from_exception(exc))


def _dump(data: Dict[str, Any]) -> str:
    """Canonical one-line JSON (sorted keys, no whitespace)."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def encode_request(request: Request) -> str:
    """Encode a request as one JSON line (without the newline)."""
    data: Dict[str, Any] = {
        "v": PROTOCOL_VERSION,
        "id": request.id,
        "op": request.op,
        "params": request.params,
    }
    if request.deadline_s is not None:
        data["deadline_s"] = request.deadline_s
    return _dump(data)


def encode_response(response: Response) -> str:
    """Encode a response as one JSON line (without the newline)."""
    data: Dict[str, Any] = {
        "v": PROTOCOL_VERSION,
        "id": response.id,
        "ok": response.ok,
    }
    if response.ok:
        data["result"] = response.result or {}
    else:
        error = response.error or ErrorPayload("internal", "unknown error")
        data["error"] = error.to_dict()
    return _dump(data)


def _parse_line(line: str) -> Dict[str, Any]:
    try:
        data = json.loads(line)
    except (TypeError, ValueError) as err:
        raise errors.ProtocolError(f"unparseable JSON line: {err}") from err
    if not isinstance(data, dict):
        raise errors.ProtocolError(
            f"expected a JSON object, got {type(data).__name__}"
        )
    version = data.get("v")
    if version != PROTOCOL_VERSION:
        raise errors.ProtocolError(
            f"unsupported protocol version {version!r} "
            f"(expected {PROTOCOL_VERSION})"
        )
    return data


def decode_request(line: str) -> Request:
    """Decode and validate one request line.

    Raises:
        ProtocolError: malformed JSON, wrong version, unknown op,
            missing id, or ill-typed params/deadline.
    """
    data = _parse_line(line)
    op = data.get("op")
    if op not in OPS:
        raise errors.ProtocolError(
            f"unknown op {op!r}; expected one of {sorted(OPS)}"
        )
    request_id = data.get("id")
    if not isinstance(request_id, str) or not request_id:
        raise errors.ProtocolError("request id must be a non-empty string")
    params = data.get("params", {})
    if not isinstance(params, dict):
        raise errors.ProtocolError("params must be a JSON object")
    deadline_s = data.get("deadline_s")
    if deadline_s is not None:
        try:
            deadline_s = float(deadline_s)
        except (TypeError, ValueError) as err:
            raise errors.ProtocolError(
                f"deadline_s must be a number: {err}"
            ) from err
        if deadline_s <= 0:
            raise errors.ProtocolError("deadline_s must be positive")
    return Request(
        op=op, id=request_id, params=params, deadline_s=deadline_s
    )


def decode_response(line: str) -> Response:
    """Decode one response line.

    Raises:
        ProtocolError: malformed JSON or wrong version.
    """
    data = _parse_line(line)
    request_id = str(data.get("id", ""))
    ok = bool(data.get("ok"))
    if ok:
        result = data.get("result", {})
        if not isinstance(result, dict):
            raise errors.ProtocolError("result must be a JSON object")
        return Response(id=request_id, ok=True, result=result)
    error = data.get("error")
    if not isinstance(error, dict):
        raise errors.ProtocolError("error must be a JSON object")
    return Response(
        id=request_id, ok=False, error=ErrorPayload.from_dict(error)
    )


def plan_digest(payload: Dict[str, Any]) -> str:
    """sha256 over the canonical JSON encoding of a plan payload.

    The acceptance gate of the serve layer: a plan served from the
    cache must digest identically to one computed fresh, so the digest
    is taken over the canonical (sorted-keys, fixed-separator) byte
    encoding rather than whatever the transport emitted.
    """
    return hashlib.sha256(_dump(payload).encode("utf-8")).hexdigest()
