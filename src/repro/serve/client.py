"""Clients for the serve protocol: TCP and in-process.

:class:`ServeClient` speaks the JSON-lines protocol over TCP with
pipelining -- requests carry monotonically increasing ids and a
background reader task fans responses out to their waiters, so many
coroutines can share one connection.

:class:`InProcessClient` drives a :class:`~repro.serve.server.PlanServer`
directly (no sockets): the default transport for tests and the load
generator, where the event loop, the admission controller and the
batcher behave exactly as over TCP but without kernel buffering in
between.

Both expose the same ``request(op, ...) -> result dict`` surface and
raise the rehydrated typed exception on error responses, so call sites
cannot tell the transports apart.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, Dict, Optional

from ..errors import ProtocolError, ReproError
from .protocol import (
    Request,
    Response,
    decode_response,
    encode_request,
    exception_from_error,
)
from .server import PlanServer


def _result_or_raise(response: Response) -> Dict[str, Any]:
    if response.ok:
        return response.result or {}
    error = response.error
    if error is None:
        raise ReproError("malformed failure response without error")
    raise exception_from_error(error)


class InProcessClient:
    """Drives a server's request path directly, without sockets."""

    def __init__(self, server: PlanServer, client_id: str = "local"):
        self.server = server
        self._ids = itertools.count(1)
        self.client_id = client_id

    async def request(
        self,
        op: str,
        deadline_s: Optional[float] = None,
        **params: Any,
    ) -> Dict[str, Any]:
        """Send one request; returns the result or raises typed."""
        request = Request(
            op=op,
            id=f"{self.client_id}-{next(self._ids)}",
            params=params,
            deadline_s=deadline_s,
        )
        response = await self.server.handle_request(request)
        return _result_or_raise(response)


class ServeClient:
    """JSON-lines TCP client with id-correlated pipelining."""

    def __init__(self, host: str, port: int, client_id: str = "tcp"):
        self.host = host
        self.port = port
        self.client_id = client_id
        self._ids = itertools.count(1)
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._waiters: Dict[str, "asyncio.Future[Response]"] = {}
        self._read_task: Optional[asyncio.Task] = None
        self._write_lock = asyncio.Lock()

    async def connect(self) -> "ServeClient":
        """Open the connection and start the response dispatcher."""
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        self._read_task = asyncio.ensure_future(self._read_loop())
        return self

    async def _read_loop(self) -> None:
        assert self._reader is not None
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    response = decode_response(line.decode("utf-8"))
                except ProtocolError:
                    continue  # garbage on the wire; ids below time out
                waiter = self._waiters.pop(response.id, None)
                if waiter is not None and not waiter.done():
                    waiter.set_result(response)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            failure = ReproError("connection closed")
            for waiter in self._waiters.values():
                if not waiter.done():
                    waiter.set_exception(failure)
            self._waiters.clear()

    async def call(self, request: Request) -> Response:
        """Send a pre-built request; return the decoded response.

        The raw pass-through surface the shard router forwards on: the
        response comes back *verbatim* (typed error payloads intact,
        not rehydrated), and the request keeps its original id -- which
        is what propagates one correlation identity from the router
        process into the worker's span tree.  The id must be unique
        among this connection's in-flight requests.
        """
        if self._writer is None:
            raise ReproError("client is not connected")
        if request.id in self._waiters:
            raise ReproError(
                f"request id {request.id!r} is already in flight "
                "on this connection"
            )
        loop = asyncio.get_running_loop()
        waiter: "asyncio.Future[Response]" = loop.create_future()
        self._waiters[request.id] = waiter
        line = encode_request(request).encode("utf-8") + b"\n"
        async with self._write_lock:
            self._writer.write(line)
            await self._writer.drain()
        return await waiter

    async def request(
        self,
        op: str,
        deadline_s: Optional[float] = None,
        **params: Any,
    ) -> Dict[str, Any]:
        """Send one request; returns the result or raises typed.

        Concurrent callers share the connection: responses are matched
        back by request id, whatever order the server answers in.
        """
        request_id = f"{self.client_id}-{next(self._ids)}"
        request = Request(
            op=op, id=request_id, params=params, deadline_s=deadline_s
        )
        response = await self.call(request)
        return _result_or_raise(response)

    async def close(self) -> None:
        """Tear the connection down and stop the dispatcher."""
        if self._read_task is not None:
            self._read_task.cancel()
            try:
                await self._read_task
            except asyncio.CancelledError:
                pass
            self._read_task = None
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
        self._reader = None
