"""Clients for the serve protocol: TCP and in-process.

:class:`ServeClient` speaks the JSON-lines protocol over TCP with
pipelining -- requests carry monotonically increasing ids and a
background reader task fans responses out to their waiters, so many
coroutines can share one connection.

:class:`InProcessClient` drives a :class:`~repro.serve.server.PlanServer`
directly (no sockets): the default transport for tests and the load
generator, where the event loop, the admission controller and the
batcher behave exactly as over TCP but without kernel buffering in
between.

Both expose the same ``request(op, ...) -> result dict`` surface and
raise the rehydrated typed exception on error responses, so call sites
cannot tell the transports apart.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, Dict, Optional

from ..errors import (
    OverloadedError,
    ProtocolError,
    ReproError,
    ServeUnavailableError,
)
from .protocol import (
    Request,
    Response,
    decode_response,
    encode_request,
    exception_from_error,
)
from .server import PlanServer


def _result_or_raise(response: Response) -> Dict[str, Any]:
    if response.ok:
        return response.result or {}
    error = response.error
    if error is None:
        raise ReproError("malformed failure response without error")
    raise exception_from_error(error)


class InProcessClient:
    """Drives a server's request path directly, without sockets."""

    def __init__(self, server: PlanServer, client_id: str = "local"):
        self.server = server
        self._ids = itertools.count(1)
        self.client_id = client_id

    async def request(
        self,
        op: str,
        deadline_s: Optional[float] = None,
        **params: Any,
    ) -> Dict[str, Any]:
        """Send one request; returns the result or raises typed."""
        request = Request(
            op=op,
            id=f"{self.client_id}-{next(self._ids)}",
            params=params,
            deadline_s=deadline_s,
        )
        response = await self.server.handle_request(request)
        return _result_or_raise(response)


class ServeClient:
    """JSON-lines TCP client with id-correlated pipelining.

    Args:
        host / port: the serve endpoint.
        client_id: request-id prefix.
        retries: bounded retry budget for :meth:`request`.  With the
            default 0 every failure surfaces immediately (the router's
            forwarding clients do their own failover).  With N > 0 a
            lost connection is reopened and the request re-sent, and an
            :class:`~repro.errors.OverloadedError` shed is retried
            after the *server's* ``retry_after_s`` hint -- up to N
            retries with exponential backoff, after which the typed
            :class:`~repro.errors.ServeUnavailableError` (or the last
            shed) is raised instead of a silent generic failure.
        backoff_s / backoff_cap_s: exponential-backoff schedule; the
            actual wait is ``max(server retry_after_s, backoff)``.
    """

    def __init__(
        self,
        host: str,
        port: int,
        client_id: str = "tcp",
        retries: int = 0,
        backoff_s: float = 0.05,
        backoff_cap_s: float = 2.0,
    ):
        self.host = host
        self.port = port
        self.client_id = client_id
        self.retries = retries
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s
        self._ids = itertools.count(1)
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._waiters: Dict[str, "asyncio.Future[Response]"] = {}
        self._read_task: Optional[asyncio.Task] = None
        self._write_lock = asyncio.Lock()

    async def connect(self) -> "ServeClient":
        """Open the connection and start the response dispatcher."""
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        self._read_task = asyncio.ensure_future(self._read_loop())
        return self

    async def _read_loop(self) -> None:
        assert self._reader is not None
        reason = "connection closed"
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    response = decode_response(line.decode("utf-8"))
                except ProtocolError:
                    continue  # garbage on the wire; ids below time out
                waiter = self._waiters.pop(response.id, None)
                if waiter is not None and not waiter.done():
                    waiter.set_result(response)
        except asyncio.CancelledError:
            pass
        except (ConnectionError, OSError) as err:
            # Surface the *cause* instead of swallowing it: every
            # in-flight waiter fails typed, so callers (and the retry
            # loop below) can tell a dead peer from a bad request.
            reason = f"connection lost: {err}"
        finally:
            # One exception instance per waiter: a shared object would
            # accrete traceback frames from every consumer that raises
            # it, and futures abandoned mid-write would log them.
            for waiter in self._waiters.values():
                if not waiter.done():
                    waiter.set_exception(
                        ServeUnavailableError(
                            attempts=1, last_error=reason
                        )
                    )
            self._waiters.clear()

    async def call(self, request: Request) -> Response:
        """Send a pre-built request; return the decoded response.

        The raw pass-through surface the shard router forwards on: the
        response comes back *verbatim* (typed error payloads intact,
        not rehydrated), and the request keeps its original id -- which
        is what propagates one correlation identity from the router
        process into the worker's span tree.  The id must be unique
        among this connection's in-flight requests.
        """
        if self._writer is None:
            raise ReproError("client is not connected")
        if self._read_task is None or self._read_task.done():
            # The dispatcher already exited (EOF or connection error
            # swept its waiters); a fresh waiter would never resolve.
            raise ServeUnavailableError(
                attempts=1, last_error="connection closed"
            )
        if request.id in self._waiters:
            raise ReproError(
                f"request id {request.id!r} is already in flight "
                "on this connection"
            )
        loop = asyncio.get_running_loop()
        waiter: "asyncio.Future[Response]" = loop.create_future()
        self._waiters[request.id] = waiter
        line = encode_request(request).encode("utf-8") + b"\n"
        try:
            async with self._write_lock:
                writer = self._writer
                if writer is None:
                    # close() won the race for the write lock: the
                    # connection was torn down between the entry
                    # check and this write.
                    raise ServeUnavailableError(
                        attempts=1, last_error="connection closed"
                    )
                writer.write(line)
                await writer.drain()
        except BaseException:
            # The write never made it out; retire the waiter so the
            # read loop's shutdown sweep doesn't fail an orphan (and
            # consume the sweep's exception if it already did).
            self._waiters.pop(request.id, None)
            if waiter.done():
                waiter.exception()
            else:
                waiter.cancel()
            raise
        return await waiter

    async def _reconnect(self) -> None:
        """Tear down a dead connection and open a fresh one."""
        await self.close()
        await self.connect()

    async def request(
        self,
        op: str,
        deadline_s: Optional[float] = None,
        **params: Any,
    ) -> Dict[str, Any]:
        """Send one request; returns the result or raises typed.

        Concurrent callers share the connection: responses are matched
        back by request id, whatever order the server answers in.
        With ``retries > 0``, connection failures reconnect-and-resend
        and overload sheds back off by the server's ``retry_after_s``
        hint, exponentially, until the budget is spent.
        """
        attempts = 0
        delay = self.backoff_s
        while True:
            attempts += 1
            request = Request(
                op=op,
                id=f"{self.client_id}-{next(self._ids)}",
                params=params,
                deadline_s=deadline_s,
            )
            try:
                if self._writer is None:
                    await self.connect()
                response = await self.call(request)
                return _result_or_raise(response)
            except OverloadedError as err:
                if attempts > self.retries:
                    raise
                wait = max(err.retry_after_s, delay)
            except (
                ServeUnavailableError,
                ConnectionError,
                OSError,
            ) as err:
                if attempts > self.retries:
                    if isinstance(err, ServeUnavailableError):
                        raise ServeUnavailableError(
                            attempts=attempts,
                            last_error=err.last_error or str(err),
                        ) from err
                    raise ServeUnavailableError(
                        attempts=attempts, last_error=str(err)
                    ) from err
                try:
                    await self._reconnect()
                except (ConnectionError, OSError):
                    pass  # endpoint still down; back off and re-try
                wait = delay
            delay = min(delay * 2.0, self.backoff_cap_s)
            await asyncio.sleep(wait)

    async def close(self) -> None:
        """Tear the connection down and stop the dispatcher."""
        if self._read_task is not None:
            self._read_task.cancel()
            try:
                await self._read_task
            except asyncio.CancelledError:
                pass
            self._read_task = None
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
        self._reader = None
