"""Micro-batching: coalesce concurrent identical plan requests.

Plans are pure functions of (model, board, space, QoS), so N
concurrent requests with the same coalescing key need exactly one
exploration: the first request opens a *batch* (a shared future plus a
short collection window), every later request for the same key joins
it, and when the window closes the work runs once on a thread-pool
executor and fans out to every waiter.  A batch *closes* the moment it
dispatches -- when the window elapses or ``max_batch`` waiters have
joined -- so requests arriving later open a fresh batch instead of
silently riding a bounded one past its bound.  (The answer they
compute is identical; usually it is a plan-cache hit by then.)

Per-request deadlines ride on top: each waiter guards the *shared*
future with its own ``asyncio.wait_for`` around an ``asyncio.shield``,
so one impatient client times out with a typed
:class:`~repro.errors.DeadlineExceededError` without cancelling the
exploration the other waiters (and the plan cache) still want.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from ..errors import DeadlineExceededError, ReproError
from ..obs.tracing import span, wrap
from .metrics import ServeMetrics


@dataclass
class _Batch:
    """One in-flight coalesced computation."""

    future: "asyncio.Future[Any]"
    size: int = 0
    dispatched: bool = field(default=False)


class PlanBatcher:
    """Coalesces identical requests into one shared-explorer run.

    Args:
        metrics: batch sizes are reported here.
        window_s: collection window between the first request of a
            batch and its dispatch; concurrent requests arriving
            within it (or while the work runs) share one execution.
        max_batch: dispatch immediately once this many requests have
            joined, instead of waiting the window out.
        max_workers: thread-pool width for the blocking planner calls.
        enabled: when False every request runs independently (the
            benchmark's no-batching mode); deadlines still apply.
    """

    def __init__(
        self,
        metrics: Optional[ServeMetrics] = None,
        window_s: float = 0.002,
        max_batch: int = 32,
        max_workers: int = 4,
        enabled: bool = True,
        executor: Optional[ThreadPoolExecutor] = None,
    ):
        if window_s < 0:
            raise ReproError("window_s must be >= 0")
        if max_batch < 1:
            raise ReproError("max_batch must be >= 1")
        if max_workers < 1:
            raise ReproError("max_workers must be >= 1")
        self.metrics = metrics
        self.window_s = window_s
        self.max_batch = max_batch
        self.enabled = enabled
        self.executor = executor or ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve"
        )
        self._owns_executor = executor is None
        self._inflight: Dict[Tuple, _Batch] = {}

    async def submit(
        self,
        key: Tuple,
        fn: Callable[[], Any],
        deadline_s: Optional[float] = None,
    ) -> Any:
        """Run ``fn`` (coalesced by ``key``) and await its result.

        Raises:
            DeadlineExceededError: the shared result did not arrive
                within this caller's deadline (the work continues for
                the other waiters).
        """
        loop = asyncio.get_running_loop()
        if not self.enabled:
            # wrap() carries this request's span/correlation context
            # into the worker thread (no-op while tracing is off).
            future: "asyncio.Future[Any]" = loop.run_in_executor(
                self.executor, wrap(fn)
            )
            return await self._await_with_deadline(future, deadline_s)
        batch = self._inflight.get(key)
        if batch is None or batch.dispatched:
            # No open batch for the key: either none in flight, or the
            # in-flight one already dispatched (window elapsed or
            # max_batch reached) and is closed to new joiners --
            # joining it would let a "bounded" batch grow without
            # bound and undercount coalescing metrics.
            batch = _Batch(future=loop.create_future())
            # Every waiter may have timed out by completion time;
            # retrieve the exception eagerly so the event loop never
            # logs "exception was never retrieved" for a shed batch.
            batch.future.add_done_callback(
                lambda f: f.exception() if not f.cancelled() else None
            )
            self._inflight[key] = batch
            asyncio.ensure_future(self._run_batch(key, batch, fn))
        batch.size += 1
        if batch.size >= self.max_batch:
            batch.dispatched = True
        return await self._await_with_deadline(
            asyncio.shield(batch.future), deadline_s
        )

    async def _await_with_deadline(
        self, awaitable, deadline_s: Optional[float]
    ) -> Any:
        if deadline_s is None:
            return await awaitable
        try:
            return await asyncio.wait_for(awaitable, timeout=deadline_s)
        except asyncio.TimeoutError:
            raise DeadlineExceededError(deadline_s) from None

    async def _run_batch(
        self, key: Tuple, batch: _Batch, fn: Callable[[], Any]
    ) -> None:
        loop = asyncio.get_running_loop()
        if self.window_s > 0:
            deadline = loop.time() + self.window_s
            while not batch.dispatched and loop.time() < deadline:
                await asyncio.sleep(
                    min(self.window_s / 4, deadline - loop.time())
                )
        batch.dispatched = True
        if self.metrics is not None:
            self.metrics.record_batch(batch.size)
        size = batch.size

        def call():
            with span("serve.batch", op=str(key[0]), size=size):
                return fn()

        try:
            # This task was created in the first submitter's context,
            # so wrap() hands that request's span/correlation context
            # to the worker thread (no-op while tracing is off).
            result = await loop.run_in_executor(self.executor, wrap(call))
        except BaseException as err:  # noqa: BLE001 - fan the error out
            if not batch.future.cancelled():
                batch.future.set_exception(err)
        else:
            if not batch.future.cancelled():
                batch.future.set_result(result)
        finally:
            # Later arrivals for the key start a fresh batch; anyone
            # who joined this one already holds the future.
            if self._inflight.get(key) is batch:
                del self._inflight[key]

    @property
    def inflight_keys(self) -> int:
        """Currently open batches (for tests and stats)."""
        return len(self._inflight)

    def shutdown(self) -> None:
        """Stop the worker pool (in-flight work completes)."""
        if self._owns_executor:
            self.executor.shutdown(wait=True)
