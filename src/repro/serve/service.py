"""The synchronous planning backend behind the serve endpoints.

One :class:`PlanService` owns a warm :class:`DAEDVFSPipeline` wired
into a fleet-shared pricing state
(:class:`~repro.fleet.pricing.FleetSharedState` +
:class:`~repro.fleet.pricing.SharedComponentExplorer` +
:class:`~repro.fleet.pricing.ReplayingRuntime`), the bounded LRU
:class:`~repro.serve.cache.PlanCache`, and a small store of the most
recent optimization results -- keyed, like the plan cache, by the full
(model, board, space, QoS) identity -- so the ``reprice`` endpoint can
re-solve the MCKP from *cached* Pareto fronts
(:func:`repro.optimize.mckp.reprice_classes`) without ever
re-exploring the design space.

Everything here is blocking and thread-safe; the asyncio layer
(:mod:`repro.serve.batcher`, :mod:`repro.serve.server`) drives it from
an executor.  Plans are deterministic functions of their inputs, so a
payload served from the cache is byte-identical (sha256) to a freshly
computed one -- the benchmark gate.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from ..dse.space import paper_design_space
from ..engine.cost import model_fingerprint
from ..engine.serialize import plan_to_dict
from ..errors import ProtocolError, QoSInfeasibleError
from ..fleet.pricing import (
    FleetSharedState,
    ReplayingRuntime,
    SharedComponentExplorer,
)
from ..mcu.board import Board, make_nucleo_f767zi
from ..nn import PAPER_MODELS, build_tiny_test_model
from ..nn.graph import Model
from ..obs.audit import get_audit_log
from ..obs.registry import get_registry
from ..obs.tracing import span
from ..optimize.mckp import MCKPItem, reprice_classes
from ..optimize.qos import QoSLevel
from ..pipeline import DAEDVFSPipeline, OptimizationResult
from ..units import MHZ
from .cache import PlanCache, plan_cache_key
from .protocol import plan_digest
from .shared_cache import request_key

#: Models the service will plan for, by wire name.
MODEL_REGISTRY: Dict[str, Callable[[], Model]] = {
    **PAPER_MODELS,
    "tiny": build_tiny_test_model,
}


@dataclass
class _BoardState:
    """One board's warm planning trio inside a :class:`PlanService`."""

    board: Board
    shared: FleetSharedState
    pipeline: DAEDVFSPipeline


def board_from_params(params: Dict[str, Any]) -> Optional[str]:
    """The optional board selector of a request.

    ``None`` (absent) means the service's default board -- the
    pre-registry wire contract, byte-identical payloads included.

    Raises:
        ProtocolError: non-string board names.
    """
    board = params.get("board")
    if board is None:
        return None
    if not isinstance(board, str) or not board:
        raise ProtocolError("board must be a non-empty string")
    return board


def qos_key_from_params(params: Dict[str, Any]) -> Tuple:
    """Normalize request QoS params to a hashable cache-key component.

    Raises:
        ProtocolError: unless exactly one of ``qos_percent`` /
            ``qos_ms`` is present and numeric.
    """
    percent = params.get("qos_percent")
    ms = params.get("qos_ms")
    if (percent is None) == (ms is None):
        raise ProtocolError(
            "provide exactly one of qos_percent or qos_ms"
        )
    try:
        if percent is not None:
            return ("percent", float(percent))
        return ("ms", float(ms))
    except (TypeError, ValueError) as err:
        raise ProtocolError(f"QoS must be numeric: {err}") from err


class PlanService:
    """Blocking planning backend shared by every serve endpoint.

    Args:
        board_factory: builds the board description; called once for
            the warm pipeline and once per cold (stateless) plan.
        cache: the plan cache (constructed if omitted).
        cache_enabled: look plans up before planning.
        solver / dp_resolution / max_refinements: pipeline knobs.
        max_front_store: recent (model, QoS) optimization results kept
            for the ``reprice`` endpoint.
        shared_cache: optional cross-worker plan-cache tier consulted
            on a local LRU miss and published to on every fresh plan
            (see :mod:`repro.serve.shared_cache`).
    """

    def __init__(
        self,
        board_factory: Callable[[], Board] = make_nucleo_f767zi,
        cache: Optional[PlanCache] = None,
        cache_enabled: bool = True,
        solver: str = "dp",
        dp_resolution: int = 4000,
        max_refinements: int = 3,
        max_front_store: int = 32,
        shared_cache: Optional[Any] = None,
    ):
        self.board_factory = board_factory
        self.cache = cache if cache is not None else PlanCache()
        self.cache_enabled = cache_enabled
        self.shared_cache = shared_cache
        self.solver = solver
        self.dp_resolution = dp_resolution
        self.max_refinements = max_refinements
        self.board = board_factory()
        self.shared = FleetSharedState(self.board)
        self.pipeline = self._build_pipeline(self.board, shared=True)
        # Lazily-built per-board planning states for requests that
        # select a registry target (``params["board"]``).  The default
        # (no board param) keeps using the attributes above.
        self._board_states: Dict[str, "_BoardState"] = {}
        self._board_states_lock = threading.Lock()
        self._models: Dict[str, Model] = {}
        self._models_lock = threading.Lock()
        # (model_key, qos_key) -> OptimizationResult, most recent last.
        self._front_store: "OrderedDict[Tuple, OptimizationResult]" = (
            OrderedDict()
        )
        self._front_lock = threading.Lock()
        self.max_front_store = max_front_store
        self._health_lock = threading.Lock()
        self._health_result: Optional[Dict[str, Any]] = None

    # -- wiring ------------------------------------------------------------------

    @staticmethod
    def _space_for(board: Board):
        """The board's canonical design space (native grid or paper's)."""
        if board.space_factory is not None:
            return board.space_factory(board)
        return paper_design_space(board.power_model)

    def _build_pipeline(
        self,
        board: Board,
        shared: bool,
        shared_state: Optional[FleetSharedState] = None,
    ) -> DAEDVFSPipeline:
        if not shared:
            return DAEDVFSPipeline(
                board=board,
                solver=self.solver,
                dp_resolution=self.dp_resolution,
                max_refinements=self.max_refinements,
            )
        state = shared_state if shared_state is not None else self.shared
        space = self._space_for(board)
        explorer = SharedComponentExplorer(board, space, state)
        runtime = ReplayingRuntime(board, state)
        return DAEDVFSPipeline(
            board=board,
            space=space,
            solver=self.solver,
            dp_resolution=self.dp_resolution,
            max_refinements=self.max_refinements,
            explorer=explorer,
            runtime=runtime,
        )

    def _state_for(self, board_name: Optional[str]) -> "_BoardState":
        """The planning state serving one board selector.

        ``None`` aliases the service's default board; named boards
        each get their own warm pipeline + fleet-shared pricing state,
        built once on first request.
        """
        if board_name is None:
            return _BoardState(
                board=self.board, shared=self.shared, pipeline=self.pipeline
            )
        with self._board_states_lock:
            state = self._board_states.get(board_name)
        if state is not None:
            return state
        from ..boards.registry import build_board

        board = build_board(board_name)
        shared = FleetSharedState(board)
        state = _BoardState(
            board=board,
            shared=shared,
            pipeline=self._build_pipeline(board, shared=True, shared_state=shared),
        )
        with self._board_states_lock:
            return self._board_states.setdefault(board_name, state)

    def resolve_model(self, name: Any) -> Model:
        """The shared model instance for a wire name.

        One canonical instance per name keeps the memoized model
        fingerprint (and with it every pipeline cache) warm across
        requests.

        Raises:
            ProtocolError: unknown model name.
        """
        if not isinstance(name, str) or name not in MODEL_REGISTRY:
            raise ProtocolError(
                f"unknown model {name!r}; expected one of "
                f"{sorted(MODEL_REGISTRY)}"
            )
        with self._models_lock:
            model = self._models.get(name)
            if model is None:
                model = self._models.setdefault(
                    name, MODEL_REGISTRY[name]()
                )
            return model

    # -- planning ----------------------------------------------------------------

    def _qos_args(self, qos_key: Tuple) -> Dict[str, Any]:
        kind, value = qos_key
        if kind == "percent":
            return {
                "qos_level": QoSLevel(
                    name=f"{value:g}%", slack=value / 100.0
                )
            }
        return {"qos_s": value * 1e-3}

    def cache_key(
        self,
        model: Model,
        qos_key: Tuple,
        board_name: Optional[str] = None,
    ) -> Tuple:
        """Full plan-cache key: model + board + space + QoS identity.

        The board fingerprint (which embeds the board *name* alongside
        its power/timing identity) keys both the local LRU and the
        shared tier, so the same (model, QoS) planned for two boards
        can never share an entry.
        """
        state = self._state_for(board_name)
        return plan_cache_key(
            model_fingerprint(model),
            state.board.fingerprint(),
            state.pipeline.space.fingerprint(),
            qos_key,
        )

    def _payload(
        self,
        model_name: str,
        qos_key: Tuple,
        result: OptimizationResult,
        board_name: Optional[str] = None,
    ) -> Dict[str, Any]:
        """The deterministic core payload (digest input) for a plan.

        The ``board`` key appears only for explicit board selections;
        default-board payloads keep their pre-registry shape (and
        digests).
        """
        kind, value = qos_key
        core = {
            "model": model_name,
            "qos": {kind: value, "budget_s": result.qos_s},
            "baseline_latency_s": result.baseline_latency_s,
            "fixed_overhead_s": result.fixed_overhead_s,
            "plan": plan_to_dict(result.plan),
        }
        if board_name is not None:
            core["board"] = board_name
        core["digest"] = plan_digest(
            {k: v for k, v in core.items() if k != "digest"}
        )
        return core

    def reconfigure(
        self, board_factory: Callable[[], Board]
    ) -> None:
        """Swap the hardware description under a live service.

        Rebuilds the warm pipeline and the fleet-shared pricing state
        for the new board.  The plan cache and the reprice front store
        survive untouched: both are keyed by the board fingerprint, so
        entries priced against the old board can never answer a
        request planned for the new one -- they simply age out.
        """
        self.board_factory = board_factory
        self.board = board_factory()
        self.shared = FleetSharedState(self.board)
        self.pipeline = self._build_pipeline(self.board, shared=True)

    def _store_fronts(
        self,
        model: Model,
        qos_key: Tuple,
        result: OptimizationResult,
        board_name: Optional[str] = None,
    ) -> None:
        # Keyed by the *full* plan-cache key -- board and design-space
        # fingerprints included -- so a service reconfigured with a
        # different board or power model can never reprice from fronts
        # priced against the old hardware (the stale-reprice bug).
        key = self.cache_key(model, qos_key, board_name)
        with self._front_lock:
            self._front_store[key] = result
            self._front_store.move_to_end(key)
            while len(self._front_store) > self.max_front_store:
                self._front_store.popitem(last=False)

    def _optimize(
        self,
        model_name: str,
        qos_key: Tuple,
        board_name: Optional[str] = None,
    ) -> Tuple[Model, OptimizationResult]:
        model = self.resolve_model(model_name)
        pipeline = self._state_for(board_name).pipeline
        result = pipeline.optimize(model, **self._qos_args(qos_key))
        self._store_fronts(model, qos_key, result, board_name)
        return model, result

    def plan(
        self,
        model_name: str,
        qos_key: Tuple,
        use_cache: bool = True,
        board_name: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Plan (or serve from cache) one (model, QoS, board) request."""
        with span("serve.plan", model=model_name) as sp:
            model = self.resolve_model(model_name)
            key = self.cache_key(model, qos_key, board_name)
            if self.cache_enabled and use_cache:
                cached = self.cache.get(key)
                if cached is not None:
                    sp.set(cached=True)
                    get_audit_log().record(
                        "serve.cache",
                        "hit",
                        model=model_name,
                        qos=list(qos_key),
                    )
                    return {**cached, "cached": True}
                if self.shared_cache is not None:
                    shared = self.shared_cache.lookup(key)
                    if shared is not None:
                        sp.set(cached=True, tier="shared")
                        get_audit_log().record(
                            "serve.cache",
                            "shared_hit",
                            model=model_name,
                            qos=list(qos_key),
                        )
                        self.shared_cache.register_request(
                            request_key(model_name, qos_key, board_name),
                            shared["digest"],
                        )
                        shared = self.cache.put(key, shared)
                        return {**shared, "cached": True}
            sp.set(cached=False)
            get_audit_log().record(
                "serve.cache",
                "bypass" if not (self.cache_enabled and use_cache)
                else "miss",
                model=model_name,
                qos=list(qos_key),
            )
            _, result = self._optimize(model_name, qos_key, board_name)
            payload = self._payload(model_name, qos_key, result, board_name)
            if self.cache_enabled and use_cache:
                payload = self.cache.put(key, payload)
                if self.shared_cache is not None:
                    self.shared_cache.publish(key, payload)
                    self.shared_cache.register_request(
                        request_key(model_name, qos_key, board_name),
                        payload["digest"],
                    )
            return {**payload, "cached": False}

    def plan_cold(
        self,
        model_name: str,
        qos_key: Tuple,
        board_name: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Plan on a fresh pipeline -- the batch-CLI cost, per request.

        No plan cache, no shared pricing state, no warm Step-2 caches:
        exactly what every ``repro-dvfs optimize`` invocation pays
        today.  The stateless benchmark baseline, and the oracle the
        digest-consistency check compares cached payloads against.
        """
        model = self.resolve_model(model_name)
        if board_name is None:
            board = self.board_factory()
        else:
            from ..boards.registry import build_board

            board = build_board(board_name)
        pipeline = self._build_pipeline(board, shared=False)
        result = pipeline.optimize(model, **self._qos_args(qos_key))
        payload = self._payload(model_name, qos_key, result, board_name)
        return {**payload, "cached": False}

    # -- repricing ---------------------------------------------------------------

    def reprice(
        self,
        model_name: str,
        qos_key: Tuple,
        extra_power_w: float = 0.0,
        max_hfo_mhz: Optional[float] = None,
        board_name: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Re-solve the MCKP over cached fronts for drifted conditions.

        ``extra_power_w`` models a thermal leakage ramp (constant
        power offset on every item); ``max_hfo_mhz`` a battery-sag
        frequency cap (items above it become infeasible).  The Pareto
        fronts come from the stored optimization result -- warmed by a
        prior ``plan`` call or computed once here -- so repricing
        never re-explores the design space.

        Raises:
            QoSInfeasibleError: no schedule over the repriced classes
                meets the stored budget.
        """
        model = self.resolve_model(model_name)
        key = self.cache_key(model, qos_key, board_name)
        with self._front_lock:
            result = self._front_store.get(key)
        get_audit_log().record(
            "serve.reprice",
            "fronts_cached" if result is not None else "fronts_cold",
            model=model_name,
            extra_power_w=extra_power_w,
            max_hfo_mhz=max_hfo_mhz,
        )
        if result is None:
            _, result = self._optimize(model_name, qos_key, board_name)
        pipeline = self._state_for(board_name).pipeline
        node_ids = sorted(result.pareto_fronts)
        classes = [
            [
                MCKPItem(
                    weight=p.latency_s, value=p.energy_j, payload=p
                )
                for p in result.pareto_fronts[node_id]
            ]
            for node_id in node_ids
        ]
        item_filter = None
        if max_hfo_mhz is not None:
            cap_hz = max_hfo_mhz * MHZ
            item_filter = (
                lambda item: item.payload.hfo.sysclk_hz <= cap_hz
            )
        classes = reprice_classes(
            classes, extra_power_w=extra_power_w, item_filter=item_filter
        )
        with span("serve.reprice", model=model_name) as sp:
            plan = pipeline.replan(
                model, classes, result.qos_s, result.fixed_overhead_s
            )
            sp.set(fallback=plan is None)
        if plan is None:
            # Free re-solve could not converge the sequence-dependent
            # relock overhead; uniform single-HFO schedules never pay
            # it (same fallback the fleet governor uses).
            get_audit_log().record(
                "serve.reprice",
                "uniform_fallback",
                model=model_name,
                qos_s=result.qos_s,
            )
            plan = pipeline.uniform_plan_from_classes(
                model,
                classes,
                result.qos_s,
                result.fixed_overhead_s,
                max_hfo_hz=(
                    max_hfo_mhz * MHZ if max_hfo_mhz is not None
                    else float("inf")
                ),
            )
        if plan is None:
            min_conv = sum(
                min(item.weight for item in cls) for cls in classes
            )
            raise QoSInfeasibleError(
                qos_s=result.qos_s,
                min_latency_s=min_conv + result.fixed_overhead_s,
            )
        repriced = OptimizationResult(
            plan=plan,
            pareto_fronts=result.pareto_fronts,
            baseline_latency_s=result.baseline_latency_s,
            qos_s=result.qos_s,
            fixed_overhead_s=result.fixed_overhead_s,
        )
        payload = self._payload(model_name, qos_key, repriced, board_name)
        payload["drift"] = {
            "extra_power_w": extra_power_w,
            "max_hfo_mhz": max_hfo_mhz,
        }
        return {**payload, "cached": False}

    def publish_registry(self) -> None:
        """Mirror off-request-path cache counters into the registry.

        The trace-builder cache counts hits on its own instance (the
        hot path stays registry-free); snapshot time copies them into
        gauges so the serve ``stats`` endpoint reports one coherent
        cross-layer view.
        """
        registry = get_registry()
        tracer = self.pipeline.tracer
        registry.gauge_set(
            "pipeline.trace_cache", float(tracer.cache_hits), event="hits"
        )
        registry.gauge_set(
            "pipeline.trace_cache",
            float(tracer.cache_misses),
            event="misses",
        )
        stats = self.shared.stats()
        for name, value in stats.items():
            registry.gauge_set(
                "fleet.shared_state", float(value), pool=name
            )

    # -- health ------------------------------------------------------------------

    def health(self, refresh: bool = False) -> Dict[str, Any]:
        """Quick selftest subset (memoized; ``refresh`` re-runs it)."""
        from ..selftest import run_selftest

        with self._health_lock:
            if self._health_result is not None and not refresh:
                return self._health_result
        result = run_selftest(quick=True)
        payload = {
            "ok": result.ok,
            "checks": [
                {"name": name, "ok": passed, "detail": detail}
                for name, passed, detail in result.checks
            ],
        }
        with self._health_lock:
            self._health_result = payload
            return payload
