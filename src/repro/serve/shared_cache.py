"""Digest-addressed cross-worker plan-cache tier.

Plans are pure functions of their (model, board, space, QoS) identity,
so replicas can exchange them *byte-identically*: the tier stores each
payload once as canonical JSON (the exact bytes
:func:`repro.serve.protocol.plan_digest` hashes), addressed by its
``digest`` field, plus an index mapping plan-cache keys to digests.
A worker that computes a plan publishes it; every other worker's next
miss on the same key deserializes the same bytes and therefore serves
a payload whose digest is identical to a single-process solve -- the
sharding acceptance gate.

Two implementations share one surface (``lookup`` / ``publish`` /
``stats``):

* :class:`LocalSharedCache` -- plain dicts behind a lock.  The
  single-process tier, and the reference implementation tests pin
  behavior against.
* :class:`ManagedSharedCache` -- the same maps as
  :mod:`multiprocessing` manager proxies, so ``spawn``-ed shard
  workers share one tier.  The handle pickles across the process
  boundary; all mutation happens under one manager-side lock.

Lookups verify: a payload whose recomputed digest does not match its
address is treated as a miss (and the index entry dropped where
possible), so a corrupt or torn write can never be served.

Capacity is a soft bound enforced at publish time: beyond
``capacity`` index entries, new publishes become no-ops rather than
evicting -- cross-process LRU bookkeeping would put a lock on every
hit, and the per-worker LRUs in front of this tier already absorb hot
keys.  ``stats`` reports the rejections.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Dict, Optional, Tuple

from ..errors import ReproError
from ..obs.registry import get_registry
from .protocol import plan_digest


def wire_key(key: Tuple) -> str:
    """Canonical string form of a plan-cache key.

    Manager-proxied dicts hash keys in the *manager* process, so the
    tier addresses entries by a canonical JSON string instead of the
    nested fingerprint tuples (tuples and lists would also collide
    differently per process).  Deterministic: sorted-keys JSON of the
    nested-list form.
    """
    return json.dumps(_jsonable(key), sort_keys=True, separators=(",", ":"))


def _jsonable(value: Any) -> Any:
    if isinstance(value, (tuple, list)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in sorted(value.items())}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def request_key(
    model_name: str, qos_key: Tuple, board: Optional[str] = None
) -> str:
    """Request-identity key for the degraded-serving index.

    Unlike the full plan-cache key this is computable from the wire
    request alone (no model/board/space fingerprints), which is what
    lets the *router* -- which owns no pipeline -- serve a shared-cache
    hit when every worker that could recompute the plan is down.  The
    QoS value goes through ``repr(float(...))`` so int/float spellings
    of the same QoS collapse to one entry.

    The board element is appended only when a request actually selects
    a board, so default-board keys stay identical to the pre-registry
    wire format (mixed-version routers and workers agree on them) while
    the same (model, QoS) on two boards can never share an entry.
    """
    kind, value = qos_key
    parts: list = [str(model_name), [str(kind), repr(float(value))]]
    if board is not None:
        parts.append(str(board))
    return json.dumps(parts, separators=(",", ":"))


def _payload_digest(payload: Dict[str, Any]) -> str:
    """The digest a payload claims, verified against its content."""
    claimed = payload.get("digest")
    computed = plan_digest(
        {k: v for k, v in payload.items() if k != "digest"}
    )
    if claimed is not None and claimed != computed:
        raise ReproError(
            f"plan payload digest mismatch: claims {claimed}, "
            f"content hashes to {computed}"
        )
    return computed


class _SharedCacheBase:
    """Shared get/put logic over injectable map + lock primitives.

    Subclasses provide ``_index`` (wire key -> digest), ``_payloads``
    (digest -> canonical JSON string), ``_requests`` (request key ->
    digest, the degraded-serving index), ``_counters`` (str -> int)
    and ``_lock``; everything else -- digest addressing, verification,
    capacity -- lives here so both tiers behave identically.
    """

    capacity: int
    _index: Any
    _payloads: Any
    _requests: Any
    _counters: Any
    _lock: Any

    def _verified(self, digest: str, raw: str, index: Any, wk: str):
        """Deserialize + digest-verify stored bytes (None on corrupt)."""
        payload = json.loads(raw)
        try:
            if _payload_digest(payload) != digest:
                raise ReproError("stored payload does not match address")
        except ReproError:
            with self._lock:
                if index.get(wk) == digest:
                    del index[wk]
                self._counters["corrupt"] = (
                    self._counters.get("corrupt", 0) + 1
                )
            get_registry().count("serve.shared_cache", event="corrupt")
            return None
        return payload

    def lookup(self, key: Tuple) -> Optional[Dict[str, Any]]:
        """The payload published under ``key``, or None.

        Returns a fresh dict deserialized from the canonical bytes, so
        callers can annotate it without mutating the shared copy.
        """
        wk = wire_key(key)
        with self._lock:
            digest = self._index.get(wk)
            raw = self._payloads.get(digest) if digest is not None else None
            if raw is None:
                self._counters["misses"] = (
                    self._counters.get("misses", 0) + 1
                )
                return None
            self._counters["hits"] = self._counters.get("hits", 0) + 1
        return self._verified(digest, raw, self._index, wk)

    def lookup_request(self, rk: str) -> Optional[Dict[str, Any]]:
        """The payload registered for a *request* key, or None.

        The degraded-serving path: same digest verification as
        :meth:`lookup`, addressed by the fingerprint-free request
        identity (:func:`request_key`) the router can compute.
        """
        with self._lock:
            digest = self._requests.get(rk)
            raw = self._payloads.get(digest) if digest is not None else None
            if raw is None:
                self._counters["request_misses"] = (
                    self._counters.get("request_misses", 0) + 1
                )
                return None
            self._counters["request_hits"] = (
                self._counters.get("request_hits", 0) + 1
            )
        return self._verified(digest, raw, self._requests, rk)

    def publish(self, key: Tuple, payload: Dict[str, Any]) -> str:
        """Store ``payload`` under ``key``; returns its digest address.

        First publisher wins: an existing index entry for the key is
        left alone (plans are deterministic, so a disagreement would
        mean a corrupt payload, not a newer answer).
        """
        return self.publish_raw(wire_key(key), payload)

    def publish_raw(self, wk: str, payload: Dict[str, Any]) -> str:
        """:meth:`publish` addressed by an already-canonical wire key.

        The journal-replay surface: replay stores wire keys, not the
        fingerprint tuples they came from.
        """
        digest = _payload_digest(payload)
        raw = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        with self._lock:
            if wk in self._index:
                return self._index[wk]
            if len(self._index) >= self.capacity:
                self._counters["rejected"] = (
                    self._counters.get("rejected", 0) + 1
                )
                get_registry().count(
                    "serve.shared_cache", event="rejected"
                )
                return digest
            # Content store first, index last: a reader that sees the
            # index entry always finds its payload.
            if digest not in self._payloads:
                self._payloads[digest] = raw
            self._index[wk] = digest
            self._counters["publishes"] = (
                self._counters.get("publishes", 0) + 1
            )
        return digest

    def register_request(self, rk: str, digest: str) -> None:
        """Point a request key at a published payload digest."""
        self.register_request_raw(rk, digest)

    def register_request_raw(self, rk: str, digest: str) -> None:
        with self._lock:
            if rk in self._requests:
                return
            if len(self._requests) >= self.capacity:
                return  # same soft bound as the main index
            self._requests[rk] = digest

    def note_replayed(self, count: int = 1) -> None:
        """Record journal-replayed publishes (reported by ``stats``)."""
        with self._lock:
            self._counters["replayed"] = (
                self._counters.get("replayed", 0) + count
            )

    def stats(self) -> Dict[str, Any]:
        """Counters plus occupancy (one consistent snapshot)."""
        with self._lock:
            counters = dict(self._counters)
            size = len(self._index)
            payloads = len(self._payloads)
            requests = len(self._requests)
        return {
            "capacity": self.capacity,
            "size": size,
            "payloads": payloads,
            "requests": requests,
            "hits": counters.get("hits", 0),
            "misses": counters.get("misses", 0),
            "request_hits": counters.get("request_hits", 0),
            "request_misses": counters.get("request_misses", 0),
            "publishes": counters.get("publishes", 0),
            "rejected": counters.get("rejected", 0),
            "corrupt": counters.get("corrupt", 0),
            "replayed": counters.get("replayed", 0),
        }


class LocalSharedCache(_SharedCacheBase):
    """In-process tier: plain dicts behind a threading lock."""

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ReproError("shared cache capacity must be >= 1")
        self.capacity = capacity
        self._index: Dict[str, str] = {}
        self._payloads: Dict[str, str] = {}
        self._requests: Dict[str, str] = {}
        self._counters: Dict[str, int] = {}
        self._lock = threading.Lock()


class ManagedSharedCache(_SharedCacheBase):
    """Cross-process tier over :mod:`multiprocessing` manager proxies.

    Build with :func:`managed_shared_cache` in the router process and
    pass the instance to spawned workers -- the proxies (and the
    manager lock) pickle into a handle that reconnects to the same
    manager-side maps.
    """

    def __init__(
        self, index, payloads, counters, lock, capacity: int, requests=None
    ):
        if capacity < 1:
            raise ReproError("shared cache capacity must be >= 1")
        self.capacity = capacity
        self._index = index
        self._payloads = payloads
        self._requests = requests if requests is not None else {}
        self._counters = counters
        self._lock = lock


def managed_shared_cache(manager, capacity: int = 1024) -> ManagedSharedCache:
    """A :class:`ManagedSharedCache` over a ``multiprocessing.Manager``."""
    return ManagedSharedCache(
        index=manager.dict(),
        payloads=manager.dict(),
        counters=manager.dict(),
        lock=manager.Lock(),
        capacity=capacity,
        requests=manager.dict(),
    )
