"""Asyncio TCP server wiring protocol -> admission -> batcher -> planner.

:class:`PlanServer` is the long-lived service the ROADMAP's north star
asks for: it builds the planning pipeline once and then answers
JSON-lines requests over TCP (or in-process, for tests and the load
generator) until drained.  The request path is::

    line -> decode (protocol) -> admission (shed or admit)
         -> batcher (coalesce + deadline) -> PlanService (executor)
         -> encode -> line

``stats``, ``metrics`` and ``health`` bypass admission -- an
overloaded server must still answer its monitoring.  Shutdown is graceful: the listener
closes first, in-flight requests drain (bounded by
``drain_timeout_s``), then the worker pool stops.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Set, Tuple

from ..errors import OverloadedError, ProtocolError, ReproError
from ..obs.audit import get_audit_log
from ..obs.prom import to_prometheus
from ..obs.registry import get_registry, snapshot_digest
from ..obs.tracing import correlation, get_tracer, span
from .admission import AdmissionController, ArrivalClock, TokenBucket
from .batcher import PlanBatcher
from .cache import PlanCache
from .metrics import ServeMetrics
from .protocol import (
    Request,
    Response,
    decode_request,
    encode_response,
    error_from_exception,
)
from .service import PlanService, board_from_params, qos_key_from_params


@dataclass
class ServeConfig:
    """Everything one :class:`PlanServer` instance is built from.

    Attributes:
        host / port: TCP bind address (port 0 picks a free port).
        solver / dp_resolution / max_refinements: pipeline knobs.
        cache_enabled / cache_capacity: the LRU plan cache.
        batch_enabled / batch_window_s / max_batch: micro-batching.
        workers: planner thread-pool width.
        stateless: plan every request on a cold pipeline with cache
            and batching forced off -- the batch-CLI cost, reproduced
            inside the server for honest benchmarking.
        max_queue_depth: admitted-but-unanswered bound; beyond it
            requests shed with ``queue_full``.
        rate_per_s / burst: optional token-bucket admission limiter.
        admission_tick_s: when set, the limiter reads time from an
            :class:`~repro.serve.admission.ArrivalClock` advancing
            this much per admission check -- shed decisions become a
            pure function of arrival order (deterministic loadgen).
        default_deadline_s: deadline applied to requests that carry
            none (None = wait forever).
        drain_timeout_s: bound on the graceful-shutdown drain.
        worker_id: shard identity when this server is one worker of a
            :class:`~repro.serve.router.ShardRouter` (None when it is
            the whole service).  Labels this worker's metrics and
            rides on its ``stats`` payload so the router can aggregate
            per-worker views.
        default_board: registry board the tier plans for when a
            request names none (None = the registry default, the
            STM32F767ZI).  Requests carrying ``params["board"]``
            override it either way.
    """

    host: str = "127.0.0.1"
    port: int = 0
    solver: str = "dp"
    dp_resolution: int = 4000
    max_refinements: int = 3
    cache_enabled: bool = True
    cache_capacity: int = 256
    batch_enabled: bool = True
    batch_window_s: float = 0.002
    max_batch: int = 32
    workers: int = 4
    stateless: bool = False
    max_queue_depth: int = 64
    rate_per_s: Optional[float] = None
    burst: Optional[float] = None
    admission_tick_s: Optional[float] = None
    default_deadline_s: Optional[float] = None
    drain_timeout_s: float = 10.0
    worker_id: Optional[int] = None
    default_board: Optional[str] = None


class JsonLinesListener:
    """Reusable asyncio TCP front end for JSON-lines endpoints.

    Mixin shared by :class:`PlanServer` and the shard router: owns the
    listener socket, per-connection reader loops and per-request
    response tasks.  Subclasses provide ``handle_line(line) -> line``
    and call :meth:`_init_listener` before :meth:`start`.
    """

    async def handle_line(self, line: str) -> str:
        raise NotImplementedError

    def _init_listener(
        self, host: str, port: int, drain_timeout_s: float
    ) -> None:
        self._listen_host = host
        self._listen_port = port
        self._drain_timeout_s = drain_timeout_s
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: Set[asyncio.Task] = set()
        self._request_tasks: Set[asyncio.Task] = set()

    @property
    def port(self) -> int:
        """The bound TCP port (after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise ReproError("server is not listening")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind and start accepting connections."""
        if self._server is not None:
            raise ReproError("server already started")
        self._server = await asyncio.start_server(
            self._on_client,
            host=self._listen_host,
            port=self._listen_port,
        )

    async def _on_client(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        write_lock = asyncio.Lock()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                text = line.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                request_task = asyncio.ensure_future(
                    self._respond(text, writer, write_lock)
                )
                self._request_tasks.add(request_task)
                request_task.add_done_callback(
                    self._request_tasks.discard
                )
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            pass  # drain-cancel from stop(); close the socket and exit
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(
        self,
        line: str,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        response_line = await self.handle_line(line)
        async with write_lock:
            try:
                writer.write(response_line.encode("utf-8") + b"\n")
                await writer.drain()
            except (ConnectionError, OSError):
                pass  # client went away; the work still warmed caches

    async def _drain_listener(self) -> None:
        """Stop accepting, cancel readers, drain in-flight requests."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Reader loops block on readline indefinitely -- cancel them
        # first; the in-flight *request* tasks are what drains.
        for task in list(self._conn_tasks):
            task.cancel()
        pending = {
            task for task in self._request_tasks if not task.done()
        }
        if pending:
            await asyncio.wait(
                pending, timeout=self._drain_timeout_s
            )
            for task in pending:
                if not task.done():
                    task.cancel()
        if self._conn_tasks:
            await asyncio.wait(
                set(self._conn_tasks), timeout=1.0
            )
        self._server = None


class PlanServer(JsonLinesListener):
    """One serving instance: state, endpoints, and the TCP front end.

    Args:
        config: everything else.
        shared_cache: optional cross-worker plan-cache tier handed to
            the :class:`~repro.serve.service.PlanService` (shard
            workers receive the router's
            :class:`~repro.serve.shared_cache.ManagedSharedCache`).
    """

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        shared_cache: Optional[Any] = None,
    ):
        self.config = config or ServeConfig()
        cfg = self.config
        self.metrics = ServeMetrics()
        self.cache = PlanCache(capacity=cfg.cache_capacity)
        service_kwargs = {}
        if cfg.default_board is not None:
            from ..boards.registry import get_spec

            service_kwargs["board_factory"] = get_spec(
                cfg.default_board
            ).build
        self.service = PlanService(
            cache=self.cache,
            cache_enabled=cfg.cache_enabled and not cfg.stateless,
            solver=cfg.solver,
            dp_resolution=cfg.dp_resolution,
            max_refinements=cfg.max_refinements,
            shared_cache=(
                shared_cache if not cfg.stateless else None
            ),
            **service_kwargs,
        )
        if cfg.worker_id is not None:
            get_registry().gauge_set(
                "serve.worker_up", 1.0, worker=str(cfg.worker_id)
            )
        bucket = None
        if cfg.rate_per_s is not None:
            time_fn = (
                ArrivalClock(cfg.admission_tick_s)
                if cfg.admission_tick_s is not None
                else time.monotonic
            )
            bucket = TokenBucket(
                rate_per_s=cfg.rate_per_s,
                burst=cfg.burst if cfg.burst is not None else 1.0,
                time_fn=time_fn,
            )
        self.admission = AdmissionController(
            max_queue_depth=cfg.max_queue_depth, bucket=bucket
        )
        self.batcher = PlanBatcher(
            metrics=self.metrics,
            window_s=cfg.batch_window_s,
            max_batch=cfg.max_batch,
            max_workers=cfg.workers,
            enabled=cfg.batch_enabled and not cfg.stateless,
        )
        self._init_listener(cfg.host, cfg.port, cfg.drain_timeout_s)
        self._draining = False

    # -- request handling --------------------------------------------------------

    async def handle_request(self, request: Request) -> Response:
        """Dispatch one decoded request to its endpoint.

        When tracing is on, the whole dispatch runs inside a
        ``serve.request`` span whose correlation ID is the request ID,
        so every downstream span -- batcher, pipeline, explorer,
        solver, even in pool threads -- carries the request identity.
        """
        if get_tracer() is None:
            return await self._dispatch(request)
        with correlation(request.id or None):
            with span("serve.request", op=request.op) as sp:
                response = await self._dispatch(request)
                sp.set(ok=response.ok)
                return response

    async def _dispatch(self, request: Request) -> Response:
        start = time.perf_counter()
        deadline_s = request.deadline_s
        if deadline_s is None:
            deadline_s = self.config.default_deadline_s
        try:
            if request.op in ("plan", "reprice"):
                result = await self._admitted(request, deadline_s)
            elif request.op == "telemetry":
                result = self._telemetry(request.params)
            elif request.op == "stats":
                result = self.stats()
            elif request.op == "metrics":
                result = self.metrics_payload(request.params)
            elif request.op == "health":
                result = await self._health(request.params)
            else:  # unreachable behind decode_request, kept for safety
                raise ProtocolError(f"unknown op {request.op!r}")
        except Exception as err:  # noqa: BLE001 - typed wire errors
            payload = error_from_exception(err)
            self.metrics.record_error(payload.kind)
            return Response(id=request.id, ok=False, error=payload)
        self.metrics.record_request(
            request.op, time.perf_counter() - start
        )
        return Response.success(request.id, result)

    async def _admitted(
        self, request: Request, deadline_s: Optional[float]
    ) -> Dict[str, Any]:
        """Admission-guarded path for the expensive planning ops."""
        try:
            depth = self.admission.admit()
        except OverloadedError as err:
            self.metrics.record_shed(err.reason)
            raise
        self.metrics.record_queue_depth(depth)
        try:
            key, fn = self._planning_call(request)
            return await self.batcher.submit(key, fn, deadline_s)
        finally:
            self.metrics.record_queue_depth(self.admission.release())

    def _planning_call(self, request: Request):
        """(coalescing key, blocking thunk) for a plan/reprice request."""
        params = request.params
        model_name = params.get("model")
        qos_key = qos_key_from_params(params)
        board = board_from_params(params)
        if request.op == "plan":
            if self.config.stateless:
                return (
                    ("plan-cold", model_name, qos_key, board, id(request)),
                    lambda: self.service.plan_cold(
                        model_name, qos_key, board_name=board
                    ),
                )
            use_cache = not bool(params.get("no_cache", False))
            return (
                ("plan", model_name, qos_key, board, use_cache),
                lambda: self.service.plan(
                    model_name, qos_key, use_cache=use_cache,
                    board_name=board,
                ),
            )
        try:
            extra_power_w = float(params.get("extra_power_w", 0.0))
            cap = params.get("max_hfo_mhz")
            max_hfo_mhz = None if cap is None else float(cap)
        except (TypeError, ValueError) as err:
            raise ProtocolError(
                f"drift parameters must be numeric: {err}"
            ) from err
        return (
            (
                "reprice", model_name, qos_key, board,
                extra_power_w, max_hfo_mhz,
            ),
            lambda: self.service.reprice(
                model_name,
                qos_key,
                extra_power_w=extra_power_w,
                max_hfo_mhz=max_hfo_mhz,
                board_name=board,
            ),
        )

    def _telemetry(self, params: Dict[str, Any]) -> Dict[str, Any]:
        model = params.get("model")
        if not isinstance(model, str) or not model:
            raise ProtocolError("telemetry needs a model name")
        try:
            predicted = float(params["predicted_energy_j"])
            measured = float(params["measured_energy_j"])
        except (KeyError, TypeError, ValueError) as err:
            raise ProtocolError(
                f"telemetry needs numeric predicted/measured energy: {err}"
            ) from err
        aggregate = self.metrics.record_telemetry(
            model, predicted, measured
        )
        return {"model": model, **aggregate}

    async def _health(self, params: Dict[str, Any]) -> Dict[str, Any]:
        refresh = bool(params.get("refresh", False))
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self.batcher.executor,
            lambda: self.service.health(refresh=refresh),
        )

    def metrics_payload(
        self, params: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        """The ``metrics`` op: just the registry, scrape-shaped.

        Unlike ``stats`` (the whole status payload) this returns the
        published registry snapshot alone, plus its canonical digest
        -- the unit the shard router merges and the monitor CLI
        tails.  ``params: {"format": "prom"}`` adds the Prometheus
        text exposition.
        """
        fmt = (params or {}).get("format", "json")
        if fmt not in ("json", "prom"):
            raise ProtocolError(
                f"metrics format must be 'json' or 'prom', got {fmt!r}"
            )
        self.service.publish_registry()
        snapshot = get_registry().snapshot()
        result: Dict[str, Any] = {
            "worker_id": self.config.worker_id,
            "registry": snapshot,
            "digest": snapshot_digest(snapshot),
        }
        if fmt == "prom":
            result["exposition"] = to_prometheus(snapshot)
        return result

    def stats(self) -> Dict[str, Any]:
        """The ``stats`` payload: metrics + cache + admission +
        the process-wide obs registry (one coherent snapshot covering
        pipeline/fleet internals that happen off the request path)."""
        self.service.publish_registry()
        shared = self.service.shared_cache
        return {
            "worker_id": self.config.worker_id,
            "metrics": self.metrics.snapshot(),
            "cache": self.cache.stats(),
            "shared_cache": shared.stats() if shared is not None else None,
            "registry": get_registry().snapshot(),
            "audit": get_audit_log().counts(),
            "admission": {
                "max_queue_depth": self.admission.max_queue_depth,
                "depth": self.admission.depth,
                "sheds": dict(self.admission.sheds),
            },
            "config": {
                "cache_enabled": self.service.cache_enabled,
                "batch_enabled": self.batcher.enabled,
                "stateless": self.config.stateless,
                "workers": self.config.workers,
            },
        }

    async def handle_request_dict(
        self, data: Dict[str, Any]
    ) -> Dict[str, Any]:
        """In-process entry point (no sockets): dict in, dict out."""
        import json

        line = json.dumps(data, separators=(",", ":"))
        response = await self.handle_line(line)
        return json.loads(response)

    async def handle_line(self, line: str) -> str:
        """One request line -> one response line (never raises)."""
        try:
            request = decode_request(line)
        except ReproError as err:
            payload = error_from_exception(err)
            self.metrics.record_error(payload.kind)
            return encode_response(
                Response(id="", ok=False, error=payload)
            )
        if self._draining:
            err = OverloadedError(reason="draining", retry_after_s=1.0)
            self.metrics.record_shed("draining")
            return encode_response(Response.failure(request.id, err))
        response = await self.handle_request(request)
        return encode_response(response)

    # -- TCP front end -----------------------------------------------------------

    async def stop(self) -> None:
        """Graceful drain: stop accepting, finish in-flight, shut down."""
        self._draining = True
        await self._drain_listener()
        self.batcher.shutdown()


async def serve_forever(config: Optional[ServeConfig] = None) -> None:
    """Run a server until cancelled (the ``repro-dvfs serve`` loop)."""
    server = PlanServer(config)
    await server.start()
    try:
        await asyncio.Event().wait()
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()
