"""Bounded LRU plan cache.

Plans are pure functions of (model, board, design space, QoS), so the
cache key is the tuple of their fingerprints -- including the *board*
fingerprint (power-model and timing parameters), so a server
reconfigured with a different :class:`~repro.mcu.board.Board` or
power model can never serve a stale plan (see the matching pipeline
regression in ``tests/pipeline/test_cache_keys.py``).

Values are the fully serialized plan payloads the protocol ships, so a
hit costs one dict copy and zero planning work, and a cached payload
digests byte-identically to a freshly computed one.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from ..errors import ReproError
from ..obs.registry import get_registry


def plan_cache_key(
    model_fp: Tuple,
    board_fp: Tuple,
    space_fp: Tuple,
    qos_key: Tuple,
) -> Tuple:
    """The full cache identity of one planning request."""
    return (model_fp, board_fp, space_fp, qos_key)


class PlanCache:
    """Thread-safe bounded LRU mapping plan keys to plan payloads."""

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ReproError("plan cache capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple, Dict[str, Any]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: Tuple) -> Optional[Dict[str, Any]]:
        """The cached payload, refreshed to most-recently-used."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
            else:
                self._entries.move_to_end(key)
                self.hits += 1
        get_registry().count(
            "serve.plan_cache", event="miss" if entry is None else "hit"
        )
        return entry

    def put(self, key: Tuple, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Insert (or refresh) one payload, evicting the LRU tail.

        Returns the canonical stored payload: concurrent writers of
        the same key converge on the first-published value, mirroring
        the pipeline caches' ``setdefault`` discipline.
        """
        evicted = 0
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                self._entries.move_to_end(key)
                return existing
            self._entries[key] = payload
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                evicted += 1
        if evicted:
            get_registry().count(
                "serve.plan_cache", n=evicted, event="eviction"
            )
        return payload

    def clear(self) -> None:
        """Drop every entry (counters survive)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> Dict[str, Any]:
        """Hit/miss/eviction counters plus occupancy."""
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "capacity": self.capacity,
                "size": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": self.hits / lookups if lookups else 0.0,
            }
