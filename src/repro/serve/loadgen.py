"""Closed-loop seeded load generator for the serve layer.

Drives a :class:`~repro.serve.server.PlanServer` (in-process by
default, or any TCP address) with a *deterministic* request schedule:
the full request list -- which QoS each request asks for -- is drawn
up front from one seeded RNG, so two runs with the same seed issue
byte-identical request streams whatever the scheduler does.

Two shapes of load:

* **closed loop** (default): ``concurrency`` workers each keep exactly
  one request outstanding, the classic saturation harness.  With
  concurrency below the admission depth this sheds nothing.
* **burst** (``burst=True``): every request is submitted in one event
  loop iteration before any can complete.  Admission decisions then
  depend only on submission order, so shed counts reproduce exactly
  run over run -- the overload-determinism gate of ``BENCH_serve``.

The summary optionally cross-checks cache consistency: for every
distinct QoS exercised, the cached plan payload must digest
(sha256) byte-identically to one computed on a cold pipeline.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..errors import OverloadedError, ReproError
from .client import InProcessClient, ServeClient
from .metrics import LatencyHistogram
from .server import PlanServer, ServeConfig


@dataclass
class LoadGenConfig:
    """One load-generation scenario.

    Attributes:
        model: wire name of the model every request plans.
        qos_percents: QoS slack values the seeded schedule draws from.
        requests: total requests to issue.
        concurrency: closed-loop worker count (ignored for bursts).
        seed: request-schedule seed.
        burst: submit everything at once instead of closed-loop.
        deadline_s: per-request deadline forwarded to the server.
        verify_digests: cross-check cached payloads against a cold
            pipeline per distinct QoS (in-process targets only).
        serve: server configuration for the in-process target.
        target_host / target_port: drive an external TCP server
            instead of building one in-process.
    """

    model: str = "tiny"
    qos_percents: Tuple[float, ...] = (10.0, 30.0, 50.0)
    requests: int = 64
    concurrency: int = 8
    seed: int = 0
    burst: bool = False
    deadline_s: Optional[float] = None
    verify_digests: bool = True
    serve: ServeConfig = field(default_factory=ServeConfig)
    target_host: Optional[str] = None
    target_port: Optional[int] = None

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ReproError("requests must be >= 1")
        if self.concurrency < 1:
            raise ReproError("concurrency must be >= 1")
        if not self.qos_percents:
            raise ReproError("qos_percents must be non-empty")


def request_schedule(config: LoadGenConfig) -> List[float]:
    """The deterministic per-request QoS assignment."""
    rng = random.Random(f"loadgen:{config.seed}")
    return [
        config.qos_percents[rng.randrange(len(config.qos_percents))]
        for _ in range(config.requests)
    ]


async def _issue(
    client, config: LoadGenConfig, qos_percent: float, outcome: Dict
) -> None:
    start = time.perf_counter()
    try:
        result = await client.request(
            "plan",
            deadline_s=config.deadline_s,
            model=config.model,
            qos_percent=qos_percent,
        )
    except OverloadedError:
        outcome["shed"] += 1
    except ReproError as err:
        outcome["errors"].append(type(err).__name__)
    else:
        outcome["ok"] += 1
        if result.get("cached"):
            outcome["cached"] += 1
        outcome["histogram"].record(time.perf_counter() - start)


async def _run(config: LoadGenConfig) -> Dict[str, Any]:
    own_server: Optional[PlanServer] = None
    if config.target_host is not None and config.target_port is not None:
        client: Any = await ServeClient(
            config.target_host, config.target_port, client_id="loadgen"
        ).connect()
    else:
        own_server = PlanServer(config.serve)
        client = InProcessClient(own_server, client_id="loadgen")

    schedule = request_schedule(config)
    outcome: Dict[str, Any] = {
        "ok": 0,
        "shed": 0,
        "cached": 0,
        "errors": [],
        "histogram": LatencyHistogram(),
    }
    start = time.perf_counter()
    if config.burst:
        await asyncio.gather(
            *(
                _issue(client, config, qos, outcome)
                for qos in schedule
            )
        )
    else:
        index = {"next": 0}

        async def worker() -> None:
            while True:
                i = index["next"]
                if i >= len(schedule):
                    return
                index["next"] = i + 1
                await _issue(client, config, schedule[i], outcome)

        await asyncio.gather(
            *(worker() for _ in range(config.concurrency))
        )
    wall_s = time.perf_counter() - start

    digest_checks = 0
    digest_mismatches = 0
    if (
        config.verify_digests
        and own_server is not None
        and not config.serve.stateless
    ):
        service = own_server.service
        loop = asyncio.get_running_loop()
        for qos in sorted(set(schedule)):
            qos_key = ("percent", float(qos))
            cached = await loop.run_in_executor(
                own_server.batcher.executor,
                lambda qk=qos_key: service.plan(config.model, qk),
            )
            cold = await loop.run_in_executor(
                own_server.batcher.executor,
                lambda qk=qos_key: service.plan_cold(config.model, qk),
            )
            digest_checks += 1
            if cached["digest"] != cold["digest"]:
                digest_mismatches += 1

    stats = own_server.stats() if own_server is not None else None
    if own_server is not None:
        await own_server.stop()
    elif isinstance(client, ServeClient):
        await client.close()

    histogram: LatencyHistogram = outcome["histogram"]
    error_counts: Dict[str, int] = {}
    for kind in outcome["errors"]:
        error_counts[kind] = error_counts.get(kind, 0) + 1
    summary: Dict[str, Any] = {
        "model": config.model,
        "seed": config.seed,
        "requests": config.requests,
        "concurrency": config.concurrency,
        "burst": config.burst,
        "ok": outcome["ok"],
        "sheds": outcome["shed"],
        "cached_responses": outcome["cached"],
        "errors_by_kind": error_counts,
        "wall_s": wall_s,
        "throughput_rps": outcome["ok"] / wall_s if wall_s > 0 else 0.0,
        "latency": histogram.to_dict(),
        "digest_checks": digest_checks,
        "digest_mismatches": digest_mismatches,
        "cache_consistent": digest_mismatches == 0,
    }
    if stats is not None:
        summary["server"] = stats
    return summary


def run_loadgen(config: Optional[LoadGenConfig] = None) -> Dict[str, Any]:
    """Run one scenario to completion and return its summary dict."""
    return asyncio.run(_run(config or LoadGenConfig()))
