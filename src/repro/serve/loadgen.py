"""Seeded load generator for the serve layer: closed-loop, burst, open-loop.

Drives a :class:`~repro.serve.server.PlanServer` or a
:class:`~repro.serve.router.ShardRouter` (in-process by default, or
any TCP address) with a *deterministic* request schedule: the full
request list -- which model and which QoS each request asks for -- is
drawn up front from one seeded RNG, so two runs with the same seed
issue byte-identical request streams whatever the scheduler does.

Three shapes of load:

* **closed loop** (default): ``concurrency`` workers each keep exactly
  one request outstanding, the classic saturation harness.  With
  concurrency below the admission depth this sheds nothing.
* **burst** (``burst=True``): every request is submitted in one event
  loop iteration before any can complete.  Admission decisions then
  depend only on submission order, so shed counts reproduce exactly
  run over run -- the overload-determinism gate of ``BENCH_serve``.
* **open loop** (``open_loop=True``): requests are dispatched on a
  fixed arrival timetable (``arrival_rate_rps``) regardless of how
  fast responses come back -- the production-shaped harness where a
  slow server builds queue instead of slowing the clients down.
  ``clients`` independent client identities round-robin the arrivals.

Latency SLO gates ride on the summary: when ``slo_p95_ms`` /
``slo_p99_ms`` are set, the summary's ``slo`` block reports the
attained percentiles against them and ``slo_met`` gates the run.

The summary optionally cross-checks cache consistency: for every
distinct (model, QoS) exercised, the served plan payload must digest
(sha256) byte-identically to one computed on a cold pipeline --
including plans that crossed a shard boundary through the shared
cache tier.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..errors import OverloadedError, ReproError
from .client import InProcessClient, ServeClient
from .metrics import LatencyHistogram
from .router import RouterConfig, ShardRouter
from .server import PlanServer, ServeConfig


@dataclass
class LoadGenConfig:
    """One load-generation scenario.

    Attributes:
        model: wire name of the model requests plan (single-model
            traffic; see ``models`` for mixed).
        models: when non-empty, each request draws its model from this
            tuple (seeded) -- the mixed multi-model traffic shape.
        qos_percents: QoS slack values the seeded schedule draws from.
        pairs: when non-empty, the schedule cycles these explicit
            (model, qos_percent) keys -- every pair issued the same
            number of times (±1), seeded shuffle -- instead of drawing
            from ``models`` x ``qos_percents``.  The benchmark uses
            this to drive a key set with a known shard balance.
        requests: total requests to issue.
        concurrency: closed-loop worker count (ignored for bursts and
            open loop).
        clients: independent client identities sharing the load
            (distinct request-id prefixes; round-robin assignment).
        seed: request-schedule seed.
        burst: submit everything at once instead of closed-loop.
        open_loop: dispatch on the ``arrival_rate_rps`` timetable
            instead of closed-loop.
        arrival_rate_rps: open-loop arrival rate.
        deadline_s: per-request deadline forwarded to the server.
        slo_p95_ms / slo_p99_ms: optional latency SLO gates evaluated
            into the summary's ``slo`` block.
        verify_digests: cross-check served payloads against a cold
            pipeline per distinct (model, QoS) (in-process targets
            only).
        serve: server configuration for the in-process target (and
            the per-worker configuration when sharded).
        shards: when > 0, drive an in-process
            :class:`~repro.serve.router.ShardRouter` with this many
            worker processes instead of a single server.
        router: full router configuration override (implies sharded;
            ``shards``/``serve`` above are ignored when set).
        journal_path: write-ahead journal for the sharded shared
            plan-cache tier (ignored unless sharded; see
            :mod:`repro.recovery.journal`).
        fault_plan: optional :class:`~repro.faults.plan.FaultPlan`
            driving the router's WORKER_KILL chaos hook (ignored
            unless sharded).
        target_host / target_port: drive an external TCP server
            instead of building one in-process.
    """

    model: str = "tiny"
    models: Tuple[str, ...] = ()
    #: Optional registry board every request plans for (absent ->
    #: the serve tier's default board; wire shape unchanged).
    board: Optional[str] = None
    pairs: Tuple[Tuple[str, float], ...] = ()
    qos_percents: Tuple[float, ...] = (10.0, 30.0, 50.0)
    requests: int = 64
    concurrency: int = 8
    clients: int = 1
    seed: int = 0
    burst: bool = False
    open_loop: bool = False
    arrival_rate_rps: float = 200.0
    deadline_s: Optional[float] = None
    slo_p95_ms: Optional[float] = None
    slo_p99_ms: Optional[float] = None
    verify_digests: bool = True
    serve: ServeConfig = field(default_factory=ServeConfig)
    shards: int = 0
    router: Optional[RouterConfig] = None
    journal_path: Optional[str] = None
    fault_plan: Optional[Any] = None
    target_host: Optional[str] = None
    target_port: Optional[int] = None

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ReproError("requests must be >= 1")
        if self.concurrency < 1:
            raise ReproError("concurrency must be >= 1")
        if self.clients < 1:
            raise ReproError("clients must be >= 1")
        if not self.qos_percents:
            raise ReproError("qos_percents must be non-empty")
        if self.open_loop and self.arrival_rate_rps <= 0:
            raise ReproError("arrival_rate_rps must be positive")
        if self.burst and self.open_loop:
            raise ReproError("burst and open_loop are exclusive")
        if self.shards < 0:
            raise ReproError("shards must be >= 0")

    @property
    def model_pool(self) -> Tuple[str, ...]:
        return self.models if self.models else (self.model,)

    @property
    def sharded(self) -> bool:
        return self.router is not None or self.shards > 0

    def router_config(self) -> RouterConfig:
        if self.router is not None:
            return self.router
        return RouterConfig(
            shards=self.shards,
            serve=self.serve,
            journal_path=self.journal_path,
            fault_plan=self.fault_plan,
        )


def request_schedule(config: LoadGenConfig) -> List[Tuple[str, float]]:
    """The deterministic per-request (model, QoS) assignment."""
    rng = random.Random(f"loadgen:{config.seed}")
    if config.pairs:
        reps = -(-config.requests // len(config.pairs))
        schedule = [
            (str(model), float(qos))
            for model, qos in config.pairs * reps
        ][: config.requests]
        rng.shuffle(schedule)
        return schedule
    models = config.model_pool
    return [
        (
            models[rng.randrange(len(models))],
            config.qos_percents[
                rng.randrange(len(config.qos_percents))
            ],
        )
        for _ in range(config.requests)
    ]


async def _issue(
    client,
    config: LoadGenConfig,
    model: str,
    qos_percent: float,
    outcome: Dict,
) -> None:
    start = time.perf_counter()
    try:
        extra = {} if config.board is None else {"board": config.board}
        result = await client.request(
            "plan",
            deadline_s=config.deadline_s,
            model=model,
            qos_percent=qos_percent,
            **extra,
        )
    except OverloadedError:
        outcome["shed"] += 1
    except ReproError as err:
        outcome["errors"].append(type(err).__name__)
    else:
        outcome["ok"] += 1
        outcome["ok_by_model"][model] = (
            outcome["ok_by_model"].get(model, 0) + 1
        )
        if result.get("cached"):
            outcome["cached"] += 1
        if result.get("degraded"):
            # A router failover answered from the shared cache or with
            # the uniform fallback; these carry no fresh-solve digest.
            outcome["degraded"] += 1
        outcome["histogram"].record(time.perf_counter() - start)


async def _drive(
    config: LoadGenConfig,
    clients: List[Any],
    schedule: List[Tuple[str, float]],
    outcome: Dict[str, Any],
) -> float:
    """Issue the whole schedule in the configured shape; returns wall s."""
    loop = asyncio.get_running_loop()
    start = time.perf_counter()
    if config.burst:
        await asyncio.gather(
            *(
                _issue(
                    clients[i % len(clients)], config, model, qos, outcome
                )
                for i, (model, qos) in enumerate(schedule)
            )
        )
    elif config.open_loop:
        t0 = loop.time()
        tasks: List[asyncio.Task] = []
        for i, (model, qos) in enumerate(schedule):
            delay = t0 + i / config.arrival_rate_rps - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            tasks.append(
                asyncio.ensure_future(
                    _issue(
                        clients[i % len(clients)],
                        config,
                        model,
                        qos,
                        outcome,
                    )
                )
            )
        await asyncio.gather(*tasks)
    else:
        index = {"next": 0}

        async def worker(worker_index: int) -> None:
            client = clients[worker_index % len(clients)]
            while True:
                i = index["next"]
                if i >= len(schedule):
                    return
                index["next"] = i + 1
                model, qos = schedule[i]
                await _issue(client, config, model, qos, outcome)

        await asyncio.gather(
            *(worker(w) for w in range(config.concurrency))
        )
    return time.perf_counter() - start


async def _verify_digests(
    config: LoadGenConfig,
    client: Any,
    schedule: List[Tuple[str, float]],
    executor,
) -> Tuple[int, int]:
    """Cold-recompute every distinct key; count (checks, mismatches).

    The served payload comes back through the real request path (a
    cache or shared-cache hit by now); the oracle is a fresh cold
    pipeline in this process -- exactly the single-process answer the
    sharded digests must match.
    """
    from .service import PlanService

    loop = asyncio.get_running_loop()
    oracle = PlanService(
        cache_enabled=False,
        solver=config.serve.solver,
        dp_resolution=config.serve.dp_resolution,
        max_refinements=config.serve.max_refinements,
    )
    extra = {} if config.board is None else {"board": config.board}

    async def fetch(model: str, qos: float) -> Dict[str, Any]:
        # The burst may leave the admission bucket drained; retrying
        # is deterministic under a logical arrival clock (each check
        # advances it one tick) and self-limiting under a real one.
        for _ in range(10_000):
            try:
                result = await client.request(
                    "plan", model=model, qos_percent=qos, **extra
                )
            except OverloadedError as err:
                delay = min(max(err.retry_after_s or 0.0, 0.0), 0.01)
                if delay:
                    await asyncio.sleep(delay)
            else:
                if result.get("degraded") == "uniform-fallback":
                    # Mid-recovery fallback carries no digest; by the
                    # next attempt the failover's health pass has the
                    # respawned worker serving real solves again.
                    await asyncio.sleep(0.01)
                    continue
                return result
        raise ReproError(
            "digest verification was never admitted; admission "
            "config sheds even an idle sequential probe"
        )

    checks = 0
    mismatches = 0
    for model, qos in sorted(set(schedule)):
        qos_key = ("percent", float(qos))
        served = await fetch(model, qos)
        cold = await loop.run_in_executor(
            executor,
            lambda m=model, qk=qos_key: oracle.plan_cold(
                m, qk, board_name=config.board
            ),
        )
        checks += 1
        if served["digest"] != cold["digest"]:
            mismatches += 1
    return checks, mismatches


def _slo_block(
    config: LoadGenConfig, histogram: LatencyHistogram
) -> Tuple[Optional[Dict[str, Any]], bool]:
    targets = {
        "p95": config.slo_p95_ms,
        "p99": config.slo_p99_ms,
    }
    if all(value is None for value in targets.values()):
        return None, True
    block: Dict[str, Any] = {}
    met = True
    for name, target_ms in targets.items():
        if target_ms is None:
            continue
        attained_ms = (
            histogram.percentile_s(float(name[1:])) * 1e3
        )
        ok = attained_ms <= target_ms
        met = met and ok
        block[name] = {
            "target_ms": target_ms,
            "attained_ms": attained_ms,
            "met": ok,
        }
    return block, met


async def _run(config: LoadGenConfig) -> Dict[str, Any]:
    own_server: Optional[PlanServer] = None
    own_router: Optional[ShardRouter] = None
    tcp_clients: List[ServeClient] = []
    clients: List[Any] = []
    if config.target_host is not None and config.target_port is not None:
        for k in range(config.clients):
            tcp_clients.append(
                await ServeClient(
                    config.target_host,
                    config.target_port,
                    client_id=f"loadgen-c{k}",
                ).connect()
            )
        clients = list(tcp_clients)
    elif config.sharded:
        own_router = ShardRouter(config.router_config())
        await own_router.start()
        clients = [
            InProcessClient(own_router, client_id=f"loadgen-c{k}")
            for k in range(config.clients)
        ]
    else:
        own_server = PlanServer(config.serve)
        clients = [
            InProcessClient(own_server, client_id=f"loadgen-c{k}")
            for k in range(config.clients)
        ]

    schedule = request_schedule(config)
    outcome: Dict[str, Any] = {
        "ok": 0,
        "shed": 0,
        "cached": 0,
        "degraded": 0,
        "ok_by_model": {},
        "errors": [],
        "histogram": LatencyHistogram(),
    }
    wall_s = await _drive(config, clients, schedule, outcome)

    digest_checks = 0
    digest_mismatches = 0
    if (
        config.verify_digests
        and (own_server is not None or own_router is not None)
        and not config.serve.stateless
    ):
        executor = (
            own_server.batcher.executor
            if own_server is not None
            else None
        )
        digest_checks, digest_mismatches = await _verify_digests(
            config, clients[0], schedule, executor
        )

    if own_router is not None:
        stats = await own_router.stats()
    elif own_server is not None:
        stats = own_server.stats()
    else:
        stats = None
    if own_router is not None:
        await own_router.stop()
    if own_server is not None:
        await own_server.stop()
    for tcp_client in tcp_clients:
        await tcp_client.close()

    histogram: LatencyHistogram = outcome["histogram"]
    error_counts: Dict[str, int] = {}
    for kind in outcome["errors"]:
        error_counts[kind] = error_counts.get(kind, 0) + 1
    slo, slo_met = _slo_block(config, histogram)
    summary: Dict[str, Any] = {
        "model": config.model,
        "models": list(config.model_pool),
        "seed": config.seed,
        "requests": config.requests,
        "concurrency": config.concurrency,
        "clients": config.clients,
        "burst": config.burst,
        "open_loop": config.open_loop,
        "shards": (
            config.router_config().shards if config.sharded else 0
        ),
        "ok": outcome["ok"],
        "ok_by_model": dict(sorted(outcome["ok_by_model"].items())),
        "sheds": outcome["shed"],
        "cached_responses": outcome["cached"],
        "degraded_responses": outcome["degraded"],
        "errors_by_kind": error_counts,
        "wall_s": wall_s,
        "throughput_rps": outcome["ok"] / wall_s if wall_s > 0 else 0.0,
        "latency": histogram.to_dict(),
        "digest_checks": digest_checks,
        "digest_mismatches": digest_mismatches,
        "cache_consistent": digest_mismatches == 0,
        "slo_met": slo_met,
    }
    if slo is not None:
        summary["slo"] = slo
    if stats is not None:
        summary["server"] = stats
    return summary


def run_loadgen(config: Optional[LoadGenConfig] = None) -> Dict[str, Any]:
    """Run one scenario to completion and return its summary dict."""
    return asyncio.run(_run(config or LoadGenConfig()))
