"""Shard worker: one :class:`PlanServer` in a child process.

:func:`worker_main` is the ``spawn`` entry point the
:class:`~repro.serve.router.ShardRouter` launches one process per
shard with.  Each worker owns the full single-process serving stack --
warm pipeline, local LRU, micro-batcher, deterministic admission --
binds a loopback TCP port, reports it back through the control pipe,
and then serves until the router sends ``stop`` (or the pipe dies with
the router, so orphaned workers exit instead of leaking).

The worker is deliberately *just* a :class:`PlanServer`: every
endpoint, metric and determinism property of the single-process tier
holds per shard, and the only additions are the shard identity
(``worker_id``, labeling its metrics and stats) and the shared
cross-worker plan-cache tier handed in by the router.
"""

from __future__ import annotations

import asyncio
import os
from typing import Any, Optional

from .server import PlanServer, ServeConfig


async def _serve(
    worker_id: int,
    conn,
    config: ServeConfig,
    shared_cache: Optional[Any],
) -> None:
    server = PlanServer(config, shared_cache=shared_cache)
    await server.start()
    conn.send(
        {"event": "ready", "port": server.port, "pid": os.getpid()}
    )
    loop = asyncio.get_running_loop()

    def wait_for_stop() -> None:
        # Blocks a helper thread, not the event loop.  EOF means the
        # router died; treat it exactly like an orderly stop.
        try:
            while True:
                message = conn.recv()
                if (
                    isinstance(message, dict)
                    and message.get("event") == "stop"
                ):
                    return
        except (EOFError, OSError):
            return

    try:
        await loop.run_in_executor(None, wait_for_stop)
    finally:
        await server.stop()
        try:
            conn.send({"event": "stopped", "pid": os.getpid()})
        except (BrokenPipeError, OSError):
            pass


def worker_main(
    worker_id: int,
    conn,
    config: ServeConfig,
    shared_cache: Optional[Any] = None,
) -> None:
    """Child-process entry point (must stay importable for ``spawn``).

    Args:
        worker_id: shard identity; stamped into ``config`` so the
            worker's metrics and stats are labeled with it.
        conn: the router's end of a ``multiprocessing.Pipe``; the
            worker sends ``{"event": "ready", "port": ...}`` once
            listening and exits when it reads ``{"event": "stop"}``
            (or the pipe closes).
        config: the per-worker :class:`ServeConfig`; ``port`` should
            be 0 so each worker binds a free loopback port.
        shared_cache: the router's cross-worker plan-cache tier
            (a picklable :class:`~repro.serve.shared_cache.\
ManagedSharedCache` handle), or None to run isolated.
    """
    import dataclasses

    config = dataclasses.replace(config, worker_id=worker_id)
    try:
        asyncio.run(_serve(worker_id, conn, config, shared_cache))
    except KeyboardInterrupt:
        pass
    finally:
        try:
            conn.close()
        except OSError:
            pass
