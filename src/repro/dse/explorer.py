"""Per-layer design-space exploration (paper Step 2).

For every schedulable layer, the explorer prices each (granularity,
HFO) candidate with the same segment cost model the runtime uses,
producing a cloud of :class:`SolutionPoint` latency/energy pairs.
Pricing follows the runtime's execution discipline exactly:

* memory-bound segments run at the LFO clock, compute-bound segments
  at the candidate HFO;
* two SYSCLK mux handshakes are charged per DAE iteration;
* **no** per-layer PLL reprogram is charged by default
  (``assume_relock=False``): within a schedule, re-locks only occur
  when consecutive layers change HFO frequency, and the pipeline
  accounts for that sequence-dependent cost with a
  runtime-in-the-loop refinement (:meth:`repro.pipeline.DAEDVFSPipeline.optimize`)
  instead of padding every layer with the worst case.  Pass
  ``assume_relock=True`` to reproduce the paper's isolated per-layer
  profiling view, which *does* charge one reprogram per layer: for
  decoupled layers only the part of the ~200 us lock not hidden under
  the first buffer copy, for fused layers the full stall.  The
  measured-mode profiler (:mod:`repro.profiling`) keeps that
  worst-case default, as a hardware campaign would.

The explorer can optionally route its measurements through the
simulated timer and INA219 sensor (:mod:`repro.profiling`) to mimic
the paper's hardware profiling pipeline; by default it prices
analytically, which is exact and fast.  Pricing a layer trace against
*all* HFO candidates at once goes through
:meth:`LayerCostModel.price_batch`, which aggregates the workloads
once and broadcasts over the frequency/power vectors with numpy; the
scalar :meth:`LayerCostModel.price` is kept as the reference oracle
(a test pins their agreement to 1e-12 relative over the full paper
grid).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..clock.configs import ClockConfig
from ..engine.cost import TraceBuilder, TraceParams
from ..engine.trace import LayerTrace, SegmentKind
from ..errors import DesignSpaceError
from ..mcu.board import Board
from ..mcu.core import SegmentWorkload
from ..nn.graph import Model, Node
from ..nn.layers.base import LayerKind
from ..obs.tracing import span
from ..power.energy import EnergyAccount, EnergyCategory
from ..power.model import PowerState
from .space import DesignSpace


@dataclass(frozen=True)
class SolutionPoint:
    """One priced (layer, granularity, HFO) candidate."""

    node_id: int
    layer_name: str
    layer_kind: LayerKind
    granularity: int
    hfo: ClockConfig
    latency_s: float
    energy_j: float

    def dominates(self, other: "SolutionPoint") -> bool:
        """Pareto dominance: no worse on both axes, better on one."""
        return (
            self.latency_s <= other.latency_s
            and self.energy_j <= other.energy_j
            and (
                self.latency_s < other.latency_s
                or self.energy_j < other.energy_j
            )
        )


@dataclass(frozen=True)
class TimeComponents:
    """Power-independent time decomposition of one trace vs. an HFO grid.

    Everything the pricing of a (trace, HFO) candidate needs from the
    *timing* side -- how long the core spends in each power state at
    each clock -- separated from the *power* side, which is the only
    part that differs between devices of a heterogeneous fleet.  The
    fleet pricing service (:mod:`repro.fleet.pricing`) computes these
    once per (model, space) and re-prices them against every device's
    power model.

    Attributes:
        comp_hfo: per-HFO time in ACTIVE_COMPUTE at the HFO clock.
        mem_hfo: per-HFO time in ACTIVE_MEMORY at the HFO clock.
        comp_lfo: time in ACTIVE_COMPUTE at the LFO (decoupled memory
            phases; zero for fused traces).
        mem_lfo: time in ACTIVE_MEMORY at the LFO.
        switch_lfo: per-HFO stall time charged at the LFO switching
            power (mux handshakes, un-hidden re-lock remainders).
    """

    comp_hfo: np.ndarray
    mem_hfo: np.ndarray
    comp_lfo: float
    mem_lfo: float
    switch_lfo: np.ndarray

    def latency(self) -> np.ndarray:
        """Per-HFO total latency in seconds."""
        latency = np.full(len(self.comp_hfo), self.comp_lfo + self.mem_lfo)
        latency += self.comp_hfo + self.mem_hfo
        latency += self.switch_lfo
        return latency


@dataclass(frozen=True)
class StackedComponents:
    """Several :class:`TimeComponents` stacked along a leading axis.

    One layer's decompositions across its whole granularity sweep,
    packed into (n_granularity, n_hfo) matrices so a device prices the
    entire sweep in one vectorized pass instead of one numpy round-trip
    per granularity.  Element-for-element the arithmetic matches
    :meth:`LayerCostModel.price_components` (same operations in the
    same order), so the batched prices are bit-identical to the
    per-granularity ones.

    Attributes:
        comp_lfo / mem_lfo: per-granularity LFO-phase scalars.
        comp_hfo / mem_hfo / switch_lfo: per-(granularity, HFO) times.
        effective_granularities: the trace-clamped granularity actually
            realized for each requested one.
    """

    comp_lfo: np.ndarray
    mem_lfo: np.ndarray
    comp_hfo: np.ndarray
    mem_hfo: np.ndarray
    switch_lfo: np.ndarray
    effective_granularities: Tuple[int, ...]

    @classmethod
    def stack(
        cls,
        entries: Sequence["tuple[TimeComponents, int]"],
    ) -> "StackedComponents":
        """Pack (components, effective granularity) pairs into matrices."""
        components = [c for c, _ in entries]
        return cls(
            comp_lfo=np.array(
                [c.comp_lfo for c in components], dtype=np.float64
            ),
            mem_lfo=np.array(
                [c.mem_lfo for c in components], dtype=np.float64
            ),
            comp_hfo=np.stack([c.comp_hfo for c in components]),
            mem_hfo=np.stack([c.mem_hfo for c in components]),
            switch_lfo=np.stack([c.switch_lfo for c in components]),
            effective_granularities=tuple(g for _, g in entries),
        )


class LayerCostModel:
    """Prices one layer trace under the LFO/HFO discipline.

    :meth:`price` is the scalar reference oracle; :meth:`price_batch`
    prices one trace against a whole vector of HFO candidates at once
    (the DSE hot path) and agrees with the oracle to 1e-12 relative.
    The batch path factors through :meth:`time_components_batch`, a
    power-model-independent time decomposition that fleet deployments
    share across devices whose timing models match.
    """

    def __init__(self, board: Board):
        self.board = board
        #: Per-HFO-tuple frequency/power vectors, built once per sweep.
        self._power_cache: Dict[Tuple[ClockConfig, ...], Dict[str, np.ndarray]] = {}
        #: Per-LFO scalar powers (compute, memory, switching) -- three
        #: constants re-read on every price_components call otherwise.
        self._lfo_power_cache: Dict[ClockConfig, Tuple[float, float, float]] = {}

    def _power_vectors(
        self, hfos: Tuple[ClockConfig, ...]
    ) -> Dict[str, np.ndarray]:
        cached = self._power_cache.get(hfos)
        if cached is not None:
            return cached
        power = self.board.power_model
        vectors = {
            "f": np.array([c.sysclk_hz for c in hfos], dtype=np.float64),
            "compute": np.array(
                [power.power(c, PowerState.ACTIVE_COMPUTE) for c in hfos],
                dtype=np.float64,
            ),
            "memory": np.array(
                [power.power(c, PowerState.ACTIVE_MEMORY) for c in hfos],
                dtype=np.float64,
            ),
            "uses_pll": np.array([c.uses_pll for c in hfos], dtype=bool),
        }
        # setdefault so concurrent builders converge on one canonical
        # entry instead of racing get/set.
        return self._power_cache.setdefault(hfos, vectors)

    def _segment_time_parts_vec(
        self, workload: SegmentWorkload, f_vec: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Vectorized :meth:`CoreModel.segment_time_parts` over ``f_vec``.

        Mirrors the scalar expression term by term so each element is
        computed by the same floating-point operations as the oracle.
        """
        memory_map = self.board.core.memory_map
        flash, sram = memory_map.flash, memory_map.sram
        compute_t = workload.cpu_cycles / f_vec
        memory_t = flash.lines_for(workload.flash_bytes) * (
            flash.cycles_per_line / f_vec + flash.fixed_latency_s
        ) + sram.lines_for(workload.sram_bytes) * (
            sram.cycles_per_line / f_vec + sram.fixed_latency_s
        )
        return compute_t, memory_t

    def time_components_batch(
        self,
        trace: LayerTrace,
        hfos: Sequence[ClockConfig],
        lfo: ClockConfig,
        assume_relock: bool = False,
    ) -> TimeComponents:
        """Power-independent time decomposition of one trace vs. ``hfos``.

        Touches only the board's core timing, memory map, cache and
        switch-cost models -- never the power model -- so the result is
        shared by every device of a fleet whose timing parameters
        match, regardless of per-device power variation.
        """
        hfos = tuple(hfos)
        core = self.board.core
        switch = self.board.switch_cost_model
        f_vec = self._power_vectors(hfos)["f"]
        n = len(hfos)
        if trace.is_decoupled:
            # Aggregate with plain float accumulators -- the same
            # addition order as a merged() chain (bit-identical), but
            # without one intermediate SegmentWorkload per segment.
            mem_cpu = mem_flash = mem_sram = 0.0
            comp_cpu = comp_flash = comp_sram = 0.0
            first_mem = None
            for segment in trace.segments:
                workload = segment.workload
                if segment.kind is SegmentKind.MEMORY:
                    if first_mem is None:
                        first_mem = workload
                    mem_cpu += workload.cpu_cycles
                    mem_flash += workload.flash_bytes
                    mem_sram += workload.sram_bytes
                else:
                    comp_cpu += workload.cpu_cycles
                    comp_flash += workload.flash_bytes
                    comp_sram += workload.sram_bytes
            total_mem = SegmentWorkload(
                cpu_cycles=mem_cpu,
                flash_bytes=mem_flash,
                sram_bytes=mem_sram,
            )
            total_comp = SegmentWorkload(
                cpu_cycles=comp_cpu,
                flash_bytes=comp_flash,
                sram_bytes=comp_sram,
            )
            # Memory segments run at the LFO: one scalar time pair
            # shared by every candidate.
            mem_ct, mem_mt = core.segment_time_parts(
                total_mem, lfo.sysclk_hz
            )
            comp_ct, comp_mt = self._segment_time_parts_vec(
                total_comp, f_vec
            )
            extra = 0.0
            if assume_relock and first_mem is not None:
                first_mem_t = core.segment_time_s(first_mem, lfo.sysclk_hz)
                extra += max(0.0, switch.pll_relock_s - first_mem_t)
            extra_t = extra + trace.mux_switch_count() * switch.mux_switch_s
            return TimeComponents(
                comp_hfo=comp_ct,
                mem_hfo=comp_mt,
                comp_lfo=mem_ct,
                mem_lfo=mem_mt,
                switch_lfo=np.full(n, extra_t),
            )
        comp_t = np.zeros(n)
        mem_t = np.zeros(n)
        for segment in trace.segments:
            compute_t, memory_t = self._segment_time_parts_vec(
                segment.workload, f_vec
            )
            comp_t += compute_t
            mem_t += memory_t
        if assume_relock:
            stall = switch.pll_relock_s + switch.mux_switch_s
            uses_pll = np.array([c.uses_pll for c in hfos], dtype=bool)
            stalled = uses_pll.astype(np.float64) * stall
        else:
            stalled = np.zeros(n)
        return TimeComponents(
            comp_hfo=comp_t,
            mem_hfo=mem_t,
            comp_lfo=0.0,
            mem_lfo=0.0,
            switch_lfo=stalled,
        )

    def price_components(
        self,
        components: TimeComponents,
        hfos: Sequence[ClockConfig],
        lfo: ClockConfig,
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Combine a time decomposition with *this* board's power model.

        This is the per-device half of batched pricing: given the
        (shared) :class:`TimeComponents`, produce the (latency_s,
        energy_j) vectors under this cost model's power constants.
        """
        hfos = tuple(hfos)
        power = self.board.power_model
        vectors = self._power_vectors(hfos)
        lfo_powers = self._lfo_power_cache.get(lfo)
        if lfo_powers is None:
            lfo_powers = (
                power.power(lfo, PowerState.ACTIVE_COMPUTE),
                power.power(lfo, PowerState.ACTIVE_MEMORY),
                power.switching_power(lfo),
            )
            lfo_powers = self._lfo_power_cache.setdefault(lfo, lfo_powers)
        p_compute_lfo, p_memory_lfo, p_switch_lfo = lfo_powers
        latency = np.full(
            len(hfos), components.comp_lfo + components.mem_lfo
        )
        energy = np.full(
            len(hfos),
            components.comp_lfo * p_compute_lfo
            + components.mem_lfo * p_memory_lfo,
        )
        latency += components.comp_hfo + components.mem_hfo
        energy += components.comp_hfo * vectors["compute"]
        energy += components.mem_hfo * vectors["memory"]
        latency += components.switch_lfo
        energy += components.switch_lfo * p_switch_lfo
        return latency, energy

    def price_components_stacked(
        self,
        stacked: StackedComponents,
        hfos: Sequence[ClockConfig],
        lfo: ClockConfig,
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Price a whole granularity sweep in one vectorized pass.

        Returns (latency_s, energy_j) matrices of shape
        (n_granularity, n_hfo).  Broadcasting performs exactly the
        operations of :meth:`price_components` on each element in the
        same order, so row ``i`` is bit-identical to pricing
        ``stacked``'s ``i``-th decomposition on its own.
        """
        hfos = tuple(hfos)
        power = self.board.power_model
        vectors = self._power_vectors(hfos)
        lfo_powers = self._lfo_power_cache.get(lfo)
        if lfo_powers is None:
            lfo_powers = (
                power.power(lfo, PowerState.ACTIVE_COMPUTE),
                power.power(lfo, PowerState.ACTIVE_MEMORY),
                power.switching_power(lfo),
            )
            lfo_powers = self._lfo_power_cache.setdefault(lfo, lfo_powers)
        p_compute_lfo, p_memory_lfo, p_switch_lfo = lfo_powers
        latency = (stacked.comp_lfo + stacked.mem_lfo)[:, None] + (
            stacked.comp_hfo + stacked.mem_hfo
        )
        energy = (
            stacked.comp_lfo * p_compute_lfo
            + stacked.mem_lfo * p_memory_lfo
        )[:, None] + stacked.comp_hfo * vectors["compute"]
        energy = energy + stacked.mem_hfo * vectors["memory"]
        latency = latency + stacked.switch_lfo
        energy = energy + stacked.switch_lfo * p_switch_lfo
        return latency, energy

    def price_batch(
        self,
        trace: LayerTrace,
        hfos: Sequence[ClockConfig],
        lfo: ClockConfig,
        assume_relock: bool = False,
    ) -> "tuple[np.ndarray, np.ndarray]":
        """(latency_s, energy_j) vectors of one trace across ``hfos``.

        The memory/compute workloads are aggregated once per trace and
        broadcast over the candidate frequency and power vectors, so
        pricing a layer against the whole HFO grid costs one numpy
        pass instead of ``len(hfos)`` scalar walks of the segment
        list.  Semantics match :meth:`price` exactly (pinned by test
        to 1e-12 relative error over the full paper grid).
        """
        components = self.time_components_batch(
            trace, hfos, lfo, assume_relock=assume_relock
        )
        return self.price_components(components, hfos, lfo)

    def price(
        self,
        trace: LayerTrace,
        hfo: ClockConfig,
        lfo: ClockConfig,
        assume_relock: bool = True,
    ) -> "tuple[float, float]":
        """(latency_s, energy_j) of one layer execution.

        Segment times are linear in the workload, so all memory
        segments are priced as one aggregate at the LFO and all compute
        segments as one aggregate at the HFO -- exactly equal to the
        segment-by-segment sum, at a fraction of the cost.

        Args:
            trace: the layer's segment trace.
            hfo: compute-segment (or fused) clock.
            lfo: memory-segment clock.
            assume_relock: charge the per-layer PLL reprogram; disable
                when pricing a schedule known to keep the HFO constant.
        """
        core = self.board.core
        power = self.board.power_model
        switch = self.board.switch_cost_model
        latency = 0.0
        energy = 0.0
        if trace.is_decoupled:
            total_mem = SegmentWorkload()
            total_comp = SegmentWorkload()
            first_mem = None
            for segment in trace.segments:
                if segment.kind is SegmentKind.MEMORY:
                    if first_mem is None:
                        first_mem = segment.workload
                    total_mem = total_mem.merged(segment.workload)
                else:
                    total_comp = total_comp.merged(segment.workload)
            for workload, config in ((total_mem, lfo), (total_comp, hfo)):
                compute_t, memory_t = core.segment_time_parts(
                    workload, config.sysclk_hz
                )
                latency += compute_t + memory_t
                energy += compute_t * power.power(
                    config, PowerState.ACTIVE_COMPUTE
                )
                energy += memory_t * power.power(
                    config, PowerState.ACTIVE_MEMORY
                )
            if assume_relock and first_mem is not None:
                first_mem_t = core.segment_time_s(first_mem, lfo.sysclk_hz)
                uncovered = max(0.0, switch.pll_relock_s - first_mem_t)
                latency += uncovered
                energy += uncovered * power.switching_power(lfo)
            mux_time = trace.mux_switch_count() * switch.mux_switch_s
            latency += mux_time
            energy += mux_time * power.switching_power(lfo)
        else:
            for segment in trace.segments:
                compute_t, memory_t = core.segment_time_parts(
                    segment.workload, hfo.sysclk_hz
                )
                latency += compute_t + memory_t
                energy += compute_t * power.power(
                    hfo, PowerState.ACTIVE_COMPUTE
                )
                energy += memory_t * power.power(
                    hfo, PowerState.ACTIVE_MEMORY
                )
            if assume_relock and hfo.uses_pll:
                stall = switch.pll_relock_s + switch.mux_switch_s
                latency += stall
                energy += stall * power.switching_power(lfo)
        return latency, energy


def layer_intervals(
    board: Board,
    trace: LayerTrace,
    hfo: ClockConfig,
    lfo: ClockConfig,
    assume_relock: bool = True,
) -> EnergyAccount:
    """Build the (compact) power trace of one layer execution.

    Produces an :class:`~repro.power.energy.EnergyAccount` whose totals
    equal :meth:`LayerCostModel.price` exactly (a unit test pins this);
    the interval structure is what the profiling monitor samples with
    the simulated INA219.
    """
    core = board.core
    power = board.power_model
    switch = board.switch_cost_model
    account = EnergyAccount()
    label = trace.layer_name

    def charge(workload: SegmentWorkload, config: ClockConfig) -> None:
        compute_t, memory_t = core.segment_time_parts(
            workload, config.sysclk_hz
        )
        account.add(
            compute_t,
            power.power(config, PowerState.ACTIVE_COMPUTE),
            EnergyCategory.COMPUTE,
            label,
        )
        account.add(
            memory_t,
            power.power(config, PowerState.ACTIVE_MEMORY),
            EnergyCategory.MEMORY,
            label,
        )

    if trace.is_decoupled:
        first_mem = trace.memory_segments()[0].workload
        if assume_relock:
            first_mem_t = core.segment_time_s(first_mem, lfo.sysclk_hz)
            uncovered = max(0.0, switch.pll_relock_s - first_mem_t)
            account.add(
                uncovered,
                power.switching_power(lfo),
                EnergyCategory.SWITCH,
                label,
            )
        for segment in trace.segments:
            config = lfo if segment.kind is SegmentKind.MEMORY else hfo
            charge(segment.workload, config)
        account.add(
            trace.mux_switch_count() * switch.mux_switch_s,
            power.switching_power(lfo),
            EnergyCategory.SWITCH,
            label,
        )
    else:
        if assume_relock and hfo.uses_pll:
            account.add(
                switch.pll_relock_s + switch.mux_switch_s,
                power.switching_power(lfo),
                EnergyCategory.SWITCH,
                label,
            )
        for segment in trace.segments:
            charge(segment.workload, hfo)
    return account


class DSEExplorer:
    """Sweeps the design space per layer (paper Step 2A/2B input).

    Args:
        board: the simulated board.
        space: granularities and clock candidates.
        trace_params: access-pattern constants.
    """

    def __init__(
        self,
        board: Board,
        space: DesignSpace,
        trace_params: Optional[TraceParams] = None,
        granularity_fn=None,
        tracer: Optional[TraceBuilder] = None,
    ):
        """
        Args:
            granularity_fn: optional ``(model, node) -> tuple`` hook
                overriding the space's granularity grid per layer --
                e.g. :func:`repro.dse.space.adaptive_granularities`
                bound to a board.  Must always include 0.
            tracer: an existing (typically shared, memoizing)
                :class:`TraceBuilder` to use instead of building a
                private one -- fleet deployments hand every explorer
                one fleet-wide builder, since traces depend only on
                the timing/cache models the fleet shares.
        """
        self.board = board
        self.space = space
        self.tracer = tracer or TraceBuilder(board, trace_params)
        self.pricer = LayerCostModel(board)
        self.granularity_fn = granularity_fn

    def explore_layer(
        self,
        model: Model,
        node: Node,
        assume_relock: bool = False,
    ) -> List[SolutionPoint]:
        """All priced candidates for one layer.

        DAE-eligible layers get the full (g, HFO) grid; other
        conv-family layers only sweep the HFO at g = 0.

        Args:
            assume_relock: charge a per-layer PLL reprogram.  Off by
                default: within a schedule, re-locks only occur when
                consecutive layers change HFO frequency, and the
                pipeline accounts for the actual cost with a
                runtime-in-the-loop refinement instead of padding
                every layer with the worst case.

        Raises:
            DesignSpaceError: if the node is not schedulable (no
                arithmetic to scale).
        """
        if node.layer.kind not in {
            LayerKind.CONV2D,
            LayerKind.DEPTHWISE_CONV,
            LayerKind.POINTWISE_CONV,
            LayerKind.DENSE,
        }:
            raise DesignSpaceError(
                f"layer {node.layer.name!r} ({node.layer.kind.value}) is "
                "not schedulable"
            )
        npu = self.board.npu
        if npu is not None and npu.supports(node.layer.kind):
            # NPU-mapped layer: one fixed (latency, energy) point,
            # repeated per HFO candidate so downstream consumers (the
            # MCKP classes, the uniform-HFO sweep) see a candidate at
            # every frequency -- all identical, because the NPU's own
            # clock domain makes the layer insensitive to CPU DVFS.
            macs = node.layer.macs(*model.input_shapes_of(node))
            latency = npu.layer_latency_s(macs)
            energy = npu.layer_energy_j(macs)
            return [
                SolutionPoint(
                    node_id=node.node_id,
                    layer_name=node.layer.name,
                    layer_kind=node.layer.kind,
                    granularity=0,
                    hfo=hfo,
                    latency_s=latency,
                    energy_j=energy,
                )
                for hfo in self.space.hfo_configs
            ]
        if not node.layer.supports_dae:
            granularities: "tuple" = (0,)
        elif self.granularity_fn is not None:
            granularities = tuple(self.granularity_fn(model, node))
            if 0 not in granularities:
                raise DesignSpaceError(
                    "granularity_fn must always include 0 (no DAE)"
                )
        else:
            granularities = self.space.granularities
        points: List[SolutionPoint] = []
        for g in granularities:
            trace = self.tracer.build(model, node, g)
            latencies, energies = self.pricer.price_batch(
                trace, self.space.hfo_configs, self.space.lfo,
                assume_relock=assume_relock,
            )
            for hfo, latency, energy in zip(
                self.space.hfo_configs, latencies, energies
            ):
                points.append(
                    SolutionPoint(
                        node_id=node.node_id,
                        layer_name=node.layer.name,
                        layer_kind=node.layer.kind,
                        granularity=trace.granularity,
                        hfo=hfo,
                        latency_s=float(latency),
                        energy_j=float(energy),
                    )
                )
        return points

    def explore_model(self, model: Model) -> Dict[int, List[SolutionPoint]]:
        """Candidate clouds for every conv-family layer of a model."""
        with span("dse.explore", model=model.name) as sp:
            clouds = {
                node.node_id: self.explore_layer(model, node)
                for node in model.conv_nodes()
            }
            sp.set(
                layers=len(clouds),
                candidates=sum(len(c) for c in clouds.values()),
            )
            return clouds
