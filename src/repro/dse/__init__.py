"""Design-space exploration: space, per-layer sweep, Pareto extraction."""

from .explorer import DSEExplorer, LayerCostModel, SolutionPoint
from .pareto import hypervolume_2d, is_pareto_optimal, pareto_front
from .space import (
    ADAPTIVE_GRANULARITY_LADDER,
    DesignSpace,
    adaptive_granularities,
    paper_design_space,
    prune_iso_frequency,
)

__all__ = [
    "DSEExplorer",
    "LayerCostModel",
    "SolutionPoint",
    "hypervolume_2d",
    "is_pareto_optimal",
    "pareto_front",
    "ADAPTIVE_GRANULARITY_LADDER",
    "DesignSpace",
    "adaptive_granularities",
    "paper_design_space",
    "prune_iso_frequency",
]
