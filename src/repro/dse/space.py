"""Design-space definition for the DAE x clocking co-exploration.

The paper's Step 2 (Sec. III-B) explores three axes per layer:

* the decoupling granularity ``g`` in {0, 2, 4, 8, 12, 16};
* the HFO clock: PLL configurations with PLLN in {75, 100, 150, 168,
  216, 336, 432} and PLLM in {25, 50} on the 50 MHz HSE (PLLP = 2);
* the LFO clock, fixed to the HSE at 50 MHz.

:func:`paper_design_space` builds exactly that space.  Iso-frequency
PLL configurations are pruned to the minimum-power representative
(the Sec. II-A selection rule), since a dominated clock tuple can
never appear in a Pareto-optimal layer solution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..clock.configs import (
    ClockConfig,
    PAPER_LFO_HZ,
    hfo_grid,
    iso_frequency_groups,
    lfo_config,
)
from ..engine.cost import PAPER_GRANULARITIES
from ..errors import DesignSpaceError
from ..power.model import BoardPowerModel


@dataclass(frozen=True)
class DesignSpace:
    """One (granularities x HFO configs) exploration space.

    Attributes:
        granularities: DAE granularity values; must include 0 so the
            undecoupled configuration is always a candidate.
        hfo_configs: candidate HFO clock configurations.
        lfo: the LFO clock shared by all memory-bound segments.
    """

    granularities: Tuple[int, ...] = PAPER_GRANULARITIES
    hfo_configs: Tuple[ClockConfig, ...] = ()
    lfo: ClockConfig = field(default_factory=lfo_config)

    def __post_init__(self) -> None:
        if not self.granularities:
            raise DesignSpaceError("design space needs at least one granularity")
        if any(g < 0 for g in self.granularities):
            raise DesignSpaceError("granularities must be >= 0")
        if 0 not in self.granularities:
            raise DesignSpaceError(
                "granularity 0 (no DAE) must be part of the space so the "
                "input model is always a candidate"
            )
        if not self.hfo_configs:
            raise DesignSpaceError("design space needs at least one HFO config")

    def fingerprint(self) -> Tuple:
        """Hashable identity of the exploration space, for cache keys.

        Two spaces with equal fingerprints price every candidate
        identically given the same board, so exploration clouds and
        Pareto fronts keyed on (model fingerprint, space fingerprint)
        can be reused across QoS levels and uniform-HFO sweeps.
        """
        return (self.granularities, self.hfo_configs, self.lfo)

    @property
    def size_per_dae_layer(self) -> int:
        """Candidate count for a DAE-eligible layer."""
        dae_granularities = sum(1 for g in self.granularities if g > 0)
        # g = 0 pairs with every HFO; each g > 0 also pairs with every HFO.
        return (1 + dae_granularities) * len(self.hfo_configs)

    def frequencies_hz(self) -> List[float]:
        """Distinct HFO SYSCLK frequencies, ascending."""
        return sorted({config.sysclk_hz for config in self.hfo_configs})


def prune_iso_frequency(
    configs: Sequence[ClockConfig], power_model: BoardPowerModel
) -> List[ClockConfig]:
    """Keep the minimum-power config per distinct SYSCLK frequency."""
    groups: Dict[float, List[ClockConfig]] = iso_frequency_groups(configs)
    pruned = [
        min(
            group,
            key=lambda c: (power_model.active_power(c), c.describe()),
        )
        for group in groups.values()
    ]
    return sorted(pruned, key=lambda c: c.sysclk_hz)


def paper_design_space(
    power_model: Optional[BoardPowerModel] = None,
    lfo_hz: float = PAPER_LFO_HZ,
) -> DesignSpace:
    """The exact exploration space of the paper's Sec. III-B."""
    model = power_model or BoardPowerModel()
    configs = prune_iso_frequency(hfo_grid(), model)
    return DesignSpace(
        granularities=PAPER_GRANULARITIES,
        hfo_configs=tuple(configs),
        lfo=lfo_config(lfo_hz),
    )


#: Candidate ladder for the adaptive granularity policy.
ADAPTIVE_GRANULARITY_LADDER = (2, 4, 8, 12, 16, 24, 32, 48, 64)


def adaptive_granularities(board, model, node) -> Tuple[int, ...]:
    """Layer-aware granularity grid (extension beyond the paper).

    The paper fixes g in {0, 2, 4, 8, 12, 16} for every layer but
    notes the best value "depends on both board-related specifications
    (e.g. cache size) as well as code-related characteristics (e.g.
    number of output channels and kernel size)" (Sec. III-B).  This
    policy derives the grid per layer: candidates from a geometric
    ladder, capped at the largest group whose working set still fits
    the usable cache (buffering beyond that only buys refetch misses)
    and at the layer's own unit count.

    Args:
        board: provides the cache model.
        model: the graph (for input shapes).
        node: the layer to size.

    Returns:
        A granularity tuple always containing 0 (the undecoupled
        candidate), suitable for :class:`DesignSpace.granularities`.
    """
    from ..nn.layers.base import LayerKind

    layer = node.layer
    if not layer.supports_dae:
        return (0,)
    in_shape = model.input_shapes_of(node)[0]
    h, w, c = in_shape
    if layer.kind is LayerKind.DEPTHWISE_CONV:
        out_h, out_w, _ = node.output_shape
        unit_bytes = h * w + out_h * out_w + layer.kernel * layer.kernel + 4
        units = c
    else:
        unit_bytes = c + layer.out_channels
        units = h * w
    usable = board.cache.usable_bytes
    fit_cap = max(2, int(usable // max(1, unit_bytes)))
    grid = [0]
    for g in ADAPTIVE_GRANULARITY_LADDER:
        if g > units or g > fit_cap:
            break
        grid.append(g)
    if len(grid) == 1:
        grid.append(2)  # always offer at least the smallest decoupling
    return tuple(grid)
