"""Pareto-front extraction over (latency, energy) solution clouds.

Step 2B of the paper keeps, per layer, only the Pareto-optimal
(latency, energy) points; the MCKP classes of Step 3 are exactly these
fronts.  Dominated points can never appear in an optimal schedule, so
pruning them is lossless and shrinks the knapsack instance.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple, TypeVar

T = TypeVar("T")


def pareto_front(
    points: Sequence[T],
    key: Callable[[T], Tuple[float, float]],
) -> List[T]:
    """Minimal (non-dominated) subset under coordinate-wise <=.

    Args:
        points: candidate objects.
        key: maps a candidate to its (objective_1, objective_2) pair;
            both objectives are minimized.

    Returns:
        The non-dominated candidates sorted by ascending first
        objective.  Duplicate coordinate pairs are collapsed to one
        representative (the first encountered), so fronts are strictly
        decreasing in the second objective.
    """
    decorated = sorted(
        ((key(p), i, p) for i, p in enumerate(points)),
        key=lambda entry: (entry[0][0], entry[0][1], entry[1]),
    )
    front: List[T] = []
    best_second = float("inf")
    last_first: float | None = None
    for (first, second), _, point in decorated:
        if second < best_second and first != last_first:
            front.append(point)
            best_second = second
            last_first = first
        elif second < best_second and first == last_first:
            # Same first objective with strictly better second: replace.
            front[-1] = point
            best_second = second
    return front


def is_pareto_optimal(
    candidate: T,
    points: Sequence[T],
    key: Callable[[T], Tuple[float, float]],
) -> bool:
    """Whether no other point dominates ``candidate``."""
    cx, cy = key(candidate)
    for point in points:
        if point is candidate:
            continue
        px, py = key(point)
        if px <= cx and py <= cy and (px < cx or py < cy):
            return False
    return True


def hypervolume_2d(
    points: Sequence[T],
    key: Callable[[T], Tuple[float, float]],
    reference: Tuple[float, float],
) -> float:
    """Dominated hypervolume against a reference (for DSE diagnostics).

    Both objectives are minimized; the reference must be weakly worse
    than every point on both axes (points beyond it contribute 0).
    """
    front_keys = [
        (x, y)
        for x, y in (key(p) for p in pareto_front(points, key))
        if x < reference[0] and y < reference[1]
    ]
    volume = 0.0
    for i, (x, y) in enumerate(front_keys):
        next_x = (
            front_keys[i + 1][0] if i + 1 < len(front_keys) else reference[0]
        )
        volume += (next_x - x) * (reference[1] - y)
    return volume
