"""MCU substrate: memory, cache, core timing, timers and the board."""

from .board import Board, make_nucleo_f746zg, make_nucleo_f767zi
from .cache import CacheModel, CacheStats, SetAssociativeCache
from .core import CoreModel, CoreTimingParams, SegmentWorkload
from .memory import MemoryMap, MemoryRegion, make_flash, make_memory_map, make_sram
from .replay import (
    ReplayPoint,
    interleaved_refetch_fraction,
    measured_refetch_fraction,
    validate_analytic_model,
)
from .timers import HardwareTimer, TimerConfig

__all__ = [
    "Board",
    "make_nucleo_f746zg",
    "make_nucleo_f767zi",
    "CacheModel",
    "CacheStats",
    "SetAssociativeCache",
    "CoreModel",
    "CoreTimingParams",
    "SegmentWorkload",
    "MemoryMap",
    "MemoryRegion",
    "make_flash",
    "make_memory_map",
    "make_sram",
    "ReplayPoint",
    "interleaved_refetch_fraction",
    "measured_refetch_fraction",
    "validate_analytic_model",
    "HardwareTimer",
    "TimerConfig",
]
