"""Board composition: the simulated STM32F767ZI Nucleo.

A :class:`Board` bundles every hardware model the rest of the library
consumes -- the RCC clock tree, the power model, the core timing
model, the L1 cache model and the switch-cost model -- behind one
object, so engines, profilers and benchmarks all run against the same
hardware description.  :func:`make_nucleo_f767zi` builds the default
board matching the paper's experimental setup (Sec. IV).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..clock.configs import ClockConfig, lfo_config
from ..clock.rcc import RCC
from ..clock.switching import SwitchCostModel
from ..power.model import BoardPowerModel, PowerModelParams
from .cache import CacheModel
from .core import CoreModel, CoreTimingParams
from .memory import MemoryMap
from .npu import NPUModel
from .timers import HardwareTimer, TimerConfig


@dataclass
class Board:
    """One simulated MCU board.

    Attributes:
        name: board identifier.
        rcc: the stateful clock controller.
        power_model: (config, state) -> watts.
        core: segment-workload -> wall-time pricing.
        cache: analytic L1 model bounding the DAE granularity.
        switch_cost_model: clock-transition pricing (shared with the
            RCC so everyone agrees on switch latencies).
        npu: optional NPU offload descriptor.  When present, layers the
            NPU supports price as frequency-insensitive fixed-latency
            segments (see :mod:`repro.mcu.npu`) instead of walking the
            DAE/DVFS design space.
        space_factory: optional ``board -> DesignSpace`` hook providing
            the board's native exploration grid (its own HFO ladder and
            LFO).  ``None`` means the paper's F767 grid; kept untyped
            to avoid an mcu -> dse import cycle.
    """

    name: str
    rcc: RCC
    power_model: BoardPowerModel
    core: CoreModel
    cache: CacheModel
    switch_cost_model: SwitchCostModel
    npu: Optional[NPUModel] = None
    space_factory: Optional[Callable[["Board"], object]] = None

    @property
    def memory_map(self) -> MemoryMap:
        """The board's memory hierarchy."""
        return self.core.memory_map

    def fingerprint(self) -> tuple:
        """Hashable identity of the full hardware description.

        Two boards with equal fingerprints price every (model, plan)
        pair identically -- timing *and* power -- so pipelines and
        their caches built against one serve the other.  The fleet
        scheduler groups devices by this key.
        """
        fp = (
            self.name,
            self.power_model.params,
            self.timing_fingerprint(),
        )
        # Appended only when present so NPU-less boards (every pre-NPU
        # caller) keep their original fingerprint shape.
        if self.npu is not None:
            fp = fp + (self.npu,)
        return fp

    def timing_fingerprint(self) -> tuple:
        """Identity of the timing side only (power model excluded).

        Layer traces and runtime interval *durations* depend only on
        these models, so boards equal under this key can share one
        :class:`~repro.engine.cost.TraceBuilder` and one recorded
        execution trace even when their power models differ -- the
        fleet's device-variation case, where process/temperature
        spread moves the power curves but not the cycle counts.
        """
        return (
            self.core.params,
            self.core.memory_map,
            self.cache,
            self.switch_cost_model,
        )

    def make_timer(
        self, sysclk_hz: Optional[float] = None, config: Optional[TimerConfig] = None
    ) -> HardwareTimer:
        """Create a timer clocked from the current (or given) SYSCLK."""
        return HardwareTimer(
            sysclk_hz=sysclk_hz if sysclk_hz is not None else self.rcc.sysclk_hz,
            config=config,
        )


def make_nucleo_f746zg(
    power_params: Optional[PowerModelParams] = None,
    timing_params: Optional[CoreTimingParams] = None,
) -> "Board":
    """Build a sibling board: the STM32F746ZG Nucleo.

    Same Cortex-M7 core and 216 MHz ceiling as the F767, but only a
    4 KB L1 data cache and a slightly leakier process corner.  Used by
    the portability benchmark (E17) to show the methodology is not
    specific to one family member: the smaller cache pushes the useful
    DAE granularities down, and the optimizer adapts.
    """
    base_power = power_params or PowerModelParams().scaled(
        p_mcu_leakage_w=0.009
    )
    board = make_nucleo_f767zi(
        power_params=base_power,
        timing_params=timing_params,
        cache=CacheModel(capacity_bytes=4 * 1024),
    )
    return Board(
        name="nucleo-f746zg",
        rcc=board.rcc,
        power_model=board.power_model,
        core=board.core,
        cache=board.cache,
        switch_cost_model=board.switch_cost_model,
    )


def make_nucleo_f767zi(
    power_params: Optional[PowerModelParams] = None,
    timing_params: Optional[CoreTimingParams] = None,
    cache: Optional[CacheModel] = None,
    memory_map: Optional[MemoryMap] = None,
    switch_cost_model: Optional[SwitchCostModel] = None,
    initial_config: Optional[ClockConfig] = None,
) -> Board:
    """Build the default STM32F767ZI Nucleo board model.

    Every component can be overridden for sensitivity studies; the
    defaults reproduce the paper's setup: Cortex-M7 with a 16 KB L1
    data cache, 1..50 MHz HSE, 216 MHz maximum SYSCLK and the
    calibrated power constants.
    """
    switch_model = switch_cost_model or SwitchCostModel()
    return Board(
        name="nucleo-f767zi",
        rcc=RCC(
            cost_model=switch_model,
            initial=initial_config or lfo_config(),
        ),
        power_model=BoardPowerModel(power_params),
        core=CoreModel(params=timing_params, memory_map=memory_map),
        cache=cache or CacheModel(),
        switch_cost_model=switch_model,
    )
