"""Analytic Cortex-M7 core timing model.

The engine layer (:mod:`repro.engine.trace`) describes every layer
execution as a sequence of *segments*, each carrying primitive counts:
pure compute cycles, bytes streamed from flash and bytes moved in
SRAM.  This module prices a segment at a given SYSCLK frequency:

    t(f) = cpu_cycles / f  +  t_flash(bytes, f)  +  t_sram(bytes, f)

where the flash term is mostly frequency-*independent* (wait-state
bound, see :mod:`repro.mcu.memory`) and everything else scales 1/f.
That split is the entire physical basis of the DAE+DVFS methodology:
memory-bound segments lose little time at the 50 MHz LFO clock, while
compute-bound segments need the PLL-generated HFO clock to meet
latency.

Cycle-per-MAC constants reflect CMSIS-NN-style int8 kernels on the
M7's dual-issue pipeline with SMLAD (2 MACs/cycle peak): pointwise
(1x1) convolutions vectorize well, depthwise convolutions suffer from
short inner loops and achieve fewer MACs per cycle -- which is exactly
why the paper finds depthwise layers tolerate lower frequencies
(Fig. 6 analysis).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ShapeError
from .memory import MemoryMap, make_memory_map


@dataclass(frozen=True)
class CoreTimingParams:
    """Cycle-cost constants of the analytic core model.

    Attributes:
        cycles_per_mac_depthwise: cycles per int8 MAC in depthwise
            kernels (short rows, poor dual-issue utilization).
        cycles_per_mac_pointwise: cycles per int8 MAC in pointwise
            (1x1, matmul-like) kernels.
        cycles_per_mac_conv: cycles per int8 MAC in generic conv/dense
            kernels.
        cycles_per_buffer_byte: cycles to move one byte into an SRAM
            DAE buffer (load-use plus store, amortized).
        cycles_per_output_byte: cycles to requantize and store one
            output byte.
        loop_overhead_cycles: fixed per-segment control overhead
            (loop setup, pointer arithmetic, function prologue).
    """

    cycles_per_mac_depthwise: float = 1.7
    cycles_per_mac_pointwise: float = 1.0
    cycles_per_mac_conv: float = 1.3
    cycles_per_buffer_byte: float = 0.8
    cycles_per_output_byte: float = 0.6
    loop_overhead_cycles: float = 14.0

    def __post_init__(self) -> None:
        for name in (
            "cycles_per_mac_depthwise",
            "cycles_per_mac_pointwise",
            "cycles_per_mac_conv",
            "cycles_per_buffer_byte",
            "cycles_per_output_byte",
            "loop_overhead_cycles",
        ):
            if getattr(self, name) < 0:
                raise ShapeError(f"{name} must be >= 0")


@dataclass(frozen=True)
class SegmentWorkload:
    """Primitive counts of one execution segment.

    Attributes:
        cpu_cycles: pure computation cycles (scale as 1/f).
        flash_bytes: bytes streamed from flash (wait-state bound;
            mostly frequency independent in wall time).
        sram_bytes: bytes moved within SRAM (cycle priced).
    """

    cpu_cycles: float = 0.0
    flash_bytes: float = 0.0
    sram_bytes: float = 0.0

    def __post_init__(self) -> None:
        if self.cpu_cycles < 0 or self.flash_bytes < 0 or self.sram_bytes < 0:
            raise ShapeError("segment workload counts must be >= 0")

    def merged(self, other: "SegmentWorkload") -> "SegmentWorkload":
        """Element-wise sum of two workloads."""
        return SegmentWorkload(
            cpu_cycles=self.cpu_cycles + other.cpu_cycles,
            flash_bytes=self.flash_bytes + other.flash_bytes,
            sram_bytes=self.sram_bytes + other.sram_bytes,
        )


class CoreModel:
    """Prices :class:`SegmentWorkload` objects at a given frequency."""

    def __init__(
        self,
        params: CoreTimingParams | None = None,
        memory_map: MemoryMap | None = None,
    ):
        self.params = params or CoreTimingParams()
        self.memory_map = memory_map or make_memory_map()

    def segment_time_parts(
        self, workload: SegmentWorkload, f_hz: float
    ) -> "tuple[float, float]":
        """(compute_time, memory_time) of one segment at ``f_hz``.

        The compute part is the pure-cycle term; the memory part is the
        flash/SRAM transfer time.  The runtime prices the two parts at
        different power states (the core draws less while stalled).

        Raises:
            ShapeError: if the frequency is not positive.
        """
        if f_hz <= 0:
            raise ShapeError(f"frequency must be positive, got {f_hz}")
        compute_t = workload.cpu_cycles / f_hz
        memory_t = self.memory_map.flash.transfer_time_s(
            workload.flash_bytes, f_hz
        ) + self.memory_map.sram.transfer_time_s(workload.sram_bytes, f_hz)
        return compute_t, memory_t

    def segment_time_s(self, workload: SegmentWorkload, f_hz: float) -> float:
        """Wall time of one segment at SYSCLK frequency ``f_hz``."""
        compute_t, memory_t = self.segment_time_parts(workload, f_hz)
        return compute_t + memory_t

    def frequency_sensitivity(
        self, workload: SegmentWorkload, f_low_hz: float, f_high_hz: float
    ) -> float:
        """How much a segment speeds up from ``f_low`` to ``f_high``.

        Returns the speedup ratio ``t(f_low) / t(f_high)``; 1.0 means
        completely frequency-insensitive (perfectly memory bound), and
        ``f_high / f_low`` means perfectly compute bound.  The DSE uses
        this as a diagnostic for how well DAE separated the phases.
        """
        t_low = self.segment_time_s(workload, f_low_hz)
        t_high = self.segment_time_s(workload, f_high_hz)
        if t_high == 0.0:
            return 1.0
        return t_low / t_high
