"""Neural processing unit (NPU) offload model.

NPU-class MCUs (the STM32N6's Neural-ART, NXP's eIQ Neutron) run
convolution-family layers on a dedicated accelerator clocked from its
own fixed-frequency domain.  For the DAE/DVFS methodology this inverts
the paper's central tradeoff: an NPU-mapped layer's latency and energy
do **not** move with the CPU SYSCLK, so DVFS buys nothing on those
layers -- they price as fixed-latency, fixed-energy segments and the
optimizer's remaining leverage is the CPU-resident layers plus the
idle policy.  (See *Evaluating the Energy Efficiency of NPU-Accelerated
ML Inference on Embedded Microcontrollers* for measurements of exactly
this frequency insensitivity.)

The model is deliberately coarse -- a throughput (MACs/cycle at a
fixed accelerator clock), an active power, and a per-layer dispatch
overhead -- matching the granularity at which vendor tools report NPU
performance (e.g. ST quotes Neural-ART at 600 GOPS / 3 TOPS/W).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..errors import PowerModelError
from ..units import MHZ, us

#: Layer kinds an NPU typically maps (conv-family operators).  Values
#: are :class:`~repro.nn.layers.base.LayerKind` values, kept as strings
#: so this module never imports the nn layer (no mcu -> nn dependency).
DEFAULT_NPU_KINDS: Tuple[str, ...] = (
    "conv2d",
    "depthwise",
    "pointwise",
    "dense",
)


@dataclass(frozen=True)
class NPUModel:
    """One NPU offload descriptor.

    Attributes:
        name: accelerator identifier (e.g. ``"neural-art"``).
        macs_per_cycle: effective multiply-accumulates per accelerator
            cycle (already including utilization losses).
        clock_hz: the accelerator's own clock domain -- fixed, and
            decoupled from the CPU SYSCLK, which is exactly why NPU
            layers are frequency-insensitive under CPU DVFS.
        active_power_w: board-level power draw while the NPU runs.
        dispatch_overhead_s: per-layer cost of programming the NPU
            (descriptor fetch, weight streaming setup, epoch kickoff).
        supported_kinds: ``LayerKind.value`` strings the NPU can map;
            unsupported layers fall back to the CPU path.
    """

    name: str = "npu"
    macs_per_cycle: float = 64.0
    clock_hz: float = 800 * MHZ
    active_power_w: float = 0.2
    dispatch_overhead_s: float = us(25)
    supported_kinds: Tuple[str, ...] = DEFAULT_NPU_KINDS

    def __post_init__(self) -> None:
        if self.macs_per_cycle <= 0:
            raise PowerModelError("NPU macs_per_cycle must be positive")
        if self.clock_hz <= 0:
            raise PowerModelError("NPU clock_hz must be positive")
        if self.active_power_w < 0:
            raise PowerModelError("NPU active_power_w must be >= 0")
        if self.dispatch_overhead_s < 0:
            raise PowerModelError("NPU dispatch_overhead_s must be >= 0")
        if not self.supported_kinds:
            raise PowerModelError("NPU needs at least one supported kind")

    def supports(self, kind) -> bool:
        """Whether ``kind`` (a LayerKind or its value) maps to the NPU."""
        value = getattr(kind, "value", kind)
        return value in self.supported_kinds

    def layer_latency_s(self, macs: float) -> float:
        """Wall time of one layer: dispatch plus MAC streaming.

        Independent of the CPU SYSCLK by construction -- the
        accelerator runs from :attr:`clock_hz` regardless of what the
        core's clock tree is doing.
        """
        return self.dispatch_overhead_s + macs / (
            self.macs_per_cycle * self.clock_hz
        )

    def layer_energy_j(self, macs: float) -> float:
        """Energy of one layer at the accelerator's active power."""
        return self.layer_latency_s(macs) * self.active_power_w

    def throughput_gops(self) -> float:
        """Peak effective throughput in GOPS (2 ops per MAC)."""
        return 2.0 * self.macs_per_cycle * self.clock_hz / 1e9
