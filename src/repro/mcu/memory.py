"""Memory-system timing model (flash and SRAM of the STM32F767).

The crucial physical fact the DAE methodology exploits is that the two
memory levels scale *differently* with the core clock:

* **Flash** accesses are wait-state bound.  The F7 inserts wait states
  proportionally to SYSCLK (ART accelerator aside), so a random flash
  line fetch takes roughly constant *wall time* (~tens of ns)
  regardless of frequency.  Running a flash-streaming, memory-bound
  segment at 50 MHz instead of 216 MHz therefore wastes little time
  while saving a lot of power -- "exploiting processor idling during
  memory accesses" (paper Sec. I).
* **SRAM** (and cache hits) take a fixed number of *cycles*, so their
  wall time scales as 1/f like compute.

Each :class:`MemoryRegion` carries both components: a fixed wall-time
term per line fetch and a per-access cycle term, so
``access_time(f) = cycles / f + fixed``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ShapeError
from ..units import kib, ns


@dataclass(frozen=True)
class MemoryRegion:
    """One addressable memory of the board.

    Attributes:
        name: human-readable region name.
        size_bytes: region capacity.
        line_bytes: transfer granularity (cache-line sized bursts for
            flash; word-sized for SRAM).
        fixed_latency_s: wall-time component of one line transfer
            (wait-state / array-access bound; frequency independent).
        cycles_per_line: core-cycle component of one line transfer
            (issue, address generation, bus handshake).
    """

    name: str
    size_bytes: int
    line_bytes: int
    fixed_latency_s: float
    cycles_per_line: float

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0:
            raise ShapeError("memory sizes must be positive")
        if self.fixed_latency_s < 0 or self.cycles_per_line < 0:
            raise ShapeError("memory latencies must be >= 0")

    def lines_for(self, n_bytes: float) -> float:
        """Number of line transfers needed to move ``n_bytes``.

        Fractional results are allowed: the analytic cost model works
        with expected values, not discrete event counts.
        """
        if n_bytes < 0:
            raise ShapeError(f"byte count must be >= 0, got {n_bytes}")
        return n_bytes / self.line_bytes

    def transfer_time_s(self, n_bytes: float, f_hz: float) -> float:
        """Wall time to move ``n_bytes`` at core frequency ``f_hz``."""
        if f_hz <= 0:
            raise ShapeError(f"frequency must be positive, got {f_hz}")
        lines = self.lines_for(n_bytes)
        return lines * (self.cycles_per_line / f_hz + self.fixed_latency_s)


def make_flash() -> MemoryRegion:
    """The 2 MiB embedded flash of the STM32F767.

    One 32-byte line fetch costs ~1 issue cycle plus ~40 ns of
    wait-state time (the F7 scales wait states with frequency, making
    the array access roughly constant in wall time).
    """
    return MemoryRegion(
        name="flash",
        size_bytes=2 * kib(1024),
        line_bytes=32,
        fixed_latency_s=ns(40),
        cycles_per_line=1.0,
    )


def make_sram() -> MemoryRegion:
    """The AXI SRAM of the STM32F767 as seen through the L1 cache.

    Word-granular scattered accesses: one issue cycle plus ~30 ns of
    average bus-matrix/line-fill latency per word.  The fixed term
    aggregates the L1 miss cost over typical conv access patterns --
    it is a calibrated average, not a zero-wait-state DTCM figure --
    and is the frequency-independent stall time that makes memory-
    bound segments cheap to run at the LFO clock.
    """
    return MemoryRegion(
        name="sram",
        size_bytes=kib(512),
        line_bytes=4,
        fixed_latency_s=ns(14),
        cycles_per_line=1.0,
    )


@dataclass(frozen=True)
class MemoryMap:
    """The board's memory hierarchy endpoints."""

    flash: MemoryRegion
    sram: MemoryRegion


def make_memory_map() -> MemoryMap:
    """Default STM32F767 memory map."""
    return MemoryMap(flash=make_flash(), sram=make_sram())
