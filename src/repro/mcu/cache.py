"""L1 data-cache models (16 KB on the Cortex-M7 of the STM32F767).

Two models live here:

* :class:`SetAssociativeCache` -- a faithful line-granular LRU
  simulator.  It is used by the unit/property tests and by the one-off
  calibration of the analytic model, and is available to users who
  want to replay address traces.
* :class:`CacheModel` -- the analytic capacity model consumed by the
  segment cost model.  DAE buffers ``g`` channels (or ``g`` pointwise
  columns) before computing on them; once the buffered working set
  exceeds the usable cache capacity, buffered data is evicted before
  it is consumed and the compute-bound segment has to re-fetch it from
  flash.  This is the "very high buffer size can lead the cache misses
  to skyrocket" cliff of paper Sec. III-A, and it is what bounds the
  useful range of the decoupling granularity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..errors import ShapeError
from ..units import kib


@dataclass
class CacheStats:
    """Hit/miss counters of the cache simulator."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        """Total number of accesses observed."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Miss ratio (0.0 when no accesses were made)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses


class SetAssociativeCache:
    """Line-granular set-associative LRU cache simulator.

    Args:
        capacity_bytes: total data capacity.
        line_bytes: cache-line size.
        ways: associativity.

    Raises:
        ShapeError: if the geometry is inconsistent (capacity not a
            multiple of ``line_bytes * ways``, non-positive sizes).
    """

    def __init__(
        self,
        capacity_bytes: int = kib(16),
        line_bytes: int = 32,
        ways: int = 4,
    ):
        if capacity_bytes <= 0 or line_bytes <= 0 or ways <= 0:
            raise ShapeError("cache geometry values must be positive")
        if capacity_bytes % (line_bytes * ways) != 0:
            raise ShapeError(
                f"capacity {capacity_bytes} is not a multiple of "
                f"line_bytes*ways = {line_bytes * ways}"
            )
        self.capacity_bytes = capacity_bytes
        self.line_bytes = line_bytes
        self.ways = ways
        self.n_sets = capacity_bytes // (line_bytes * ways)
        # Each set is an ordered list of line tags, most recent last.
        self._sets: Dict[int, List[int]] = {}
        self.stats = CacheStats()

    def reset(self) -> None:
        """Flush the cache and zero the statistics."""
        self._sets.clear()
        self.stats = CacheStats()

    def access(self, address: int) -> bool:
        """Access one byte address; returns True on hit.

        Both loads and stores are modelled identically (write-allocate).
        """
        if address < 0:
            raise ShapeError(f"address must be >= 0, got {address}")
        line = address // self.line_bytes
        set_index = line % self.n_sets
        tag = line // self.n_sets
        lines = self._sets.setdefault(set_index, [])
        if tag in lines:
            lines.remove(tag)
            lines.append(tag)
            self.stats.hits += 1
            return True
        lines.append(tag)
        if len(lines) > self.ways:
            lines.pop(0)
        self.stats.misses += 1
        return False

    def access_range(self, start: int, n_bytes: int) -> int:
        """Access a contiguous byte range; returns the number of misses."""
        if n_bytes < 0:
            raise ShapeError(f"range length must be >= 0, got {n_bytes}")
        misses_before = self.stats.misses
        line = start // self.line_bytes
        last_line = (start + max(0, n_bytes - 1)) // self.line_bytes
        while line <= last_line and n_bytes > 0:
            self.access(line * self.line_bytes)
            line += 1
        return self.stats.misses - misses_before

    def resident_bytes(self) -> int:
        """Bytes currently held in the cache."""
        return sum(len(lines) for lines in self._sets.values()) * self.line_bytes


@dataclass(frozen=True)
class CacheModel:
    """Analytic miss model for DAE buffering.

    Attributes:
        capacity_bytes: L1 data-cache capacity (16 KB on the F767).
        usable_fraction: fraction of the capacity actually available to
            the DAE buffers -- the rest is occupied by weights, the
            output tile and the runtime's own state.  Conflict misses
            in a low-associativity cache further shrink the usable
            share, which is why this is well below 1.0.
        overflow_sharpness: how abruptly the refetch fraction ramps up
            once the working set overflows (1.0 = proportional to the
            overflow share; larger = steeper cliff).
    """

    capacity_bytes: int = kib(16)
    usable_fraction: float = 0.55
    overflow_sharpness: float = 1.6

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ShapeError("cache capacity must be positive")
        if not 0.0 < self.usable_fraction <= 1.0:
            raise ShapeError("usable_fraction must be in (0, 1]")
        if self.overflow_sharpness <= 0:
            raise ShapeError("overflow_sharpness must be positive")

    @property
    def usable_bytes(self) -> float:
        """Capacity effectively available to buffered DAE data."""
        return self.capacity_bytes * self.usable_fraction

    def refetch_fraction(self, working_set_bytes: float) -> float:
        """Fraction of buffered bytes evicted before they are consumed.

        0.0 while the working set fits in the usable capacity, then a
        convex ramp towards 1.0 as the working set grows -- the
        granularity cliff.  Monotonically non-decreasing in the working
        set size (a property test pins this).
        """
        if working_set_bytes < 0:
            raise ShapeError("working set must be >= 0")
        usable = self.usable_bytes
        if working_set_bytes <= usable:
            return 0.0
        overflow_share = 1.0 - usable / working_set_bytes
        return min(1.0, overflow_share ** (1.0 / self.overflow_sharpness))
