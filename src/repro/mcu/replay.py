"""Address-trace replay: cross-validating the analytic cache model.

The analytic :class:`~repro.mcu.cache.CacheModel` predicts how much of
a DAE buffer survives in cache until the compute phase consumes it.
This module generates the actual address traces a DAE iteration
produces -- buffer fill, weight walk, buffer consumption -- and replays
them through the line-accurate :class:`~repro.mcu.cache.SetAssociativeCache`
simulator, so the analytic shortcut can be validated against a real
eviction process (see ``tests/mcu/test_replay.py`` and the discussion
in docs/calibration.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..errors import ShapeError
from .cache import CacheModel, SetAssociativeCache


@dataclass(frozen=True)
class ReplayPoint:
    """One working-set size, predicted vs. simulated."""

    working_set_bytes: int
    analytic_refetch: float
    simulated_refetch: float


def measured_refetch_fraction(
    cache: SetAssociativeCache, working_set_bytes: int
) -> float:
    """Fraction of a just-written buffer that misses when consumed.

    Models one DAE iteration: the memory-bound phase streams
    ``working_set_bytes`` through the cache (buffer fill), then the
    compute phase walks the same bytes again.  The second pass's miss
    rate is the refetch fraction the analytic model approximates.

    Raises:
        ShapeError: for a non-positive working set.
    """
    if working_set_bytes <= 0:
        raise ShapeError("working set must be positive")
    cache.reset()
    cache.access_range(0, working_set_bytes)
    cache.stats = type(cache.stats)()
    cache.access_range(0, working_set_bytes)
    return cache.stats.miss_rate


def interleaved_refetch_fraction(
    cache: SetAssociativeCache,
    buffer_bytes: int,
    weight_bytes: int,
) -> float:
    """Refetch fraction when weights compete with the DAE buffer.

    The compute phase of a pointwise group alternates between buffered
    columns and the weight matrix; both fight for the same sets.  The
    trace: fill the buffer, then interleave one weight walk with the
    buffer consumption, and report the miss rate of the buffer reads.
    """
    if buffer_bytes <= 0 or weight_bytes < 0:
        raise ShapeError("buffer must be positive, weights non-negative")
    cache.reset()
    weight_base = 1 << 26  # distinct address region
    cache.access_range(weight_base, weight_bytes)  # warm weights
    cache.access_range(0, buffer_bytes)            # buffer fill
    # Compute phase: walk weights fully per chunk of buffer (worst
    # case of a column-major kernel), counting only buffer misses.
    chunk = max(cache.line_bytes, buffer_bytes // 8)
    buffer_misses = 0
    buffer_accesses = 0
    offset = 0
    while offset < buffer_bytes:
        n = min(chunk, buffer_bytes - offset)
        before = cache.stats.misses
        cache.access_range(offset, n)
        buffer_misses += cache.stats.misses - before
        buffer_accesses += -(-n // cache.line_bytes)
        cache.access_range(weight_base, weight_bytes)
        offset += n
    if buffer_accesses == 0:
        return 0.0
    return buffer_misses / buffer_accesses


def validate_analytic_model(
    model: CacheModel,
    working_sets: Sequence[int],
    line_bytes: int = 32,
    ways: int = 4,
) -> List[ReplayPoint]:
    """Predicted vs. simulated refetch across working-set sizes.

    Returns one :class:`ReplayPoint` per requested size; callers (and
    the test suite) assert the analytic model brackets the simulated
    eviction behaviour: zero below the usable capacity, rising toward
    1.0 beyond it, monotone in between.
    """
    simulator = SetAssociativeCache(
        capacity_bytes=model.capacity_bytes,
        line_bytes=line_bytes,
        ways=ways,
    )
    points = []
    for ws in working_sets:
        points.append(
            ReplayPoint(
                working_set_bytes=ws,
                analytic_refetch=model.refetch_fraction(ws),
                simulated_refetch=measured_refetch_fraction(simulator, ws),
            )
        )
    return points
