"""On-board timer model used by the per-layer profiler.

The paper's runtime monitoring mechanism "relies on the on-board
timers of the target MCU, which are triggered in-between the layers'
code segments" (Sec. III-B).  A hardware timer counts SYSCLK ticks
through a prescaler, so latency measurements are quantized to the tick
period and wrap at the counter width.  Modelling that quantization
keeps the profiling pipeline honest: the DSE consumes *measured*
latencies, not the model's infinitely precise floats.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ProfilingError


@dataclass(frozen=True)
class TimerConfig:
    """Configuration of one timer peripheral.

    Attributes:
        prescaler: SYSCLK divider feeding the counter (>= 1).
        counter_bits: counter width (16 for most STM32 TIMx, 32 for
            TIM2/TIM5).
    """

    prescaler: int = 1
    counter_bits: int = 32

    def __post_init__(self) -> None:
        if self.prescaler < 1:
            raise ProfilingError("timer prescaler must be >= 1")
        if self.counter_bits not in (16, 32):
            raise ProfilingError("counter_bits must be 16 or 32")


class HardwareTimer:
    """A free-running timer clocked from the SYSCLK.

    Args:
        sysclk_hz: frequency of the clock feeding the timer.
        config: prescaler and counter width.
    """

    def __init__(self, sysclk_hz: float, config: TimerConfig | None = None):
        if sysclk_hz <= 0:
            raise ProfilingError("timer SYSCLK must be positive")
        self.sysclk_hz = sysclk_hz
        self.config = config or TimerConfig()
        self._start_ticks: int | None = None
        self._now_s = 0.0

    @property
    def tick_period_s(self) -> float:
        """Seconds per counter tick."""
        return self.config.prescaler / self.sysclk_hz

    @property
    def max_ticks(self) -> int:
        """Counter wrap value."""
        return 1 << self.config.counter_bits

    def ticks_for(self, duration_s: float) -> int:
        """Ticks elapsed for ``duration_s`` (floor quantization)."""
        if duration_s < 0:
            raise ProfilingError("duration must be >= 0")
        return int(duration_s / self.tick_period_s)

    def advance(self, duration_s: float) -> None:
        """Advance simulated time."""
        if duration_s < 0:
            raise ProfilingError("cannot advance time backwards")
        self._now_s += duration_s

    def start(self) -> None:
        """Latch the current counter value."""
        self._start_ticks = self.ticks_for(self._now_s) % self.max_ticks

    def stop(self) -> float:
        """Return the measured (quantized) duration since :meth:`start`.

        Handles a single counter wrap, like real firmware does.

        Raises:
            ProfilingError: if :meth:`start` was never called.
        """
        if self._start_ticks is None:
            raise ProfilingError("timer stopped before it was started")
        now_ticks = self.ticks_for(self._now_s) % self.max_ticks
        delta = now_ticks - self._start_ticks
        if delta < 0:
            delta += self.max_ticks
        self._start_ticks = None
        return delta * self.tick_period_s

    def measure(self, duration_s: float) -> float:
        """Convenience: measure a known duration with tick quantization."""
        self.start()
        self.advance(duration_s)
        return self.stop()
