"""Event-boundary scenario checkpoints.

A :class:`~repro.scenario.engine.ScenarioEngine` run is a pure
function of its config: every random draw comes from named seeded
streams, the clock is simulated, and the serve tier's admission
decisions are a function of arrival order.  That purity is what makes
checkpointing *exact* rather than approximate -- a checkpoint is the
complete set of mutable state reached after N event dispatches, and
resuming from it replays the remaining events over byte-identical
state, so the resumed run's :class:`~repro.scenario.report.ScenarioReport`
digest equals the uninterrupted run's.  That invariant is enforced in
``tests/scenario/test_checkpoint.py`` and gated in
``benchmarks/bench_scenario.py``.

The snapshot deliberately stores *state dicts*, not live objects with
pipelines inside: governors, oracle twins and fault clocks are rebuilt
deterministically from the config on resume and only their mutable
attributes (battery, thermal, plan, counters, RNG bit-generator
states) are restored.  That keeps checkpoints small, avoids pickling
thread locks, and doubles as a schema the next session can evolve
behind ``version``.

One deliberate exception: ``config`` is pickled whole, and stochastic
arrival models carry their lazily-spawned per-device RNG streams as
instance state -- so the pickle captures the arrival streams exactly
at the boundary, and the resumed engine's ``windows_at`` draws
continue the original sequence without any explicit restore step.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from ..errors import ReproError

#: Bumped on incompatible snapshot-schema changes.
CHECKPOINT_VERSION = 1


@dataclass
class ScenarioCheckpoint:
    """Complete mutable state of a scenario run at an event boundary.

    Attributes:
        version: snapshot schema version.
        config: the (picklable) :class:`ScenarioConfig` the run was
            built from; resume reconstructs the engine from it.
        events_processed: dispatched-event count (informational).
        clock_now: the simulated clock.
        queue_heap / queue_seq: the pending event heap, verbatim.
        churn_rng_state: the churn victim-picker bit-generator state.
        campaign_clocks: per ``(device, stage)`` fault-clock counters
            and per-kind RNG states.
        governors: per-device governor snapshots, in registration
            order (report row order derives from it), each carrying
            the device's pool index so joined devices can be rebuilt.
        twins: per-device oracle-twin snapshots.
        engine: engine-level sets, counters and timelines.
        serve: serve-bridge counters plus admission/token-bucket state.
    """

    config: Any
    version: int = CHECKPOINT_VERSION
    events_processed: int = 0
    clock_now: float = 0.0
    queue_heap: List[Tuple] = field(default_factory=list)
    queue_seq: int = 0
    churn_rng_state: Dict[str, Any] = field(default_factory=dict)
    campaign_clocks: List[Dict[str, Any]] = field(default_factory=list)
    governors: List[Dict[str, Any]] = field(default_factory=list)
    twins: List[Dict[str, Any]] = field(default_factory=list)
    engine: Dict[str, Any] = field(default_factory=dict)
    serve: Dict[str, Any] = field(default_factory=dict)


def save_checkpoint(checkpoint: ScenarioCheckpoint, path: str) -> None:
    """Pickle a checkpoint to ``path`` (atomic rename on same dir)."""
    import os

    blob = pickle.dumps(checkpoint, protocol=pickle.HIGHEST_PROTOCOL)
    tmp = f"{path}.tmp"
    with open(tmp, "wb") as handle:
        handle.write(blob)
    os.replace(tmp, path)


def load_checkpoint(path: str) -> ScenarioCheckpoint:
    """Load and validate a pickled checkpoint.

    Raises:
        ReproError: unreadable file, wrong type, or a snapshot written
            by an incompatible schema version.
    """
    try:
        with open(path, "rb") as handle:
            checkpoint = pickle.load(handle)
    except (OSError, pickle.UnpicklingError, EOFError) as err:
        raise ReproError(f"cannot load checkpoint {path!r}: {err}") from err
    if not isinstance(checkpoint, ScenarioCheckpoint):
        raise ReproError(
            f"{path!r} does not contain a ScenarioCheckpoint"
        )
    if checkpoint.version != CHECKPOINT_VERSION:
        raise ReproError(
            f"checkpoint version {checkpoint.version} is not supported "
            f"(expected {CHECKPOINT_VERSION})"
        )
    return checkpoint
