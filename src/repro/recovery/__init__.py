"""Crash recovery: write-ahead journaling and scenario checkpoints.

Two independent durability mechanisms with one shared discipline --
every byte that crosses a crash boundary is digest-verified:

* :mod:`repro.recovery.journal` -- a truncated-tail-tolerant
  write-ahead journal for the shared plan-cache tier, so a respawned
  worker (or a restarted router) rebuilds its shared state from disk
  instead of starting cold.
* :mod:`repro.recovery.checkpoint` -- event-boundary snapshots of a
  scenario run; resuming from any boundary reproduces the
  uninterrupted run's report byte-identically.
"""

from .checkpoint import (
    CHECKPOINT_VERSION,
    ScenarioCheckpoint,
    load_checkpoint,
    save_checkpoint,
)
from .journal import (
    JournalRecord,
    JournaledSharedCache,
    PlanJournal,
    decode_record,
    encode_record,
    journal_replans,
    read_journal,
    replay_into_cache,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "JournalRecord",
    "JournaledSharedCache",
    "PlanJournal",
    "ScenarioCheckpoint",
    "decode_record",
    "encode_record",
    "journal_replans",
    "load_checkpoint",
    "read_journal",
    "replay_into_cache",
    "save_checkpoint",
]
