"""Digest-addressed write-ahead journal for the serve tier.

The shared plan-cache tier (:mod:`repro.serve.shared_cache`) is the
only cross-worker state the sharded serve layer owns, and it lives in
a ``multiprocessing`` manager -- a process.  When that process (or the
whole router) dies, every published plan is gone and the fleet pays
cold solves for keys it had already answered.  This module closes the
gap with classic write-ahead discipline:

* every shared-cache **publish** (and the request-level index entry
  that lets the router serve degraded hits) is appended to a journal
  *before* the caller proceeds,
* each record is one line of canonical JSON carrying its own sha256,
  so a torn or truncated tail (the crash case) is detected and
  tolerated: replay stops at the first bad record instead of erroring,
* replay is **idempotent** -- plans are deterministic and the tier is
  first-publisher-wins, so re-applying a record (or a duplicate
  record) can never change the rebuilt state.

The journal is append-only and multi-writer safe in the way the serve
tier needs: every record is written with a single ``os.write`` to an
``O_APPEND`` descriptor, so concurrent shard workers never interleave
bytes within a record, and a crash mid-write leaves at most one
truncated tail record.

Record wire format (one JSON line)::

    {"kind": "publish", "data": {...}, "sha256": "<hex>"}

where ``sha256`` is the digest of the canonical encoding of the
record *without* its ``sha256`` field.  Record kinds currently
journaled:

* ``publish`` -- ``{"key": <wire key>, "payload": <plan payload>}``
* ``request`` -- ``{"key": <request key>, "digest": <plan digest>}``
* ``replan``  -- a governor replan decision (device, epoch, verdict)

Unknown kinds are preserved by :func:`read_journal` (forward
compatibility) and skipped by :func:`replay_into_cache`.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..errors import ReproError


def _canonical(data: Dict[str, Any]) -> str:
    """Canonical one-line JSON (sorted keys, no whitespace)."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def _record_digest(kind: str, data: Dict[str, Any]) -> str:
    body = _canonical({"kind": kind, "data": data})
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class JournalRecord:
    """One verified journal entry."""

    kind: str
    data: Dict[str, Any]


def encode_record(kind: str, data: Dict[str, Any]) -> str:
    """One journal line (without the newline), self-digested."""
    return _canonical(
        {
            "kind": kind,
            "data": data,
            "sha256": _record_digest(kind, data),
        }
    )


def decode_record(line: str) -> JournalRecord:
    """Parse and verify one journal line.

    Raises:
        ReproError: unparseable JSON, missing fields, or a sha256 that
            does not match the record body -- the truncated/torn-tail
            signature replay tolerates.
    """
    try:
        raw = json.loads(line)
    except (TypeError, ValueError) as err:
        raise ReproError(f"unparseable journal line: {err}") from err
    if not isinstance(raw, dict):
        raise ReproError("journal record must be a JSON object")
    kind = raw.get("kind")
    data = raw.get("data")
    claimed = raw.get("sha256")
    if not isinstance(kind, str) or not isinstance(data, dict):
        raise ReproError("journal record needs string kind + object data")
    if claimed != _record_digest(kind, data):
        raise ReproError(
            f"journal record sha256 mismatch for kind {kind!r}"
        )
    return JournalRecord(kind=kind, data=data)


class PlanJournal:
    """Append-only journal handle (thread- and process-safe appends).

    The handle is cheap and **picklable** (it carries only the path):
    spawned shard workers each reopen the file ``O_APPEND`` on first
    use, so one journal collects publishes from every worker process.
    """

    def __init__(self, path: str):
        if not path:
            raise ReproError("journal path must be non-empty")
        self.path = str(path)
        self._fd: Optional[int] = None
        self._lock = threading.Lock()

    # -- pickling (the fd and lock are per-process) ------------------------------

    def __getstate__(self) -> Dict[str, Any]:
        return {"path": self.path}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.path = state["path"]
        self._fd = None
        self._lock = threading.Lock()

    def _descriptor(self) -> int:
        if self._fd is None:
            self._fd = os.open(
                self.path,
                os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                0o644,
            )
        return self._fd

    def append(self, kind: str, data: Dict[str, Any]) -> None:
        """Durably append one record (single atomic-append write)."""
        line = encode_record(kind, data).encode("utf-8") + b"\n"
        with self._lock:
            os.write(self._descriptor(), line)

    def close(self) -> None:
        with self._lock:
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None


def read_journal(path: str) -> Tuple[List[JournalRecord], Dict[str, int]]:
    """Every verified record plus read statistics.

    Tolerant by construction: a missing file reads as empty, and the
    scan stops at the first record that fails verification (the
    truncated tail a crash mid-append leaves).  A bad record *followed
    by* good ones still stops the scan -- after a torn write nothing
    downstream of it can be trusted to be complete.

    Returns:
        ``(records, stats)`` where stats counts ``read`` (verified),
        ``dropped_tail`` (lines at/after the first bad record) and
        ``bytes`` (file size).
    """
    records: List[JournalRecord] = []
    stats = {"read": 0, "dropped_tail": 0, "bytes": 0}
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except FileNotFoundError:
        return records, stats
    stats["bytes"] = len(raw)
    lines = raw.split(b"\n")
    for index, line in enumerate(lines):
        text = line.decode("utf-8", errors="replace").strip()
        if not text:
            continue
        try:
            records.append(decode_record(text))
        except ReproError:
            stats["dropped_tail"] = sum(
                1 for rest in lines[index:] if rest.strip()
            )
            break
        stats["read"] += 1
    return records, stats


def replay_into_cache(
    path: str, cache: Any, journal_replans: bool = False
) -> Dict[str, int]:
    """Rebuild a shared-cache tier from a journal.

    Applies ``publish`` and ``request`` records in order through the
    tier's raw (wire-key) surface; payload digests are re-verified by
    the tier itself on publish, so a journal record whose payload was
    tampered with is dropped rather than served.  First-publisher-wins
    makes the whole pass idempotent.

    Returns:
        replay statistics: records ``read``, publishes ``replayed``,
        request-index entries ``requests``, records ``skipped``
        (unknown kind or failed verification) and the journal's
        ``dropped_tail`` count.
    """
    records, stats = read_journal(path)
    replayed = requests = skipped = 0
    for record in records:
        if record.kind == "publish":
            key = record.data.get("key")
            payload = record.data.get("payload")
            if not isinstance(key, str) or not isinstance(payload, dict):
                skipped += 1
                continue
            try:
                cache.publish_raw(key, payload)
            except ReproError:
                skipped += 1  # tampered payload: digest mismatch
                continue
            replayed += 1
        elif record.kind == "request":
            key = record.data.get("key")
            digest = record.data.get("digest")
            if not isinstance(key, str) or not isinstance(digest, str):
                skipped += 1
                continue
            cache.register_request_raw(key, digest)
            requests += 1
        else:
            skipped += 1
    if replayed or requests:
        cache.note_replayed(replayed)
    return {
        "read": stats["read"],
        "dropped_tail": stats["dropped_tail"],
        "replayed": replayed,
        "requests": requests,
        "skipped": skipped,
    }


class JournaledSharedCache:
    """Write-ahead wrapper around a shared-cache tier.

    Journals every publish and request-index registration *before*
    they land in the tier (write-ahead: a crash after the append but
    before the publish loses nothing -- replay re-applies it; a crash
    before the append loses only work that was never acknowledged).
    Lookups pass straight through.

    Picklable whenever the inner tier is, so the router hands one of
    these to every spawned worker and the journal collects publishes
    fleet-wide.
    """

    def __init__(self, inner: Any, journal: PlanJournal):
        self.inner = inner
        self.journal = journal

    # pass-throughs --------------------------------------------------------------

    def lookup(self, key: Tuple) -> Optional[Dict[str, Any]]:
        return self.inner.lookup(key)

    def lookup_request(self, request_key: str) -> Optional[Dict[str, Any]]:
        return self.inner.lookup_request(request_key)

    def stats(self) -> Dict[str, Any]:
        stats = self.inner.stats()
        stats["journal"] = self.journal.path
        return stats

    def note_replayed(self, count: int = 1) -> None:
        self.inner.note_replayed(count)

    # journaled writes -----------------------------------------------------------

    def publish(self, key: Tuple, payload: Dict[str, Any]) -> str:
        from ..serve.shared_cache import wire_key

        wk = wire_key(key)
        self.journal.append(
            "publish", {"key": wk, "payload": dict(payload)}
        )
        return self.inner.publish_raw(wk, payload)

    def publish_raw(self, wk: str, payload: Dict[str, Any]) -> str:
        self.journal.append(
            "publish", {"key": wk, "payload": dict(payload)}
        )
        return self.inner.publish_raw(wk, payload)

    def register_request(self, request_key: str, digest: str) -> None:
        self.journal.append(
            "request", {"key": request_key, "digest": digest}
        )
        self.inner.register_request_raw(request_key, digest)

    def register_request_raw(self, request_key: str, digest: str) -> None:
        self.register_request(request_key, digest)


def journal_replans(
    journal: Optional[PlanJournal], entries: Iterable[Dict[str, Any]]
) -> int:
    """Append governor replan decisions (no-op without a journal)."""
    if journal is None:
        return 0
    count = 0
    for entry in entries:
        journal.append("replan", dict(entry))
        count += 1
    return count
