"""Energy accounting over execution traces.

The DVFS runtime and the baselines both report their results through an
:class:`EnergyAccount`: a categorized ledger of (duration, power)
intervals.  Keeping the ledger categorized -- compute, memory, clock
switching, idle -- lets the benchmarks answer the paper's analysis
questions directly ("how much energy went to switching overhead?",
"how much did the baseline burn idling at 216 MHz?").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from ..errors import TraceError


class EnergyCategory(enum.Enum):
    """Where a slice of energy was spent."""

    COMPUTE = "compute"
    MEMORY = "memory"
    SWITCH = "switch"
    IDLE = "idle"
    OTHER = "other"


@dataclass(frozen=True)
class EnergyInterval:
    """One homogeneous interval of the execution.

    Attributes:
        duration_s: interval length in seconds (>= 0).
        power_w: board power during the interval (>= 0).
        category: ledger category.
        label: optional free-form tag (e.g. the layer name) used by
            per-layer breakdowns.
        config: the clock configuration active during the interval,
            when the producer recorded it (the DVFS runtime does).
            Interval *durations* depend only on the timing model, so a
            (config, state)-tagged trace can be re-priced against a
            different board's power model -- the fleet replay cache
            uses this to execute a plan once and price it for every
            device.
        state: the :class:`~repro.power.model.PowerState` the power
            was computed for, when recorded.
    """

    duration_s: float
    power_w: float
    category: EnergyCategory
    label: str = ""
    config: object = None
    state: object = None

    def __post_init__(self) -> None:
        if self.duration_s < 0:
            raise TraceError(
                f"interval duration must be >= 0, got {self.duration_s}"
            )
        if self.power_w < 0:
            raise TraceError(f"interval power must be >= 0, got {self.power_w}")

    @property
    def energy_j(self) -> float:
        """Energy of the interval in joules."""
        return self.duration_s * self.power_w


@dataclass
class EnergyAccount:
    """A categorized energy ledger.

    Intervals are appended in execution order, so the account doubles
    as a (piecewise-constant) power trace that the INA219 sensor model
    can sample.
    """

    intervals: List[EnergyInterval] = field(default_factory=list)

    def add(
        self,
        duration_s: float,
        power_w: float,
        category: EnergyCategory,
        label: str = "",
        config: object = None,
        state: object = None,
    ) -> None:
        """Append one interval; zero-duration intervals are dropped."""
        if duration_s == 0.0:
            return
        self.intervals.append(
            EnergyInterval(
                duration_s=duration_s,
                power_w=power_w,
                category=category,
                label=label,
                config=config,
                state=state,
            )
        )

    def extend(self, other: "EnergyAccount") -> None:
        """Append every interval of ``other`` (in order)."""
        self.intervals.extend(other.intervals)

    @property
    def total_energy_j(self) -> float:
        """Total energy across all intervals."""
        return sum(interval.energy_j for interval in self.intervals)

    @property
    def total_time_s(self) -> float:
        """Total wall-clock time across all intervals."""
        return sum(interval.duration_s for interval in self.intervals)

    @property
    def average_power_w(self) -> float:
        """Time-weighted mean power (0.0 for an empty account)."""
        total_time = self.total_time_s
        if total_time == 0.0:
            return 0.0
        return self.total_energy_j / total_time

    def energy_by_category(self) -> Dict[EnergyCategory, float]:
        """Energy per category; categories never seen are absent."""
        breakdown: Dict[EnergyCategory, float] = {}
        for interval in self.intervals:
            breakdown[interval.category] = (
                breakdown.get(interval.category, 0.0) + interval.energy_j
            )
        return breakdown

    def time_by_category(self) -> Dict[EnergyCategory, float]:
        """Wall-clock time per category."""
        breakdown: Dict[EnergyCategory, float] = {}
        for interval in self.intervals:
            breakdown[interval.category] = (
                breakdown.get(interval.category, 0.0) + interval.duration_s
            )
        return breakdown

    def energy_by_label(self) -> Dict[str, float]:
        """Energy per label (e.g. per layer); unlabeled under ``""``."""
        breakdown: Dict[str, float] = {}
        for interval in self.intervals:
            breakdown[interval.label] = (
                breakdown.get(interval.label, 0.0) + interval.energy_j
            )
        return breakdown

    def as_power_trace(self) -> List[EnergyInterval]:
        """The ordered piecewise-constant power trace (read-only view)."""
        return list(self.intervals)


def merge_accounts(accounts: Iterable[EnergyAccount]) -> EnergyAccount:
    """Concatenate several accounts into a new one (inputs untouched)."""
    merged = EnergyAccount()
    for account in accounts:
        merged.extend(account)
    return merged
