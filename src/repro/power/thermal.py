"""Thermal model: temperature-dependent leakage feedback.

The paper motivates its measurement methodology with
temperature-induced power fluctuations (Sec. IV) and cites
leakage-aware DVFS (Jejurikar et al. [25]) as a reason DVFS is not
straightforward: running slower lengthens execution, raising the
leakage energy, and leakage itself grows with die temperature, which
grows with dissipated power.  This module closes that loop as a
first-order lumped RC model:

    C_th * dT/dt = P(t) - (T - T_ambient) / R_th
    leakage(T)   = leakage(T_ref) * exp((T - T_ref) / T_slope)

:func:`thermal_replay` re-integrates an execution trace with the
feedback active, reporting the temperature trajectory and the
leakage-corrected energy.  Benchmark E13 uses it to check the paper's
conclusions survive the feedback the simple energy model ignores.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from ..errors import PowerModelError
from .energy import EnergyInterval


@dataclass(frozen=True)
class ThermalModelParams:
    """Lumped thermal network of the package + board.

    Attributes:
        r_th_c_per_w: junction-to-ambient thermal resistance.  ~40 C/W
            for an LQFP208 with board copper.
        c_th_j_per_c: thermal capacitance; with R_th this sets the
            thermal time constant (~ seconds for a small package).
        t_ambient_c: ambient temperature.
        t_ref_c: temperature at which the power model's leakage
            constant was calibrated.
        t_slope_c: exponential leakage slope; leakage doubles roughly
            every ``t_slope * ln(2)`` degrees (~20-30 C for 90 nm-class
            silicon).
        leakage_ref_w: the leakage power at ``t_ref_c`` (the power
            model's ``p_mcu_leakage_w``).
    """

    r_th_c_per_w: float = 40.0
    c_th_j_per_c: float = 0.15
    t_ambient_c: float = 25.0
    t_ref_c: float = 25.0
    t_slope_c: float = 35.0
    leakage_ref_w: float = 0.008

    def __post_init__(self) -> None:
        if self.r_th_c_per_w <= 0 or self.c_th_j_per_c <= 0:
            raise PowerModelError("thermal R and C must be positive")
        if self.t_slope_c <= 0:
            raise PowerModelError("t_slope_c must be positive")
        if self.leakage_ref_w < 0:
            raise PowerModelError("leakage_ref_w must be >= 0")

    @property
    def time_constant_s(self) -> float:
        """Thermal RC time constant."""
        return self.r_th_c_per_w * self.c_th_j_per_c

    def leakage_at(self, temperature_c: float) -> float:
        """Leakage power at a junction temperature."""
        return self.leakage_ref_w * math.exp(
            (temperature_c - self.t_ref_c) / self.t_slope_c
        )

    def temperature_step(
        self, temperature_c: float, power_w: float, dt_s: float
    ) -> float:
        """One explicit-Euler step of the RC model.

        The fleet governor integrates device temperature window by
        window with this helper (a QoS window is far shorter than the
        thermal time constant, so one step per window is accurate).
        """
        if dt_s < 0:
            raise PowerModelError("dt_s must be >= 0")
        dT = (
            power_w
            - (temperature_c - self.t_ambient_c) / self.r_th_c_per_w
        ) * dt_s / self.c_th_j_per_c
        return temperature_c + dT


@dataclass
class ThermalReplayResult:
    """Outcome of re-integrating a trace with thermal feedback."""

    energy_j: float
    baseline_energy_j: float
    peak_temperature_c: float
    final_temperature_c: float
    temperatures_c: List[float]

    @property
    def leakage_correction(self) -> float:
        """Fractional energy change caused by the feedback."""
        if self.baseline_energy_j == 0:
            return 0.0
        return self.energy_j / self.baseline_energy_j - 1.0


def steady_state_temperature(
    average_power_w: float, params: ThermalModelParams | None = None
) -> float:
    """Junction temperature of a sustained workload.

    Solves the RC model's fixed point ``T = T_amb + P(T) * R_th`` with
    the leakage feedback included (a few fixed-point iterations
    converge for realistic parameters).

    Raises:
        PowerModelError: if the feedback diverges (thermal runaway for
            the given operating point).
    """
    params = params or ThermalModelParams()
    base = average_power_w - params.leakage_ref_w
    temperature = params.t_ambient_c
    for _ in range(100):
        power = base + params.leakage_at(temperature)
        updated = params.t_ambient_c + power * params.r_th_c_per_w
        if abs(updated - temperature) < 1e-9:
            return updated
        if updated > 300.0:
            raise PowerModelError(
                "thermal runaway: leakage feedback diverges at "
                f"{average_power_w * 1e3:.0f} mW average power"
            )
        temperature = updated
    return temperature


def sustained_energy_correction(
    average_power_w: float, params: ThermalModelParams | None = None
) -> float:
    """Fractional energy increase of a sustained workload vs. the
    calibrated reference temperature.

    This is the long-run limit of :func:`thermal_replay`: once the die
    reaches its steady-state temperature, leakage exceeds the
    calibrated reference value by a constant factor and total power
    grows accordingly.
    """
    params = params or ThermalModelParams()
    t_ss = steady_state_temperature(average_power_w, params)
    extra_leakage = params.leakage_at(t_ss) - params.leakage_ref_w
    if average_power_w == 0:
        return 0.0
    return extra_leakage / average_power_w


def thermal_replay(
    trace: Sequence[EnergyInterval],
    params: ThermalModelParams | None = None,
    max_step_s: float = 1e-3,
    initial_temperature_c: float | None = None,
) -> ThermalReplayResult:
    """Re-integrate a power trace with temperature-dependent leakage.

    Each interval's power is split into its (temperature-independent)
    recorded value minus the calibrated reference leakage, plus the
    temperature-dependent leakage evaluated along the trajectory.  The
    ODE is integrated explicitly with sub-steps capped at
    ``max_step_s`` (well below the thermal time constant).

    Args:
        trace: ordered piecewise-constant power intervals.
        params: thermal network; defaults match the default power
            model's leakage constant.
        max_step_s: integration sub-step bound.
        initial_temperature_c: starting junction temperature
            (ambient if omitted).

    Returns:
        Energy with feedback, the uncorrected energy, and the
        temperature trajectory (one sample per sub-step).
    """
    params = params or ThermalModelParams()
    if max_step_s <= 0:
        raise PowerModelError("max_step_s must be positive")
    temperature = (
        initial_temperature_c
        if initial_temperature_c is not None
        else params.t_ambient_c
    )
    energy = 0.0
    baseline_energy = 0.0
    peak = temperature
    trajectory: List[float] = [temperature]
    for interval in trace:
        baseline_energy += interval.energy_j
        remaining = interval.duration_s
        base_power = interval.power_w - params.leakage_ref_w
        while remaining > 0:
            dt = min(max_step_s, remaining)
            power = base_power + params.leakage_at(temperature)
            energy += power * dt
            dT = (
                power
                - (temperature - params.t_ambient_c) / params.r_th_c_per_w
            ) * dt / params.c_th_j_per_c
            temperature += dT
            peak = max(peak, temperature)
            remaining -= dt
        trajectory.append(temperature)
    return ThermalReplayResult(
        energy_j=energy,
        baseline_energy_j=baseline_energy,
        peak_temperature_c=peak,
        final_temperature_c=temperature,
        temperatures_c=trajectory,
    )
