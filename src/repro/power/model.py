"""Parametric board power model for the STM32F767ZI Nucleo.

The paper measures whole-board power with an INA219 sensor.  We model
board power as a sum of physically-motivated terms:

    P = P_board_static + P_mcu_leakage
      + activity * k_core * f_SYSCLK          (core + bus dynamic power)
      + [PLL on]  * (P_pll_base + k_vco * f_VCO)
      + k_hse * f_HSE + [HSI on] * P_hsi      (oscillators)

The structure -- not just the constants -- is what reproduces the
paper's observations:

* **Fig. 2** (iso-frequency power gaps): two configurations with the
  same SYSCLK can require different VCO frequencies (e.g. via a
  different PLLP post-divider) or different oscillators; the
  ``k_vco * f_VCO`` term makes the faster-VCO alternative measurably
  more expensive, which is exactly why the paper fixes PLLP to its
  minimum and selects the minimum-power tuple per frequency.
* **LFO cheapness** (Sec. III-B): HSE-direct operation powers the PLL
  down entirely, so memory-bound segments parked at 50 MHz drop both
  the core-dynamic *and* the whole PLL/VCO term.
* **Idle vs. clock-gated idle** (Sec. IV baselines): plain idling keeps
  every clock running (low activity, full PLL term), while clock
  gating deactivates unused clocks and the voltage regulator, leaving
  only a small floor -- the gap that makes the TinyEngine+gating
  baseline competitive.
* **Voltage scaling** (the V of DVFS): the F7's regulator runs VOS
  scale 3 up to 144 MHz, scale 2 up to 168 MHz, scale 1 up to 180 MHz
  and needs over-drive for 216 MHz.  Dynamic power scales with
  V^2 * f, so energy per cycle is *U-shaped* in frequency: below the
  sweet spot the fixed terms dominate (leakage over longer runtimes),
  above it the voltage penalty does.  This is what gives each layer a
  genuine energy-optimal operating frequency and spreads the Fig. 6
  frequency distribution across the grid.

Default constants were calibrated once against the paper's reported
ratios (see ``tests/test_calibration.py``); they are deliberately easy
to override for sensitivity studies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional, Tuple

from ..errors import PowerModelError
from ..clock.configs import ClockConfig, SysclkSource


class PowerState(enum.Enum):
    """Operating state of the MCU, determining the activity factor."""

    #: Core executing arithmetic (compute-bound segment).
    ACTIVE_COMPUTE = "active_compute"
    #: Core mostly stalled on memory (memory-bound segment).
    ACTIVE_MEMORY = "active_memory"
    #: WFI-style idle with all clocks running (TinyEngine baseline idle).
    IDLE = "idle"
    #: Clock-gated idle: unused clocks and the regulator deactivated.
    IDLE_GATED = "idle_gated"
    #: STOP-mode deep sleep: SRAM retained, everything else off.
    STOP = "stop"
    #: Stalled while a clock switch (PLL re-lock) completes.
    SWITCHING = "switching"
    #: A layer running on an NPU offload engine.  Priced by the board's
    #: :class:`~repro.mcu.npu.NPUModel`, not by this model: the NPU has
    #: its own clock domain and its power does not track the SYSCLK, so
    #: :meth:`BoardPowerModel.power` rejects this state.
    NPU_ACTIVE = "npu_active"


@dataclass(frozen=True)
class PowerModelParams:
    """Constants of the board power model.

    Attributes:
        p_board_static_w: board overhead that never goes away (LDO,
            ST-LINK, pull-ups).
        p_mcu_leakage_w: MCU leakage while powered (not gated).
        k_core_w_per_hz: core+bus dynamic power per SYSCLK hertz at
            activity 1.0.
        p_pll_base_w: fixed cost of keeping the PLL block powered.
        k_vco_w_per_hz: VCO dynamic power per hertz of VCO frequency --
            the term behind the Fig. 2 iso-frequency gaps.
        k_hse_w_per_hz: HSE oscillator/driver power per hertz.
        p_hsi_w: HSI RC oscillator power when enabled (higher than the
            HSE's, which is why the paper excludes the HSI).
        activity_compute: activity factor of compute-bound execution.
        activity_memory: activity factor while stalled on memory.
        activity_idle: activity factor of WFI idle (clocks still toggle
            the bus matrix and peripherals).
        activity_switching: activity factor while stalled in a clock
            switch.
        p_gated_w: total board power in the clock-gated idle state
            (replaces every MCU term; board static remains).
        p_stop_w: MCU power in STOP-mode deep sleep (SRAM retention
            only; board static remains).
        stop_wakeup_s: latency to wake from STOP mode (regulator and
            oscillator restart, before any PLL re-lock).
        vos_steps: ((max_sysclk_hz, core_voltage_v), ...) regulator
            steps, ascending; the runtime programs the lowest scale
            that supports the target SYSCLK (RM0410 VOS scales plus
            over-drive for 216 MHz).
        v_ref: voltage at which the ``k_*`` dynamic constants were
            calibrated; dynamic power scales with ``(V/v_ref)^2``.
    """

    p_board_static_w: float = 0.020
    p_mcu_leakage_w: float = 0.008
    k_core_w_per_hz: float = 1.0e-9
    p_pll_base_w: float = 0.010
    k_vco_w_per_hz: float = 3.5e-10
    k_hse_w_per_hz: float = 1.0e-10
    p_hsi_w: float = 0.019
    activity_compute: float = 1.0
    activity_memory: float = 0.42
    activity_idle: float = 0.18
    activity_switching: float = 0.20
    p_gated_w: float = 0.012
    p_stop_w: float = 0.0015
    stop_wakeup_s: float = 110e-6
    vos_steps: Tuple[Tuple[float, float], ...] = (
        (96e6, 1.08),
        (144e6, 1.20),
        (168e6, 1.23),
        (180e6, 1.26),
        (216e6, 1.32),
    )
    v_ref: float = 1.32

    def __post_init__(self) -> None:
        for name in (
            "p_board_static_w",
            "p_mcu_leakage_w",
            "k_core_w_per_hz",
            "p_pll_base_w",
            "k_vco_w_per_hz",
            "k_hse_w_per_hz",
            "p_hsi_w",
            "p_gated_w",
            "p_stop_w",
            "stop_wakeup_s",
        ):
            if getattr(self, name) < 0:
                raise PowerModelError(f"{name} must be >= 0")
        for name in (
            "activity_compute",
            "activity_memory",
            "activity_idle",
            "activity_switching",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise PowerModelError(f"{name} must be in [0, 1], got {value}")
        if not self.vos_steps:
            raise PowerModelError("vos_steps must not be empty")
        if self.v_ref <= 0:
            raise PowerModelError("v_ref must be positive")
        previous = 0.0
        for max_hz, volts in self.vos_steps:
            if max_hz <= previous:
                raise PowerModelError("vos_steps must ascend in frequency")
            if volts <= 0:
                raise PowerModelError("vos voltages must be positive")
            previous = max_hz

    def scaled(self, **overrides: float) -> "PowerModelParams":
        """Return a copy with some constants replaced (for sweeps)."""
        return replace(self, **overrides)

    def core_voltage(self, sysclk_hz: float) -> float:
        """Regulator voltage programmed for a given SYSCLK.

        The lowest VOS scale whose frequency ceiling covers the target;
        frequencies beyond the last step raise, mirroring hardware that
        simply cannot clock that fast.

        Raises:
            PowerModelError: if the frequency exceeds every VOS step.
        """
        for max_hz, volts in self.vos_steps:
            if sysclk_hz <= max_hz:
                return volts
        raise PowerModelError(
            f"SYSCLK {sysclk_hz / 1e6:.1f} MHz exceeds every VOS step"
        )

    def dynamic_scale(self, sysclk_hz: float) -> float:
        """``(V/V_ref)^2`` factor applied to the dynamic power terms."""
        v = self.core_voltage(sysclk_hz)
        return (v / self.v_ref) ** 2


class BoardPowerModel:
    """Maps (clock configuration, power state) to board power in watts."""

    def __init__(self, params: Optional[PowerModelParams] = None):
        self.params = params or PowerModelParams()

    # -- state-specific helpers -------------------------------------------

    def power(self, config: ClockConfig, state: PowerState) -> float:
        """Board power for ``config`` in ``state``.

        The clock-gated state ignores the configuration: gating shuts
        the clock tree down regardless of what it was running.
        """
        p = self.params
        if state is PowerState.NPU_ACTIVE:
            raise PowerModelError(
                "NPU intervals are priced by the board's NPUModel, not "
                "the SYSCLK power model"
            )
        if state is PowerState.IDLE_GATED:
            return p.p_board_static_w + p.p_gated_w
        if state is PowerState.STOP:
            return p.p_board_static_w + p.p_stop_w
        activity = {
            PowerState.ACTIVE_COMPUTE: p.activity_compute,
            PowerState.ACTIVE_MEMORY: p.activity_memory,
            PowerState.IDLE: p.activity_idle,
            PowerState.SWITCHING: p.activity_switching,
        }[state]
        v2 = p.dynamic_scale(config.sysclk_hz)
        total = p.p_board_static_w + p.p_mcu_leakage_w
        total += activity * p.k_core_w_per_hz * config.sysclk_hz * v2
        if config.uses_pll:
            # The PLL/VCO dynamic current also rides the core rail, so
            # the same V^2 factor applies (approximation: the regulator
            # scale is chosen by the SYSCLK this PLL produces).
            total += p.p_pll_base_w + p.k_vco_w_per_hz * config.vco_hz * v2
        if config.source is SysclkSource.HSI:
            total += p.p_hsi_w
        else:
            total += p.k_hse_w_per_hz * config.hse_hz
        return total

    def active_power(self, config: ClockConfig) -> float:
        """Compute-bound board power (the Fig. 2 measurement point)."""
        return self.power(config, PowerState.ACTIVE_COMPUTE)

    def memory_power(self, config: ClockConfig) -> float:
        """Board power while stalled on memory."""
        return self.power(config, PowerState.ACTIVE_MEMORY)

    def idle_power(self, config: ClockConfig) -> float:
        """WFI idle power with all clocks running."""
        return self.power(config, PowerState.IDLE)

    def gated_power(self) -> float:
        """Clock-gated idle power (configuration independent)."""
        return self.power_gated()

    def power_gated(self) -> float:
        """Alias kept for symmetry with the other state helpers."""
        return self.params.p_board_static_w + self.params.p_gated_w

    def stop_power(self) -> float:
        """STOP-mode deep-sleep power (configuration independent)."""
        return self.params.p_board_static_w + self.params.p_stop_w

    def switching_power(self, config: ClockConfig) -> float:
        """Power while stalled waiting for a clock switch.

        The PLL term is charged because during a re-lock the PLL block
        is powered and hunting for lock.
        """
        return self.power(config, PowerState.SWITCHING)
