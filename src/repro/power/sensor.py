"""INA219 power-sensor model.

The paper measures board power with a TI INA219 current/voltage monitor
and explicitly compensates temperature-induced drift by comparing every
measurement against the baseline model's power *at the corresponding
timestamp* (Sec. IV).  This module reproduces that measurement
pipeline:

* the sensor samples a piecewise-constant power trace at a fixed
  conversion period,
* quantizes each sample to the sensor's power LSB,
* adds zero-mean Gaussian measurement noise, and
* optionally super-imposes a slow, deterministic thermal drift -- the
  disturbance the paper's differential methodology exists to cancel.

:func:`differential_energy` implements that methodology: measure the
trace of interest and the baseline trace under the *same* drift
process and report drift-cancelled values.  The unit tests demonstrate
that absolute readings are biased under drift while differential
readings are not.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..errors import PowerModelError, SensorReadError
from .energy import EnergyInterval


@dataclass(frozen=True)
class INA219Config:
    """Sensor configuration.

    Attributes:
        sample_period_s: conversion period; the INA219's 12-bit ADC in
            continuous shunt+bus mode produces a sample roughly every
            1 ms with default averaging.
        power_lsb_w: power register LSB.  With a 0.1 ohm shunt and the
            usual calibration this lands near 2 mW per bit; we default
            to a finer 0.5 mW to reflect the paper's tuned calibration.
        noise_std_w: standard deviation of the additive measurement
            noise.
        drift_amplitude_w: amplitude of the thermal drift component.
        drift_period_s: period of the (slow) thermal drift oscillation.
        seed: RNG seed so measurements are reproducible.
    """

    sample_period_s: float = 1e-3
    power_lsb_w: float = 0.5e-3
    noise_std_w: float = 1.0e-3
    drift_amplitude_w: float = 0.0
    drift_period_s: float = 120.0
    seed: int = 0x1219

    def __post_init__(self) -> None:
        if self.sample_period_s <= 0:
            raise PowerModelError("sample_period_s must be > 0")
        if self.power_lsb_w <= 0:
            raise PowerModelError("power_lsb_w must be > 0")
        if self.noise_std_w < 0 or self.drift_amplitude_w < 0:
            raise PowerModelError("noise/drift magnitudes must be >= 0")


@dataclass(frozen=True)
class PowerSample:
    """One sensor reading.

    Attributes:
        time_s: absolute sample timestamp.
        power_w: quantized, noisy power reading.
        duration_s: trace time this sample accounts for.  Full samples
            cover one conversion period; the final sample of a trace
            whose duration is not a period multiple covers only the
            remaining tail.  ``None`` (legacy) means one full period.
    """

    time_s: float
    power_w: float
    duration_s: float | None = None


class INA219Sensor:
    """Samples piecewise-constant power traces like the real sensor.

    Args:
        config: sensor configuration.
        seed: overrides ``config.seed`` as the noise-stream seed.
            Accepts anything :func:`numpy.random.default_rng` does --
            in particular a :class:`numpy.random.SeedSequence`, which
            is how the fleet hands every device its own independent
            child stream instead of N sensors all replaying the one
            default-seeded sequence.  The override is remembered, so
            :meth:`reset` restores *this* device's stream.
        fault_clock: optional fault-decision source (an object with
            ``sensor_nack()`` / ``sensor_stuck()`` / ``sensor_dropout()``
            hooks, see :class:`repro.faults.plan.FaultClock`).  With
            ``None`` (the default) every reading is byte-identical to
            the fault-free sensor.  Faults model the three INA219
            failure modes seen in the field: the I2C transaction NACKs
            (whole read lost, :class:`~repro.errors.SensorReadError`),
            the power register freezes (every sample of the train
            repeats the first conversion), and individual conversions
            are dropped (gaps in the train; energy estimation weights
            by covered duration, so consumers see reduced coverage
            rather than silently biased energy).
    """

    def __init__(
        self,
        config: INA219Config | None = None,
        seed=None,
        fault_clock=None,
    ):
        self.config = config or INA219Config()
        self._seed = self.config.seed if seed is None else seed
        self._rng = np.random.default_rng(self._seed)
        self.fault_clock = fault_clock

    def reset(self) -> None:
        """Re-seed the noise generator (drift is deterministic in time)."""
        self._rng = np.random.default_rng(self._seed)

    def _drift(self, time_s: float) -> float:
        cfg = self.config
        if cfg.drift_amplitude_w == 0.0:
            return 0.0
        return cfg.drift_amplitude_w * math.sin(
            2.0 * math.pi * time_s / cfg.drift_period_s
        )

    def measure(
        self, trace: Sequence[EnergyInterval], start_time_s: float = 0.0
    ) -> List[PowerSample]:
        """Sample a power trace.

        Args:
            trace: ordered piecewise-constant power intervals.
            start_time_s: absolute time at which the trace begins; the
                thermal drift is a function of absolute time, so two
                traces measured at different times see different drift.

        Returns:
            One :class:`PowerSample` per conversion period.  Each
            reading is the trace's average power over the conversion
            window (the ADC integrates over the window, it does not
            point-sample), quantized and noisy, timestamped at the
            window midpoint.  A trace whose total duration is not a
            multiple of the period gets one final clamped sample
            covering (and weighted by, via ``duration_s``) only the
            remaining tail, so no trace time is silently dropped.

        Raises:
            SensorReadError: when the fault clock NACKs the I2C
                transaction (the whole read is lost; callers decide
                whether to retry, skip the epoch or quarantine).
        """
        fault = self.fault_clock
        if fault is not None and fault.sensor_nack():
            raise SensorReadError(
                "INA219 read failed: I2C transaction NACKed"
            )
        stuck = fault is not None and fault.sensor_stuck()
        stuck_power: float | None = None
        cfg = self.config
        total = sum(interval.duration_s for interval in trace)
        # Ceil with an epsilon so an exact multiple of the period does
        # not grow a phantom sample out of float dust (0.05 / 1e-3 is
        # 50.000000000000007 in binary floats).
        n_samples = max(1, math.ceil(total / cfg.sample_period_s - 1e-9))
        samples: List[PowerSample] = []
        # Cumulative boundaries and energies so each conversion window
        # can integrate the trace in O(1) amortized.
        boundaries: List[float] = []
        prefix_energy: List[float] = [0.0]
        acc_t = 0.0
        acc_e = 0.0
        for interval in trace:
            acc_t += interval.duration_s
            acc_e += interval.duration_s * interval.power_w
            boundaries.append(acc_t)
            prefix_energy.append(acc_e)
        idx = 0

        def energy_to(t: float) -> float:
            """Trace energy over [0, t] (t never decreases across calls)."""
            nonlocal idx
            while idx < len(boundaries) - 1 and t > boundaries[idx]:
                idx += 1
            start = boundaries[idx - 1] if idx else 0.0
            power = trace[idx].power_w if trace else 0.0
            return prefix_energy[idx] + (t - start) * power

        window_energy = 0.0
        for k in range(n_samples):
            window_start = k * cfg.sample_period_s
            duration = min(cfg.sample_period_s, max(0.0, total - window_start))
            t_rel = min(window_start + 0.5 * duration, total)
            window_end_energy = energy_to(min(window_start + duration, total))
            # The ADC integrates the shunt voltage over the conversion
            # window, so the true reading is the window-average power,
            # not the instantaneous power at one point -- point
            # sampling aliases against DAE traces whose LFO/HFO phase
            # alternation is commensurate with the period.
            if duration > 0:
                true_power = (window_end_energy - window_energy) / duration
            else:
                true_power = trace[idx].power_w if trace else 0.0
            window_energy = window_end_energy
            raw = (
                true_power
                + self._drift(start_time_s + t_rel)
                + float(self._rng.normal(0.0, cfg.noise_std_w))
            )
            quantized = round(raw / cfg.power_lsb_w) * cfg.power_lsb_w
            # Fault hooks run after the noise draw so the underlying
            # noise stream is identical with and without faults.
            if fault is not None and fault.sensor_dropout():
                continue  # conversion lost: a gap in the train
            power = max(0.0, quantized)
            if stuck:
                if stuck_power is None:
                    stuck_power = power  # register froze on this value
                else:
                    power = stuck_power
            samples.append(
                PowerSample(
                    time_s=start_time_s + t_rel,
                    power_w=power,
                    duration_s=duration,
                )
            )
        return samples

    def covered_duration_s(self, samples: Sequence[PowerSample]) -> float:
        """Trace time a sample train accounts for."""
        return sum(
            s.duration_s if s.duration_s is not None else self.config.sample_period_s
            for s in samples
        )

    def estimate_energy(self, samples: Sequence[PowerSample]) -> float:
        """Rectangle-rule energy estimate from a sample train.

        Each sample is weighted by the trace time it covers, so the
        final clamped sample of a non-aligned trace contributes its
        true tail duration rather than a full conversion period.
        """
        period = self.config.sample_period_s
        return sum(
            s.power_w * (s.duration_s if s.duration_s is not None else period)
            for s in samples
        )

    def estimate_average_power(self, samples: Sequence[PowerSample]) -> float:
        """Mean of the sample train (0.0 when empty)."""
        if not samples:
            return 0.0
        return sum(s.power_w for s in samples) / len(samples)


def differential_energy(
    sensor: INA219Sensor,
    trace: Sequence[EnergyInterval],
    baseline_trace: Sequence[EnergyInterval],
    baseline_true_energy_j: float,
    start_time_s: float = 0.0,
) -> float:
    """Drift-compensated energy estimate (the paper's methodology).

    Both the trace under test and the baseline trace are measured under
    the same thermal-drift process at the same absolute timestamps.
    The drift bias estimated on the baseline (measured minus known
    baseline energy, rated over the measured duration) is subtracted
    from the measurement of the trace under test.

    Args:
        sensor: the sensor (its drift applies to both measurements).
        trace: power trace under test.
        baseline_trace: power trace of the baseline input model.
        baseline_true_energy_j: the baseline's known reference energy.
        start_time_s: absolute start time of both measurements.

    Returns:
        The drift-compensated energy estimate for ``trace`` in joules.
    """
    test_samples = sensor.measure(trace, start_time_s=start_time_s)
    base_samples = sensor.measure(baseline_trace, start_time_s=start_time_s)
    base_duration = sensor.covered_duration_s(base_samples)
    if base_duration == 0.0:
        return sensor.estimate_energy(test_samples)
    base_measured = sensor.estimate_energy(base_samples)
    drift_power_bias = (base_measured - baseline_true_energy_j) / base_duration
    test_duration = sensor.covered_duration_s(test_samples)
    return sensor.estimate_energy(test_samples) - drift_power_bias * test_duration
