"""Board power modelling, energy accounting and the INA219 sensor."""

from .energy import (
    EnergyAccount,
    EnergyCategory,
    EnergyInterval,
    merge_accounts,
)
from .model import BoardPowerModel, PowerModelParams, PowerState
from .thermal import (
    ThermalModelParams,
    ThermalReplayResult,
    steady_state_temperature,
    sustained_energy_correction,
    thermal_replay,
)
from .sensor import (
    INA219Config,
    INA219Sensor,
    PowerSample,
    differential_energy,
)

__all__ = [
    "EnergyAccount",
    "EnergyCategory",
    "EnergyInterval",
    "merge_accounts",
    "BoardPowerModel",
    "PowerModelParams",
    "PowerState",
    "ThermalModelParams",
    "ThermalReplayResult",
    "steady_state_temperature",
    "sustained_energy_correction",
    "thermal_replay",
    "INA219Config",
    "INA219Sensor",
    "PowerSample",
    "differential_energy",
]
