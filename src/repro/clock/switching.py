"""Clock-switch cost model.

The paper's Sec. II-A measures two very different switch costs on the
STM32F767:

* **PLL reprogramming** (changing PLLM/PLLN/PLLP or the PLL input):
  the PLL must be disabled, reprogrammed and re-locked -- roughly
  **200 us** per switch.
* **SYSCLK mux switch** between an already-running HSE and an
  already-locked PLL: essentially instant (a handful of AHB cycles for
  the mux handshake), because the HSE is wired directly to the mux.

This asymmetry motivates the LFO/HFO split of Sec. III-B: the runtime
keeps the PLL locked at the layer's HFO frequency and bounces the mux
between HSE (memory-bound segments) and PLL (compute-bound segments),
paying the expensive re-lock only when *consecutive layers* request a
different HFO frequency.

:class:`SwitchCostModel` centralizes those costs so the RCC, the
runtime, the DSE and the benchmarks all price switches identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from .configs import ClockConfig, SysclkSource
from .pll import PLLSettings, PLL_LOCK_TIME_S
from ..errors import ClockSwitchError
from ..units import us

#: (settings, input_hz) pair describing what the PLL is programmed to,
#: independently of whether the SYSCLK mux currently selects it.
RetainedPLL = Tuple[PLLSettings, float]


@dataclass(frozen=True)
class SwitchCost:
    """Cost of one clock transition.

    Attributes:
        latency_s: wall-clock stall while the switch completes.
        reprogrammed_pll: whether the transition required a PLL
            disable/reprogram/re-lock cycle (the expensive path).
    """

    latency_s: float
    reprogrammed_pll: bool

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ClockSwitchError("switch latency must be >= 0")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry-with-backoff for PLL lock timeouts.

    When a lock wait times out (an injected fault; real silicon does
    this under marginal supply or temperature), the RCC disables the
    PLL, waits out an exponentially growing backoff and re-locks, up to
    ``max_retries`` times before declaring the switch failed with
    :class:`~repro.errors.ClockSwitchError`.  Every retry burns a full
    extra lock window plus its backoff, and the whole stall surfaces in
    the transition's :class:`SwitchCost` so the energy ledger prices
    failsafe operation honestly.

    Attributes:
        max_retries: re-lock attempts after the first timeout.
        backoff_base_s: stall before the first retry.
        backoff_factor: multiplier applied per subsequent retry.
    """

    max_retries: int = 3
    backoff_base_s: float = us(50)
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ClockSwitchError("max_retries must be >= 0")
        if self.backoff_base_s < 0:
            raise ClockSwitchError("backoff_base_s must be >= 0")
        if self.backoff_factor < 1.0:
            raise ClockSwitchError("backoff_factor must be >= 1")

    def backoff_s(self, retry: int) -> float:
        """Stall before retry number ``retry`` (0-based)."""
        return self.backoff_base_s * self.backoff_factor**retry


@dataclass(frozen=True)
class SwitchCostModel:
    """Latency parameters for SYSCLK transitions.

    Attributes:
        pll_relock_s: full PLL reprogram + re-lock latency (paper:
            ~200 us).
        mux_switch_s: SYSCLK mux handshake latency for transitions
            between already-running sources (sub-microsecond on real
            parts; a conservative 1 us default keeps the model honest
            about fine-grained switching not being free).
    """

    pll_relock_s: float = PLL_LOCK_TIME_S
    mux_switch_s: float = us(1)

    def cost(
        self,
        current: ClockConfig,
        target: ClockConfig,
        retained_pll: Optional[RetainedPLL] = None,
    ) -> SwitchCost:
        """Price the transition ``current -> target``.

        Args:
            current: configuration the SYSCLK currently runs from.
            target: configuration to switch to.
            retained_pll: what the PLL hardware is programmed to right
                now, even if the mux is parked on the HSE.  When the
                target needs exactly this programming, the switch is a
                cheap mux move (the LFO -> HFO bounce).  ``None`` means
                the PLL is unprogrammed or its state is unknown.

        The rules mirror the hardware sequencing:

        * identical configs cost nothing;
        * moving onto the PLL costs a full re-lock unless the PLL is
          already programmed with the target's settings and input;
        * every other move (onto HSE/HSI) is a mux handshake only.
        """
        if current == target:
            return SwitchCost(latency_s=0.0, reprogrammed_pll=False)
        if target.source is SysclkSource.PLL:
            assert target.pll is not None
            wanted: RetainedPLL = (target.pll, target.hse_hz)
            if current.source is SysclkSource.PLL:
                retained_pll = (
                    (current.pll, current.hse_hz)
                    if current.pll is not None
                    else retained_pll
                )
            if retained_pll != wanted:
                return SwitchCost(
                    latency_s=self.pll_relock_s + self.mux_switch_s,
                    reprogrammed_pll=True,
                )
        return SwitchCost(latency_s=self.mux_switch_s, reprogrammed_pll=False)
