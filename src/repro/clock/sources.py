"""Oscillator (clock source) models for the STM32 clock tree.

The STM32F7 SYSCLK can be fed by three sources (paper Sec. II):

* the **HSI** internal RC oscillator -- fixed 16 MHz, always available,
  but power hungry and prone to drift/jitter;
* the **HSE** external oscillator -- 1..50 MHz on the F767 Nucleo,
  stable, lower power; and
* the **PLL**, which multiplies either of the above (see
  :mod:`repro.clock.pll`).

The classes below capture the frequency ranges, startup latencies and
stability characteristics that the paper's Sec. II-A exploration relies
on: the HSI is excluded from the design space because of its higher
power draw and drift, and the HSE is the LFO (low-frequency operation)
source of the proposed DVFS scheme.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from typing import Optional

from ..errors import ClockConfigError
from ..units import MHZ, us
from .limits import ClockTreeLimits, resolve_limits


class OscillatorKind(enum.Enum):
    """The physical kind of a clock source."""

    HSI = "hsi"
    HSE = "hse"


@dataclass(frozen=True)
class Oscillator:
    """A fixed-frequency clock source.

    Attributes:
        kind: whether this is the internal RC (HSI) or the external
            crystal/generator (HSE).
        frequency_hz: output frequency in hertz.
        startup_time_s: time from enable until the oscillator output is
            stable and usable as a SYSCLK or PLL source.
        jitter_ppm: cycle-to-cycle jitter, parts per million.  Only used
            for reporting; the HSI's large jitter is one reason the
            paper excludes it from the design space.
    """

    kind: OscillatorKind
    frequency_hz: float
    startup_time_s: float
    jitter_ppm: float

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ClockConfigError(
                f"oscillator frequency must be positive, got {self.frequency_hz}"
            )
        if self.startup_time_s < 0:
            raise ClockConfigError("oscillator startup time must be >= 0")


#: Default HSI oscillator of the STM32F7: fixed 16 MHz internal RC.
HSI_FREQUENCY_HZ = 16 * MHZ

#: Legal HSE range of the STM32F767ZI Nucleo board (paper Sec. II).
HSE_MIN_HZ = 1 * MHZ
HSE_MAX_HZ = 50 * MHZ


def make_hsi(limits: Optional[ClockTreeLimits] = None) -> Oscillator:
    """Build the part's internal HSI oscillator (F767: fixed 16 MHz)."""
    return Oscillator(
        kind=OscillatorKind.HSI,
        frequency_hz=resolve_limits(limits).hsi_hz,
        startup_time_s=us(4),
        jitter_ppm=1000.0,
    )


def make_hse(
    frequency_hz: float, limits: Optional[ClockTreeLimits] = None
) -> Oscillator:
    """Build an HSE oscillator at ``frequency_hz``.

    Args:
        frequency_hz: requested output frequency.  Must lie within the
            part's supported range (F767 Nucleo: 1..50 MHz).
        limits: clock-tree constraints; ``None`` means the STM32F7
            defaults.

    Raises:
        ClockConfigError: if the frequency is out of range.
    """
    lim = resolve_limits(limits)
    if not lim.hse_min_hz <= frequency_hz <= lim.hse_max_hz:
        raise ClockConfigError(
            f"HSE frequency {frequency_hz / MHZ:.3f} MHz outside the legal "
            f"range [{lim.hse_min_hz / MHZ:.0f}, {lim.hse_max_hz / MHZ:.0f}] MHz"
        )
    return Oscillator(
        kind=OscillatorKind.HSE,
        frequency_hz=frequency_hz,
        startup_time_s=us(2000),  # crystal startup; only paid when enabling
        jitter_ppm=25.0,
    )
