"""Per-part clock-tree constraint descriptors.

Historically every legality constant of the clock layer -- HSE range,
HSI frequency, PLL divider ranges, VCO windows, SYSCLK ceiling, PLL
lock time -- was a module constant describing the STM32F767.  A
:class:`ClockTreeLimits` bundles the same constraints as one immutable
descriptor so other targets (a Cortex-M33 MCXN947, a Cortex-M55
STM32N6) can carry their own clock trees through the very same
``PLLSettings`` / ``ClockConfig`` / ``RCC`` machinery.

Backwards compatibility is a hard requirement: everything that does
not pass limits (``limits=None`` everywhere) must behave -- and hash,
compare, serialize -- byte-identically to the pre-refactor F767-only
code.  The F767 therefore keeps ``None`` as its descriptor and
:data:`F7_LIMITS` only supplies the *values* behind the scenes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..errors import ClockConfigError
from ..units import MHZ, us


@dataclass(frozen=True)
class ClockTreeLimits:
    """Hardware legality constraints of one part's clock tree.

    Attributes:
        name: short part-family slug (``"stm32f7"``, ``"mcxn947"``).
        hse_min_hz / hse_max_hz: legal external-oscillator range.
        hsi_hz: frequency of the internal failsafe RC oscillator (the
            source the clock-security failsafe parks the core on).
        pllm_min / pllm_max: legal PLL input-divider range.
        plln_min / plln_max: legal VCO-multiplier range.
        pllp_values: legal SYSCLK post-divider choices.
        vco_input_min_hz / vco_input_max_hz: phase-comparator window.
        vco_output_min_hz / vco_output_max_hz: VCO output window.
        sysclk_max_hz: part's maximum SYSCLK.
        pll_lock_time_s: PLL re-lock latency after reprogramming --
            the switch-cost budget the board's
            :class:`~repro.clock.switching.SwitchCostModel` must agree
            with.
    """

    name: str = "stm32f7"
    hse_min_hz: float = 1 * MHZ
    hse_max_hz: float = 50 * MHZ
    hsi_hz: float = 16 * MHZ
    pllm_min: int = 2
    pllm_max: int = 63
    plln_min: int = 50
    plln_max: int = 432
    pllp_values: Tuple[int, ...] = (2, 4, 6, 8)
    vco_input_min_hz: float = 1 * MHZ
    vco_input_max_hz: float = 2 * MHZ
    vco_output_min_hz: float = 100 * MHZ
    vco_output_max_hz: float = 432 * MHZ
    sysclk_max_hz: float = 216 * MHZ
    pll_lock_time_s: float = us(200)

    def __post_init__(self) -> None:
        if not self.name:
            raise ClockConfigError("limits need a non-empty name")
        if not 0 < self.hse_min_hz <= self.hse_max_hz:
            raise ClockConfigError("HSE range must satisfy 0 < min <= max")
        if self.hsi_hz <= 0:
            raise ClockConfigError("HSI frequency must be positive")
        if not 1 <= self.pllm_min <= self.pllm_max:
            raise ClockConfigError("PLLM range must satisfy 1 <= min <= max")
        if not 1 <= self.plln_min <= self.plln_max:
            raise ClockConfigError("PLLN range must satisfy 1 <= min <= max")
        if not self.pllp_values or any(p < 1 for p in self.pllp_values):
            raise ClockConfigError("pllp_values must be positive dividers")
        if not 0 < self.vco_input_min_hz <= self.vco_input_max_hz:
            raise ClockConfigError("VCO input window must be positive")
        if not 0 < self.vco_output_min_hz <= self.vco_output_max_hz:
            raise ClockConfigError("VCO output window must be positive")
        if self.sysclk_max_hz <= 0:
            raise ClockConfigError("sysclk_max_hz must be positive")
        if self.pll_lock_time_s < 0:
            raise ClockConfigError("pll_lock_time_s must be >= 0")

    def to_dict(self) -> dict:
        """JSON-ready encoding (used by plan serialization and docs)."""
        return {
            "name": self.name,
            "hse_min_hz": self.hse_min_hz,
            "hse_max_hz": self.hse_max_hz,
            "hsi_hz": self.hsi_hz,
            "pllm_min": self.pllm_min,
            "pllm_max": self.pllm_max,
            "plln_min": self.plln_min,
            "plln_max": self.plln_max,
            "pllp_values": list(self.pllp_values),
            "vco_input_min_hz": self.vco_input_min_hz,
            "vco_input_max_hz": self.vco_input_max_hz,
            "vco_output_min_hz": self.vco_output_min_hz,
            "vco_output_max_hz": self.vco_output_max_hz,
            "sysclk_max_hz": self.sysclk_max_hz,
            "pll_lock_time_s": self.pll_lock_time_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ClockTreeLimits":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=str(data["name"]),
            hse_min_hz=float(data["hse_min_hz"]),
            hse_max_hz=float(data["hse_max_hz"]),
            hsi_hz=float(data["hsi_hz"]),
            pllm_min=int(data["pllm_min"]),
            pllm_max=int(data["pllm_max"]),
            plln_min=int(data["plln_min"]),
            plln_max=int(data["plln_max"]),
            pllp_values=tuple(int(p) for p in data["pllp_values"]),
            vco_input_min_hz=float(data["vco_input_min_hz"]),
            vco_input_max_hz=float(data["vco_input_max_hz"]),
            vco_output_min_hz=float(data["vco_output_min_hz"]),
            vco_output_max_hz=float(data["vco_output_max_hz"]),
            sysclk_max_hz=float(data["sysclk_max_hz"]),
            pll_lock_time_s=float(data["pll_lock_time_s"]),
        )


#: The STM32F7 constraint set the module-level constants describe.
#: ``limits=None`` throughout the clock layer means "use these".
F7_LIMITS = ClockTreeLimits()


def resolve_limits(limits: "ClockTreeLimits | None") -> ClockTreeLimits:
    """The effective constraint set (F767 defaults when ``None``)."""
    return limits if limits is not None else F7_LIMITS
