"""RCC register encoding (STM32F7 RCC_PLLCFGR / RCC_CFGR).

Encodes a :class:`~repro.clock.configs.ClockConfig` into the actual
register words firmware writes, per RM0410:

``RCC_PLLCFGR``:

* bits 5:0   -- PLLM
* bits 14:6  -- PLLN
* bits 17:16 -- PLLP encoded as (PLLP/2 - 1): 00=2, 01=4, 10=6, 11=8
* bit  22    -- PLLSRC (1 = HSE)

``RCC_CFGR`` bits 1:0 -- SW (system clock switch): 00 HSI, 01 HSE,
10 PLL.

Used by the code generator so emitted firmware can program the PLL
with a single register write, and round-trip tested against the
configuration model so the encoding can never drift from the validated
parameter ranges.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ClockConfigError
from .configs import ClockConfig, SysclkSource
from .pll import PLLSettings

#: RCC_CFGR.SW values.
SW_HSI = 0b00
SW_HSE = 0b01
SW_PLL = 0b10

_PLLP_ENCODE = {2: 0b00, 4: 0b01, 6: 0b10, 8: 0b11}
_PLLP_DECODE = {v: k for k, v in _PLLP_ENCODE.items()}

PLLSRC_HSE_BIT = 1 << 22


@dataclass(frozen=True)
class RCCRegisters:
    """The register words one clock configuration programs.

    Attributes:
        pllcfgr: RCC_PLLCFGR value (0 when the PLL is unused).
        cfgr_sw: the SW field of RCC_CFGR (mux selection).
        hse_hz: external oscillator frequency the encoding assumes
            (not a register, but required context for decoding).
    """

    pllcfgr: int
    cfgr_sw: int
    hse_hz: float


def encode_registers(config: ClockConfig) -> RCCRegisters:
    """Encode a clock configuration into RCC register words."""
    if config.source is SysclkSource.HSI:
        return RCCRegisters(pllcfgr=0, cfgr_sw=SW_HSI, hse_hz=config.hse_hz)
    if config.source is SysclkSource.HSE:
        return RCCRegisters(pllcfgr=0, cfgr_sw=SW_HSE, hse_hz=config.hse_hz)
    assert config.pll is not None
    word = (
        (config.pll.pllm & 0x3F)
        | ((config.pll.plln & 0x1FF) << 6)
        | (_PLLP_ENCODE[config.pll.pllp] << 16)
        | PLLSRC_HSE_BIT
    )
    return RCCRegisters(pllcfgr=word, cfgr_sw=SW_PLL, hse_hz=config.hse_hz)


def decode_registers(registers: RCCRegisters) -> ClockConfig:
    """Decode register words back into a validated configuration.

    Raises:
        ClockConfigError: if the decoded fields violate the hardware
            legality constraints (corrupt or hostile register values
            can never produce an invalid ``ClockConfig``).
    """
    if registers.cfgr_sw == SW_HSI:
        return ClockConfig(source=SysclkSource.HSI, hse_hz=registers.hse_hz)
    if registers.cfgr_sw == SW_HSE:
        return ClockConfig(source=SysclkSource.HSE, hse_hz=registers.hse_hz)
    if registers.cfgr_sw != SW_PLL:
        raise ClockConfigError(
            f"invalid RCC_CFGR.SW value {registers.cfgr_sw:#04b}"
        )
    word = registers.pllcfgr
    if not word & PLLSRC_HSE_BIT:
        raise ClockConfigError(
            "decoded PLLSRC selects the HSI; this model only deploys "
            "HSE-sourced PLL configurations"
        )
    settings = PLLSettings(
        pllm=word & 0x3F,
        plln=(word >> 6) & 0x1FF,
        pllp=_PLLP_DECODE[(word >> 16) & 0b11],
    )
    return ClockConfig(
        source=SysclkSource.PLL, hse_hz=registers.hse_hz, pll=settings
    )
