"""PLL model for the STM32F7 main PLL.

Implements Eq. 1 of the paper:

    F_SYSCLK = F_{HSE,HSI} * PLLN / (PLLM * PLLP)

together with the hardware legality constraints of the STM32F7 main
PLL (reference manual RM0410):

* ``PLLM`` in 2..63 -- input divider; the divided input feeds the
  phase comparator and must land in the 1..2 MHz window (2 MHz is
  recommended to limit PLL jitter).
* ``PLLN`` in 50..432 -- VCO multiplier; the VCO output frequency
  ``f_vco = f_in / PLLM * PLLN`` must land in 100..432 MHz.
* ``PLLP`` in {2, 4, 6, 8} -- post divider for SYSCLK; the resulting
  SYSCLK must not exceed 216 MHz on the F767.

The PLL also carries a *lock time*: whenever M/N/P or the input source
change, the PLL must be disabled, reprogrammed, re-enabled and allowed
to re-lock, which the paper measures as roughly 200 us of switching
overhead (Sec. II-A).  Switching the SYSCLK mux between an already
locked PLL and the HSE, in contrast, is nearly instant; this asymmetry
is the foundation of the LFO/HFO scheme in Sec. III-B and is modelled
in :mod:`repro.clock.switching`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ClockConfigError
from ..units import MHZ, us
from .limits import ClockTreeLimits, resolve_limits

#: Legal divider/multiplier ranges (STM32F7 main PLL).
PLLM_MIN, PLLM_MAX = 2, 63
PLLN_MIN, PLLN_MAX = 50, 432
PLLP_VALUES = (2, 4, 6, 8)

#: Phase-comparator (VCO input) frequency window.
VCO_INPUT_MIN_HZ = 1 * MHZ
VCO_INPUT_MAX_HZ = 2 * MHZ

#: VCO output frequency window.
VCO_OUTPUT_MIN_HZ = 100 * MHZ
VCO_OUTPUT_MAX_HZ = 432 * MHZ

#: Maximum SYSCLK of the STM32F767.
SYSCLK_MAX_HZ = 216 * MHZ

#: PLL re-lock time after reprogramming (paper Sec. II-A: ~200 us).
PLL_LOCK_TIME_S = us(200)


@dataclass(frozen=True)
class PLLSettings:
    """Programmable dividers/multiplier of the main PLL.

    Attributes:
        pllm: input divider (F7: 2..63).
        plln: VCO multiplier (F7: 50..432).
        pllp: SYSCLK post divider (F7: 2, 4, 6 or 8).
        limits: clock-tree constraints the dividers are validated
            against.  ``None`` (the default, and the only value the
            F767 path ever uses) means the STM32F7 module constants.
    """

    pllm: int
    plln: int
    pllp: int = 2
    limits: Optional[ClockTreeLimits] = None

    def __post_init__(self) -> None:
        lim = resolve_limits(self.limits)
        if not lim.pllm_min <= self.pllm <= lim.pllm_max:
            raise ClockConfigError(
                f"PLLM={self.pllm} outside legal range "
                f"[{lim.pllm_min}, {lim.pllm_max}]"
            )
        if not lim.plln_min <= self.plln <= lim.plln_max:
            raise ClockConfigError(
                f"PLLN={self.plln} outside legal range "
                f"[{lim.plln_min}, {lim.plln_max}]"
            )
        if self.pllp not in lim.pllp_values:
            raise ClockConfigError(
                f"PLLP={self.pllp} not one of {lim.pllp_values}"
            )

    def vco_input_hz(self, input_hz: float) -> float:
        """Frequency at the phase comparator: ``f_in / PLLM``."""
        return input_hz / self.pllm

    def vco_output_hz(self, input_hz: float) -> float:
        """VCO output frequency: ``f_in / PLLM * PLLN``."""
        return input_hz * self.plln / self.pllm

    def sysclk_hz(self, input_hz: float) -> float:
        """SYSCLK produced from ``input_hz`` (Eq. 1 of the paper)."""
        return input_hz * self.plln / (self.pllm * self.pllp)

    def validate_for_input(self, input_hz: float) -> None:
        """Check the VCO and SYSCLK constraints for a given input clock.

        Raises:
            ClockConfigError: if the VCO input/output frequency or the
                resulting SYSCLK violates the hardware limits.
        """
        lim = resolve_limits(self.limits)
        vco_in = self.vco_input_hz(input_hz)
        if not lim.vco_input_min_hz <= vco_in <= lim.vco_input_max_hz:
            raise ClockConfigError(
                f"VCO input {vco_in / MHZ:.3f} MHz outside "
                f"[{lim.vco_input_min_hz / MHZ:.0f}, "
                f"{lim.vco_input_max_hz / MHZ:.0f}] MHz "
                f"(input {input_hz / MHZ:.1f} MHz / PLLM {self.pllm})"
            )
        vco_out = self.vco_output_hz(input_hz)
        if not lim.vco_output_min_hz <= vco_out <= lim.vco_output_max_hz:
            raise ClockConfigError(
                f"VCO output {vco_out / MHZ:.1f} MHz outside "
                f"[{lim.vco_output_min_hz / MHZ:.0f}, "
                f"{lim.vco_output_max_hz / MHZ:.0f}] MHz"
            )
        sysclk = self.sysclk_hz(input_hz)
        if sysclk > lim.sysclk_max_hz:
            raise ClockConfigError(
                f"SYSCLK {sysclk / MHZ:.1f} MHz exceeds the part maximum "
                f"{lim.sysclk_max_hz / MHZ:.0f} MHz"
            )

    def is_valid_for_input(self, input_hz: float) -> bool:
        """Like :meth:`validate_for_input` but returning a bool."""
        try:
            self.validate_for_input(input_hz)
        except ClockConfigError:
            return False
        return True


class PLL:
    """Stateful PLL: tracks enablement, lock and programmed settings.

    The RCC (:mod:`repro.clock.rcc`) owns one instance.  Reprogramming
    requires the PLL to be disabled first, mirroring the hardware
    sequencing that makes parameter changes expensive.

    Args:
        lock_time_s: re-lock latency after (re)enabling -- the part's
            lock budget (F767: the paper's measured ~200 us).
    """

    def __init__(self, lock_time_s: float = PLL_LOCK_TIME_S) -> None:
        if lock_time_s < 0:
            raise ClockConfigError("PLL lock time must be >= 0")
        self.lock_time_s = lock_time_s
        self._settings: PLLSettings | None = None
        self._input_hz: float | None = None
        self._enabled = False
        self._locked = False

    @property
    def enabled(self) -> bool:
        """Whether the PLL is currently powered."""
        return self._enabled

    @property
    def locked(self) -> bool:
        """Whether the PLL output is stable and usable as SYSCLK."""
        return self._locked

    @property
    def settings(self) -> PLLSettings | None:
        """Currently programmed settings, or None if never programmed."""
        return self._settings

    @property
    def input_hz(self) -> float | None:
        """Currently selected input frequency, or None."""
        return self._input_hz

    def configure(self, settings: PLLSettings, input_hz: float) -> None:
        """Program dividers and input source.

        Raises:
            ClockConfigError: if the PLL is enabled (hardware forbids
                reprogramming a running PLL) or the settings are illegal
                for the input frequency.
        """
        if self._enabled:
            raise ClockConfigError(
                "cannot reprogram the PLL while it is enabled; disable it first"
            )
        settings.validate_for_input(input_hz)
        self._settings = settings
        self._input_hz = input_hz

    def enable(self) -> float:
        """Power the PLL and wait for lock.

        Returns:
            The lock latency in seconds (:attr:`lock_time_s`), or 0.0 if
            the PLL was already enabled and locked.

        Raises:
            ClockConfigError: if the PLL has never been configured.
        """
        if self._settings is None or self._input_hz is None:
            raise ClockConfigError("cannot enable an unconfigured PLL")
        if self._enabled and self._locked:
            return 0.0
        self._enabled = True
        self._locked = True
        return self.lock_time_s

    def disable(self) -> None:
        """Power the PLL down (drops lock)."""
        self._enabled = False
        self._locked = False

    def output_hz(self) -> float:
        """The SYSCLK-facing output frequency.

        Raises:
            ClockConfigError: if the PLL is not enabled and locked.
        """
        if not (self._enabled and self._locked):
            raise ClockConfigError("PLL output requested while not locked")
        assert self._settings is not None and self._input_hz is not None
        return self._settings.sysclk_hz(self._input_hz)

    def vco_hz(self) -> float:
        """The VCO output frequency (drives PLL power draw).

        Raises:
            ClockConfigError: if the PLL is not enabled and locked.
        """
        if not (self._enabled and self._locked):
            raise ClockConfigError("PLL VCO frequency requested while not locked")
        assert self._settings is not None and self._input_hz is not None
        return self._settings.vco_output_hz(self._input_hz)
