"""STM32 clock-tree model (paper Sec. II).

Public surface:

* :class:`~repro.clock.configs.ClockConfig` and the helpers
  :func:`~repro.clock.configs.lfo_config`,
  :func:`~repro.clock.configs.pll_config`,
  :func:`~repro.clock.configs.hfo_grid`,
  :func:`~repro.clock.configs.enumerate_configs`,
  :func:`~repro.clock.configs.iso_frequency_groups`,
  :func:`~repro.clock.configs.min_power_config`,
  :func:`~repro.clock.configs.max_performance_config`;
* :class:`~repro.clock.pll.PLLSettings` / :class:`~repro.clock.pll.PLL`;
* :class:`~repro.clock.rcc.RCC` with its switch-event log;
* :class:`~repro.clock.switching.SwitchCostModel`.
"""

from .configs import (
    ClockConfig,
    SysclkSource,
    PAPER_HSE_HZ,
    PAPER_LFO_HZ,
    PAPER_PLLM_VALUES,
    PAPER_PLLN_VALUES,
    enumerate_configs,
    hfo_grid,
    hsi_config,
    iso_frequency_groups,
    lfo_config,
    max_performance_config,
    min_power_config,
    pll_config,
)
from .limits import ClockTreeLimits, F7_LIMITS, resolve_limits
from .pll import PLL, PLLSettings, PLL_LOCK_TIME_S, SYSCLK_MAX_HZ
from .rcc import RCC, ClockSwitchEvent, CSSEvent
from .registers import (
    RCCRegisters,
    decode_registers,
    encode_registers,
)
from .sources import Oscillator, OscillatorKind, make_hse, make_hsi
from .switching import RetryPolicy, SwitchCost, SwitchCostModel

__all__ = [
    "ClockConfig",
    "SysclkSource",
    "PAPER_HSE_HZ",
    "PAPER_LFO_HZ",
    "PAPER_PLLM_VALUES",
    "PAPER_PLLN_VALUES",
    "enumerate_configs",
    "hfo_grid",
    "hsi_config",
    "iso_frequency_groups",
    "lfo_config",
    "max_performance_config",
    "min_power_config",
    "pll_config",
    "ClockTreeLimits",
    "F7_LIMITS",
    "resolve_limits",
    "PLL",
    "PLLSettings",
    "PLL_LOCK_TIME_S",
    "SYSCLK_MAX_HZ",
    "RCC",
    "ClockSwitchEvent",
    "CSSEvent",
    "RetryPolicy",
    "RCCRegisters",
    "decode_registers",
    "encode_registers",
    "Oscillator",
    "OscillatorKind",
    "make_hse",
    "make_hsi",
    "SwitchCost",
    "SwitchCostModel",
]
