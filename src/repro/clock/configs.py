"""Clock configurations: the (source, HSE, PLLM, PLLN, PLLP) tuples.

A :class:`ClockConfig` is the unit of the DVFS design space.  It fully
determines the SYSCLK frequency (Eq. 1) and -- together with the power
model -- the board power.  The paper's central observation about this
space (Fig. 2) is that *iso-frequency* configurations can differ widely
in power because power tracks the VCO frequency and oscillator choice,
not just the SYSCLK output; helpers here enumerate legal
configurations, group them by output frequency and pick the
minimum-power representative per frequency.

Two named operating modes from Sec. III-B:

* :func:`lfo_config` -- Low Frequency Operation: SYSCLK driven directly
  by the HSE at 50 MHz (PLL bypassed), used for memory-bound segments.
* :func:`hfo_grid` -- High Frequency Operation: the PLL grid explored by
  the paper, PLLN in {75, 100, 150, 168, 216, 336, 432} and PLLM in
  {25, 50} with PLLP = 2 on a 50 MHz HSE.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, TYPE_CHECKING

from ..errors import ClockConfigError
from ..units import MHZ
from .limits import ClockTreeLimits, resolve_limits
from .pll import PLLSettings, SYSCLK_MAX_HZ
from .sources import HSE_MAX_HZ, HSE_MIN_HZ, HSI_FREQUENCY_HZ

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..power.model import BoardPowerModel


class SysclkSource(enum.Enum):
    """Which output the SYSCLK mux selects."""

    HSI = "hsi"
    HSE = "hse"
    PLL = "pll"


#: Paper HFO exploration grid (Sec. III-B).
PAPER_PLLN_VALUES = (75, 100, 150, 168, 216, 336, 432)
PAPER_PLLM_VALUES = (25, 50)
PAPER_HSE_HZ = 50 * MHZ
PAPER_LFO_HZ = 50 * MHZ


@dataclass(frozen=True, eq=False)
class ClockConfig:
    """A complete, legal SYSCLK configuration.

    Configs are immutable and serve as keys in every pricing cache, so
    equality/hash are hand-rolled: the hash is computed once at
    construction and ``==`` short-circuits on identity (design spaces
    hand the same instances to every consumer, making the common
    comparison an ``is`` check instead of a field-tuple walk).

    Attributes:
        source: SYSCLK mux selection.
        hse_hz: HSE oscillator frequency (used directly when
            ``source == HSE`` and as the PLL input when ``source ==
            PLL``; the HSI path uses the fixed internal 16 MHz).
        pll: PLL settings; required iff ``source == PLL``.
        limits: clock-tree constraints of the part this config targets.
            ``None`` (the default) means the STM32F7 constants, and is
            what every F767 code path passes; non-F7 boards supply their
            own.  The limits participate in equality/hash so configs of
            different parts never collide in pricing caches (two boards'
            "HSI direct" configs are *different* operating points).
    """

    source: SysclkSource
    hse_hz: float = PAPER_HSE_HZ
    pll: Optional[PLLSettings] = None
    limits: Optional[ClockTreeLimits] = None

    def __post_init__(self) -> None:
        lim = resolve_limits(self.limits)
        if self.source is SysclkSource.PLL:
            if self.pll is None:
                raise ClockConfigError("PLL-sourced config requires PLL settings")
            self.pll.validate_for_input(self._pll_input_hz())
        elif self.pll is not None:
            raise ClockConfigError(
                f"{self.source.value}-sourced config must not carry PLL settings"
            )
        if self.source is not SysclkSource.HSI:
            if not lim.hse_min_hz <= self.hse_hz <= lim.hse_max_hz:
                raise ClockConfigError(
                    f"HSE frequency {self.hse_hz / MHZ:.3f} MHz outside "
                    f"[{lim.hse_min_hz / MHZ:.0f}, {lim.hse_max_hz / MHZ:.0f}] MHz"
                )
        key = (self.source, self.hse_hz, self.pll, self.limits)
        object.__setattr__(self, "_key", key)
        object.__setattr__(self, "_hash", hash(key))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, ClockConfig):
            return NotImplemented
        return self._key == other._key

    def __hash__(self) -> int:
        return self._hash

    def _pll_input_hz(self) -> float:
        return self.hse_hz

    @property
    def sysclk_hz(self) -> float:
        """The SYSCLK frequency this configuration produces."""
        if self.source is SysclkSource.HSI:
            return resolve_limits(self.limits).hsi_hz
        if self.source is SysclkSource.HSE:
            return self.hse_hz
        assert self.pll is not None
        return self.pll.sysclk_hz(self._pll_input_hz())

    @property
    def vco_hz(self) -> float:
        """VCO output frequency (0.0 when the PLL is not used).

        The VCO frequency is the dominant PLL power term (Fig. 2): two
        configs with identical SYSCLK but different VCO frequencies draw
        visibly different power.
        """
        if self.source is not SysclkSource.PLL:
            return 0.0
        assert self.pll is not None
        return self.pll.vco_output_hz(self._pll_input_hz())

    @property
    def uses_pll(self) -> bool:
        """Whether the PLL must be running for this configuration."""
        return self.source is SysclkSource.PLL

    def describe(self) -> str:
        """Human-readable one-liner, e.g. for benchmark tables."""
        if self.source is SysclkSource.HSI:
            return f"HSI @ {self.sysclk_hz / MHZ:.0f} MHz"
        if self.source is SysclkSource.HSE:
            return f"HSE @ {self.sysclk_hz / MHZ:.0f} MHz"
        assert self.pll is not None
        return (
            f"PLL(HSE={self.hse_hz / MHZ:.0f}, M={self.pll.pllm}, "
            f"N={self.pll.plln}, P={self.pll.pllp}) @ "
            f"{self.sysclk_hz / MHZ:.0f} MHz (VCO {self.vco_hz / MHZ:.0f} MHz)"
        )


def lfo_config(
    hse_hz: float = PAPER_LFO_HZ, limits: Optional[ClockTreeLimits] = None
) -> ClockConfig:
    """The Low Frequency Operation config: HSE direct to SYSCLK."""
    return ClockConfig(source=SysclkSource.HSE, hse_hz=hse_hz, limits=limits)


def hsi_config(limits: Optional[ClockTreeLimits] = None) -> ClockConfig:
    """The CSS failsafe config: internal HSI direct to SYSCLK.

    This is where the Clock Security System parks the core when the HSE
    fails: the HSI needs no external components, so it is always
    available -- slow and jittery, but alive.  The F767's HSI runs at
    16 MHz; other parts' limits carry their own frequency.
    """
    return ClockConfig(source=SysclkSource.HSI, limits=limits)


def pll_config(
    hse_hz: float,
    pllm: int,
    plln: int,
    pllp: int = 2,
    limits: Optional[ClockTreeLimits] = None,
) -> ClockConfig:
    """Build and validate a PLL-sourced configuration.

    Raises:
        ClockConfigError: if any divider or derived frequency is illegal.
    """
    return ClockConfig(
        source=SysclkSource.PLL,
        hse_hz=hse_hz,
        pll=PLLSettings(pllm=pllm, plln=plln, pllp=pllp, limits=limits),
        limits=limits,
    )


def hfo_grid(
    hse_hz: float = PAPER_HSE_HZ,
    plln_values: Sequence[int] = PAPER_PLLN_VALUES,
    pllm_values: Sequence[int] = PAPER_PLLM_VALUES,
    pllp: int = 2,
    limits: Optional[ClockTreeLimits] = None,
) -> List[ClockConfig]:
    """Enumerate the paper's HFO grid, dropping illegal combinations.

    Combinations whose VCO input/output or SYSCLK violate hardware
    limits (e.g. PLLM=25, PLLN=336 on a 50 MHz HSE, whose VCO would run
    at 672 MHz) are silently skipped, exactly as a real firmware
    exploration would refuse to program them.
    """
    grid: List[ClockConfig] = []
    for pllm in pllm_values:
        for plln in plln_values:
            try:
                grid.append(pll_config(hse_hz, pllm, plln, pllp, limits=limits))
            except ClockConfigError:
                continue
    return grid


def enumerate_configs(
    hse_choices: Sequence[float],
    pllm_choices: Sequence[int],
    plln_choices: Sequence[int],
    pllp: int = 2,
    include_hse_direct: bool = True,
) -> List[ClockConfig]:
    """Enumerate all legal configurations over the given parameter axes.

    Used by the Fig. 2 microbenchmark to sweep (HSE, PLLM, PLLN) with
    PLLP fixed to 2 -- the minimum divider, which the paper fixes
    because a larger PLLP forces a proportionally faster (hence more
    power-hungry) VCO for the same SYSCLK.
    """
    configs: List[ClockConfig] = []
    for hse_hz in hse_choices:
        if include_hse_direct:
            try:
                configs.append(lfo_config(hse_hz))
            except ClockConfigError:
                pass
        for pllm in pllm_choices:
            for plln in plln_choices:
                try:
                    configs.append(pll_config(hse_hz, pllm, plln, pllp))
                except ClockConfigError:
                    continue
    return configs


def iso_frequency_groups(
    configs: Iterable[ClockConfig], tolerance_hz: float = 1.0
) -> Dict[float, List[ClockConfig]]:
    """Group configurations by (rounded) SYSCLK output frequency.

    Returns a dict mapping the representative frequency to every config
    that produces it, enabling the paper's iso-frequency power
    comparison (Fig. 2).
    """
    groups: Dict[float, List[ClockConfig]] = {}
    for config in configs:
        placed = False
        for key in groups:
            if abs(key - config.sysclk_hz) <= tolerance_hz:
                groups[key].append(config)
                placed = True
                break
        if not placed:
            groups[config.sysclk_hz] = [config]
    return groups


def min_power_config(
    configs: Sequence[ClockConfig],
    power_model: "BoardPowerModel",
    target_hz: float,
    tolerance_hz: float = 1.0,
) -> ClockConfig:
    """Pick the minimum-power configuration producing ``target_hz``.

    This is the per-frequency selection rule of Sec. II-A: among all
    iso-frequency alternatives, keep the one with the lowest active
    power.  Ties (identical power) are broken deterministically by the
    lexicographic description, matching the paper's remark that some
    combinations are power-equivalent and need a consistent choice.

    Raises:
        ClockConfigError: if no candidate produces the target frequency.
    """
    candidates = [
        c for c in configs if abs(c.sysclk_hz - target_hz) <= tolerance_hz
    ]
    if not candidates:
        raise ClockConfigError(
            f"no configuration produces {target_hz / MHZ:.1f} MHz"
        )
    return min(
        candidates,
        key=lambda c: (power_model.active_power(c), c.describe()),
    )


def max_performance_config(hse_hz: float = PAPER_HSE_HZ) -> ClockConfig:
    """The 216 MHz flat-out configuration used by the TinyEngine baseline.

    Chooses the lowest-VCO (hence lowest-power) way to hit the part's
    maximum SYSCLK from the given HSE.
    """
    grid = hfo_grid(hse_hz=hse_hz)
    top = [c for c in grid if abs(c.sysclk_hz - SYSCLK_MAX_HZ) <= 1.0]
    if not top:
        raise ClockConfigError(
            f"HFO grid from HSE {hse_hz / MHZ:.0f} MHz cannot reach 216 MHz"
        )
    return min(top, key=lambda c: c.vco_hz)
