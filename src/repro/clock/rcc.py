"""Reset and Clock Control (RCC) peripheral model.

The RCC is the stateful owner of the clock tree: it tracks which
oscillators are running, what the PLL is programmed to, and which
source the SYSCLK mux selects.  The DVFS runtime drives DVFS through
:meth:`RCC.apply`, which performs whatever hardware sequence the
transition requires (oscillator start-up, PLL disable/reprogram/
re-lock, mux switch) and returns the incurred latency, mirroring the
`ClockSwitchHSE` / `ClockSwitchPLL` calls in the paper's Listing 1.

Every transition is appended to :attr:`RCC.history` so tests and the
profiler can audit exactly how many expensive re-locks occurred.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import ClockSwitchError
from .configs import ClockConfig, SysclkSource, lfo_config
from .pll import PLL
from .sources import Oscillator, make_hse, make_hsi
from .switching import RetainedPLL, SwitchCost, SwitchCostModel


@dataclass(frozen=True)
class ClockSwitchEvent:
    """One recorded SYSCLK transition.

    Attributes:
        previous: configuration before the switch.
        target: configuration after the switch.
        cost: latency and re-lock information for the transition.
    """

    previous: ClockConfig
    target: ClockConfig
    cost: SwitchCost


@dataclass
class RCC:
    """Stateful clock controller for one board.

    Attributes:
        cost_model: pricing for mux switches and PLL re-locks.
        initial: configuration the board boots with.  Real STM32 parts
            boot from the HSI; the paper's experiments run from the
            50 MHz HSE, so that is the default here.
    """

    cost_model: SwitchCostModel = field(default_factory=SwitchCostModel)
    initial: ClockConfig = field(default_factory=lfo_config)

    def __post_init__(self) -> None:
        self._hsi: Oscillator = make_hsi()
        self._hse: Optional[Oscillator] = None
        self._pll = PLL()
        self._current: ClockConfig = self.initial
        self.history: List[ClockSwitchEvent] = []
        # Bring the tree into the initial state without charging latency:
        # boot-time configuration is outside the measured inference window.
        self._materialize(self.initial)

    # -- public state ----------------------------------------------------

    @property
    def current(self) -> ClockConfig:
        """The configuration the SYSCLK currently runs from."""
        return self._current

    @property
    def sysclk_hz(self) -> float:
        """Current SYSCLK frequency."""
        return self._current.sysclk_hz

    @property
    def retained_pll(self) -> Optional[RetainedPLL]:
        """What the PLL hardware is programmed to, if anything."""
        if self._pll.settings is None or self._pll.input_hz is None:
            return None
        return (self._pll.settings, self._pll.input_hz)

    @property
    def pll_locked(self) -> bool:
        """Whether the PLL is currently enabled and locked."""
        return self._pll.locked

    # -- transitions -------------------------------------------------------

    def apply(self, target: ClockConfig) -> SwitchCost:
        """Switch the SYSCLK to ``target``, returning the incurred cost.

        Performs the full hardware sequence and records the event.  A
        no-op switch (target equals the current configuration) costs
        nothing and records nothing.
        """
        cost = self.cost_model.cost(self._current, target, self.retained_pll)
        if target == self._current:
            return cost
        previous = self._current
        self._materialize(target)
        event = ClockSwitchEvent(previous=previous, target=target, cost=cost)
        self.history.append(event)
        return cost

    def switch_to_hse(self, hse_hz: Optional[float] = None) -> SwitchCost:
        """Park the SYSCLK on the HSE (the paper's ``ClockSwitchHSE``).

        The PLL keeps running so a later return to HFO is a cheap mux
        move.  When ``hse_hz`` is omitted the currently-running HSE
        frequency is reused.

        Raises:
            ClockSwitchError: if no HSE frequency is known.
        """
        if hse_hz is None:
            if self._hse is None:
                raise ClockSwitchError(
                    "switch_to_hse without a frequency requires a running HSE"
                )
            hse_hz = self._hse.frequency_hz
        return self.apply(ClockConfig(source=SysclkSource.HSE, hse_hz=hse_hz))

    def switch_to_pll(self, config: ClockConfig) -> SwitchCost:
        """Select a PLL configuration (the paper's ``ClockSwitchPLL``).

        Raises:
            ClockSwitchError: if ``config`` is not PLL-sourced.
        """
        if config.source is not SysclkSource.PLL:
            raise ClockSwitchError(
                f"switch_to_pll requires a PLL-sourced config, got "
                f"{config.source.value}"
            )
        return self.apply(config)

    def prepare_pll(self, config: ClockConfig) -> float:
        """Reprogram the PLL in the background (SYSCLK unchanged).

        While the SYSCLK runs from the HSE, firmware can disable the
        PLL, program new dividers and re-enable it; the core keeps
        executing through the whole re-lock.  This is how a careful
        LFO/HFO implementation hides the ~200 us re-lock inside a
        memory-bound segment: the lock completes while the buffer copy
        proceeds at the LFO clock.

        Returns:
            The lock latency that elapses in the background (0.0 when
            the PLL is already programmed and locked as requested).

        Raises:
            ClockSwitchError: if ``config`` is not PLL-sourced or the
                SYSCLK currently runs *from* the PLL (hardware forbids
                reprogramming the active SYSCLK source).
        """
        if config.source is not SysclkSource.PLL:
            raise ClockSwitchError("prepare_pll requires a PLL-sourced config")
        assert config.pll is not None
        wanted: RetainedPLL = (config.pll, config.hse_hz)
        if self.retained_pll == wanted and self._pll.locked:
            return 0.0
        if self._current.source is SysclkSource.PLL:
            raise ClockSwitchError(
                "cannot reprogram the PLL while the SYSCLK runs from it; "
                "switch to the HSE first"
            )
        if self._hse is None or self._hse.frequency_hz != config.hse_hz:
            self._hse = make_hse(config.hse_hz)
        self._pll.disable()
        self._pll.configure(config.pll, config.hse_hz)
        return self._pll.enable()

    def relock_count(self) -> int:
        """How many expensive PLL re-locks occurred so far."""
        return sum(1 for event in self.history if event.cost.reprogrammed_pll)

    def total_switch_latency_s(self) -> float:
        """Accumulated stall time spent switching clocks."""
        return sum(event.cost.latency_s for event in self.history)

    def reset_history(self) -> None:
        """Clear the recorded transition log (state is kept)."""
        self.history.clear()

    # -- internals ---------------------------------------------------------

    def _materialize(self, target: ClockConfig) -> None:
        """Drive oscillators/PLL into the state ``target`` requires."""
        if target.source is not SysclkSource.HSI:
            if self._hse is None or self._hse.frequency_hz != target.hse_hz:
                self._hse = make_hse(target.hse_hz)
        if target.source is SysclkSource.PLL:
            assert target.pll is not None
            wanted: RetainedPLL = (target.pll, target.hse_hz)
            if self.retained_pll != wanted:
                self._pll.disable()
                self._pll.configure(target.pll, target.hse_hz)
            if not self._pll.locked:
                self._pll.enable()
        self._current = target
