"""Reset and Clock Control (RCC) peripheral model.

The RCC is the stateful owner of the clock tree: it tracks which
oscillators are running, what the PLL is programmed to, and which
source the SYSCLK mux selects.  The DVFS runtime drives DVFS through
:meth:`RCC.apply`, which performs whatever hardware sequence the
transition requires (oscillator start-up, PLL disable/reprogram/
re-lock, mux switch) and returns the incurred latency, mirroring the
`ClockSwitchHSE` / `ClockSwitchPLL` calls in the paper's Listing 1.

Every transition is appended to :attr:`RCC.history` so tests and the
profiler can audit exactly how many expensive re-locks occurred.

Fault tolerance mirrors the real part's **Clock Security System**
(CSS, RM0410 Sec. 5.2.7): when the HSE drops out -- an injectable
fault through the optional :attr:`RCC.fault_clock` hook -- the
hardware falls back to the always-available HSI, raises an NMI (the
:attr:`RCC.css_callback`) and leaves firmware running at the failsafe
frequency instead of dead on a silent clock.  PLL lock timeouts are
survived with a bounded retry-with-backoff
(:class:`~repro.clock.switching.RetryPolicy`) before
:class:`~repro.errors.ClockSwitchError` gives up; every retry's stall
lands in the transition's :class:`~repro.clock.switching.SwitchCost`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..errors import ClockSwitchError
from .configs import ClockConfig, SysclkSource, hsi_config, lfo_config
from .limits import ClockTreeLimits, resolve_limits
from .pll import PLL
from .sources import Oscillator, make_hse, make_hsi
from .switching import RetainedPLL, RetryPolicy, SwitchCost, SwitchCostModel


@dataclass(frozen=True)
class ClockSwitchEvent:
    """One recorded SYSCLK transition.

    Attributes:
        previous: configuration before the switch.
        target: configuration after the switch (on a CSS failsafe this
            is the HSI fallback, not the requested target).
        cost: latency and re-lock information for the transition.
    """

    previous: ClockConfig
    target: ClockConfig
    cost: SwitchCost


@dataclass(frozen=True)
class CSSEvent:
    """One Clock Security System intervention (HSE loss -> HSI).

    Attributes:
        requested: the configuration whose HSE start-up failed.
        failsafe: the HSI configuration the CSS parked the SYSCLK on.
    """

    requested: ClockConfig
    failsafe: ClockConfig


@dataclass
class RCC:
    """Stateful clock controller for one board.

    Attributes:
        cost_model: pricing for mux switches and PLL re-locks.
        initial: configuration the board boots with.  Real STM32 parts
            boot from the HSI; the paper's experiments run from the
            50 MHz HSE, so that is the default here.
        retry: bounded retry-with-backoff policy for PLL lock
            timeouts.
        fault_clock: optional fault-decision source (an object with
            ``hse_dropout()`` / ``pll_lock_timeout()`` hooks, see
            :class:`repro.faults.plan.FaultClock`).  ``None`` keeps
            every sequence byte-identical to the fault-free model.
        css_callback: NMI-style handler invoked with a
            :class:`CSSEvent` whenever the CSS fires.
        limits: clock-tree constraints of the part this RCC drives.
            ``None`` means the STM32F7 constants; other boards pass
            their descriptor's limits so oscillator validation, the
            HSI failsafe frequency and the PLL lock budget all come
            from the right part instead of hard-coded F7 values.
        failsafe: configuration the CSS parks the SYSCLK on when the
            HSE drops out.  Defaults to the part's HSI-direct config.
    """

    cost_model: SwitchCostModel = field(default_factory=SwitchCostModel)
    initial: ClockConfig = field(default_factory=lfo_config)
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    fault_clock: Optional[object] = None
    css_callback: Optional[Callable[[CSSEvent], None]] = None
    limits: Optional[ClockTreeLimits] = None
    failsafe: Optional[ClockConfig] = None

    def __post_init__(self) -> None:
        self._hsi: Oscillator = make_hsi(self.limits)
        self._hse: Optional[Oscillator] = None
        self._pll = PLL(lock_time_s=resolve_limits(self.limits).pll_lock_time_s)
        self._current: ClockConfig = self.initial
        self.history: List[ClockSwitchEvent] = []
        self.css_events: List[CSSEvent] = []
        #: PLL lock retries performed (each burned a lock + backoff).
        self.pll_retries: int = 0
        # Bring the tree into the initial state without charging latency
        # and without fault opportunities: boot-time configuration is
        # outside the measured inference window.
        clock, self.fault_clock = self.fault_clock, None
        self._materialize(self.initial)
        self.fault_clock = clock

    # -- public state ----------------------------------------------------

    @property
    def current(self) -> ClockConfig:
        """The configuration the SYSCLK currently runs from."""
        return self._current

    @property
    def sysclk_hz(self) -> float:
        """Current SYSCLK frequency."""
        return self._current.sysclk_hz

    @property
    def retained_pll(self) -> Optional[RetainedPLL]:
        """What the PLL hardware is programmed to, if anything."""
        if self._pll.settings is None or self._pll.input_hz is None:
            return None
        return (self._pll.settings, self._pll.input_hz)

    @property
    def pll_locked(self) -> bool:
        """Whether the PLL is currently enabled and locked."""
        return self._pll.locked

    @property
    def css_count(self) -> int:
        """How many times the CSS failsafe fired."""
        return len(self.css_events)

    # -- transitions -------------------------------------------------------

    def apply(self, target: ClockConfig) -> SwitchCost:
        """Switch the SYSCLK to ``target``, returning the incurred cost.

        Performs the full hardware sequence and records the event.  A
        no-op switch (target equals the current configuration) costs
        nothing and records nothing.

        Under fault injection the transition may not land on
        ``target``: an HSE dropout triggers the CSS and parks the
        SYSCLK on the HSI failsafe instead (check :attr:`current`
        afterwards), and a persistent PLL lock timeout raises
        :class:`~repro.errors.ClockSwitchError` after the retry budget
        is exhausted.  All retry/failsafe stalls are folded into the
        returned cost.
        """
        cost = self.cost_model.cost(self._current, target, self.retained_pll)
        if target == self._current:
            return cost
        previous = self._current
        extra = self._materialize(
            target, priced_relock=cost.reprogrammed_pll
        )
        if extra > 0.0:
            cost = SwitchCost(
                latency_s=cost.latency_s + extra,
                reprogrammed_pll=cost.reprogrammed_pll,
            )
        event = ClockSwitchEvent(
            previous=previous, target=self._current, cost=cost
        )
        self.history.append(event)
        return cost

    def switch_to_hse(self, hse_hz: Optional[float] = None) -> SwitchCost:
        """Park the SYSCLK on the HSE (the paper's ``ClockSwitchHSE``).

        The PLL keeps running so a later return to HFO is a cheap mux
        move.  When ``hse_hz`` is omitted the currently-running HSE
        frequency is reused.

        Raises:
            ClockSwitchError: if no HSE frequency is known.
        """
        if hse_hz is None:
            if self._hse is None:
                raise ClockSwitchError(
                    "switch_to_hse without a frequency requires a running HSE"
                )
            hse_hz = self._hse.frequency_hz
        return self.apply(
            ClockConfig(
                source=SysclkSource.HSE, hse_hz=hse_hz, limits=self.limits
            )
        )

    def switch_to_pll(self, config: ClockConfig) -> SwitchCost:
        """Select a PLL configuration (the paper's ``ClockSwitchPLL``).

        Raises:
            ClockSwitchError: if ``config`` is not PLL-sourced.
        """
        if config.source is not SysclkSource.PLL:
            raise ClockSwitchError(
                f"switch_to_pll requires a PLL-sourced config, got "
                f"{config.source.value}"
            )
        return self.apply(config)

    def prepare_pll(self, config: ClockConfig) -> float:
        """Reprogram the PLL in the background (SYSCLK unchanged).

        While the SYSCLK runs from the HSE, firmware can disable the
        PLL, program new dividers and re-enable it; the core keeps
        executing through the whole re-lock.  This is how a careful
        LFO/HFO implementation hides the ~200 us re-lock inside a
        memory-bound segment: the lock completes while the buffer copy
        proceeds at the LFO clock.

        Returns:
            The lock latency that elapses in the background (0.0 when
            the PLL is already programmed and locked as requested).
            Lock-timeout retries extend it by their backoff + re-lock
            stalls.  If the HSE drops out while (re)starting for the
            PLL input, the CSS fires, the PLL stays unprogrammed and
            0.0 is returned -- the following :meth:`apply` pays the
            full (foreground) re-lock if the HSE recovers.

        Raises:
            ClockSwitchError: if ``config`` is not PLL-sourced, the
                SYSCLK currently runs *from* the PLL (hardware forbids
                reprogramming the active SYSCLK source), or the PLL
                exhausts its lock-retry budget.
        """
        if config.source is not SysclkSource.PLL:
            raise ClockSwitchError("prepare_pll requires a PLL-sourced config")
        assert config.pll is not None
        wanted: RetainedPLL = (config.pll, config.hse_hz)
        if self.retained_pll == wanted and self._pll.locked:
            return 0.0
        if self._current.source is SysclkSource.PLL:
            raise ClockSwitchError(
                "cannot reprogram the PLL while the SYSCLK runs from it; "
                "switch to the HSE first"
            )
        if not self._ensure_hse(config.hse_hz):
            self._css_failsafe(config)
            return 0.0
        self._pll.disable()
        self._pll.configure(config.pll, config.hse_hz)
        return self._lock_pll()

    def relock_count(self) -> int:
        """How many expensive PLL re-locks occurred so far."""
        return sum(1 for event in self.history if event.cost.reprogrammed_pll)

    def total_switch_latency_s(self) -> float:
        """Accumulated stall time spent switching clocks."""
        return sum(event.cost.latency_s for event in self.history)

    def reset_history(self) -> None:
        """Clear the recorded transition log (state is kept)."""
        self.history.clear()

    # -- internals ---------------------------------------------------------

    def _ensure_hse(self, hse_hz: float) -> bool:
        """(Re)start the HSE; False when the fault stream drops it.

        Every call is one dropout opportunity: the oscillator either
        keeps running / starts cleanly, or it fails and the caller must
        take the CSS failsafe path.
        """
        if self.fault_clock is not None and self.fault_clock.hse_dropout():
            self._hse = None
            return False
        if self._hse is None or self._hse.frequency_hz != hse_hz:
            self._hse = make_hse(hse_hz, self.limits)
        return True

    def _css_failsafe(self, requested: ClockConfig) -> float:
        """HSE loss: park on the failsafe, drop the PLL, raise the NMI.

        Returns the failsafe mux stall (the CSS switchover is a
        hardware mux move, same order as any other handshake).  The
        failsafe is the part's internal-oscillator config unless the
        board overrides it.
        """
        self._pll.disable()
        failsafe = (
            self.failsafe if self.failsafe is not None
            else hsi_config(self.limits)
        )
        event = CSSEvent(requested=requested, failsafe=failsafe)
        self.css_events.append(event)
        self._current = failsafe
        if self.css_callback is not None:
            self.css_callback(event)
        return self.cost_model.mux_switch_s

    def _lock_pll(self) -> float:
        """Enable the PLL and wait out the lock, retrying timeouts.

        Returns the total elapsed lock latency (first lock plus any
        backoff + re-lock retries); 0.0 when the PLL was already
        enabled and locked.

        Raises:
            ClockSwitchError: when the lock never sticks within the
                retry budget.  The PLL is left disabled.
        """
        latency = self._pll.enable()
        if latency == 0.0:
            return 0.0
        fault = self.fault_clock
        retries = 0
        while fault is not None and fault.pll_lock_timeout():
            self._pll.disable()
            if retries >= self.retry.max_retries:
                raise ClockSwitchError(
                    f"PLL failed to lock after {retries + 1} attempts "
                    f"(retry budget {self.retry.max_retries} exhausted)"
                )
            latency += self.retry.backoff_s(retries)
            retries += 1
            self.pll_retries += 1
            latency += self._pll.enable()
        return latency

    def _materialize(
        self, target: ClockConfig, priced_relock: bool = False
    ) -> float:
        """Drive oscillators/PLL into the state ``target`` requires.

        Returns the *extra* stall beyond what the cost model already
        priced for this transition: retry backoffs, repeated lock
        windows and the CSS switchover.  Fault-free this is exactly
        0.0, keeping :meth:`apply` bit-identical to the nominal model.

        Args:
            priced_relock: whether the caller's base cost already
                includes one nominal lock window (so only the excess
                is charged here).
        """
        extra = 0.0
        if target.source is not SysclkSource.HSI:
            if not self._ensure_hse(target.hse_hz):
                return self._css_failsafe(target)
        if target.source is SysclkSource.PLL:
            assert target.pll is not None
            wanted: RetainedPLL = (target.pll, target.hse_hz)
            if self.retained_pll != wanted:
                self._pll.disable()
                self._pll.configure(target.pll, target.hse_hz)
            if not self._pll.locked:
                lock = self._lock_pll()
                priced = self._pll.lock_time_s if priced_relock else 0.0
                extra += max(0.0, lock - priced)
        self._current = target
        return extra
