"""Command-line interface for the DAE+DVFS toolchain.

Exposes the end-to-end flow without writing Python::

    repro-dvfs summary mbv2
    repro-dvfs optimize vww --qos-percent 30 --output vww.plan.json
    repro-dvfs deploy vww --plan vww.plan.json --timeline vww.csv
    repro-dvfs codegen vww --plan vww.plan.json --outdir firmware/
    repro-dvfs compare pd --qos-percents 10 30 50
    repro-dvfs microbench
    repro-dvfs lifetime vww --qos-percent 30 --capacity-mah 1200
    repro-dvfs fleet --devices 1000 --seed 0 --json fleet.json
    repro-dvfs chaos --devices 64 --fault-seed 7 --json chaos.json

Model names: ``vww``, ``pd``, ``mbv2`` (the paper's suite) and
``tiny`` (a small test CNN).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional

from .analysis import (
    Battery,
    DutyCycle,
    estimate_lifetime,
    run_addition_loop,
    write_timeline_csv,
)
from .clock import enumerate_configs
from .engine import load_plan, save_plan
from .errors import ReproError
from .nn import PAPER_MODELS, build_tiny_test_model
from .nn.graph import Model
from .optimize import QoSLevel
from .pipeline import DAEDVFSPipeline
from .units import MHZ, to_mhz, to_mj, to_ms

MODEL_BUILDERS: Dict[str, Callable[[], Model]] = {
    **PAPER_MODELS,
    "tiny": build_tiny_test_model,
}


def _build_model(name: str) -> Model:
    try:
        return MODEL_BUILDERS[name]()
    except KeyError:
        raise SystemExit(
            f"unknown model {name!r}; choose from {sorted(MODEL_BUILDERS)}"
        )


def _qos_level(args: argparse.Namespace) -> Optional[QoSLevel]:
    if getattr(args, "qos_percent", None) is not None:
        return QoSLevel(
            name=f"{args.qos_percent}%", slack=args.qos_percent / 100.0
        )
    return None


def _qos_seconds(args: argparse.Namespace) -> Optional[float]:
    if getattr(args, "qos_ms", None) is not None:
        return args.qos_ms * 1e-3
    return None


def cmd_summary(args: argparse.Namespace) -> int:
    model = _build_model(args.model)
    print(model.summary())
    print(
        f"DAE-eligible conv layers: {model.dae_layer_fraction():.0%} "
        f"({len(model.dae_nodes())}/{len(model.conv_nodes())})"
    )
    return 0


def cmd_optimize(args: argparse.Namespace) -> int:
    model = _build_model(args.model)
    pipeline = DAEDVFSPipeline(solver=args.solver)
    result = pipeline.optimize(
        model, qos_level=_qos_level(args), qos_s=_qos_seconds(args)
    )
    plan = result.plan
    if args.harmonize:
        plan = pipeline.harmonize(model, result).plan
    print(
        f"baseline {to_ms(result.baseline_latency_s):.3f} ms, "
        f"budget {to_ms(result.qos_s):.3f} ms"
    )
    for node_id in sorted(plan.layer_plans):
        lp = plan.layer_plans[node_id]
        layer = model.nodes[node_id - 1].layer
        print(
            f"  [{node_id:3d}] {layer.name:24s} g={lp.granularity:2d} "
            f"@ {to_mhz(lp.hfo.sysclk_hz):5.0f} MHz"
        )
    if args.output:
        save_plan(plan, args.output)
        print(f"plan written to {args.output}")
    return 0


def cmd_deploy(args: argparse.Namespace) -> int:
    model = _build_model(args.model)
    pipeline = DAEDVFSPipeline()
    plan = load_plan(args.plan)
    report = pipeline.deploy(model, plan, qos_s=_qos_seconds(args))
    print(report.summary())
    print(f"QoS met: {report.met_qos}")
    if args.timeline:
        write_timeline_csv(report, args.timeline)
        print(f"timeline written to {args.timeline}")
    return 0


def cmd_codegen(args: argparse.Namespace) -> int:
    import pathlib

    from .codegen import generate_firmware

    model = _build_model(args.model)
    plan = load_plan(args.plan)
    outdir = pathlib.Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    for filename, contents in generate_firmware(model, plan).items():
        path = outdir / filename
        path.write_text(contents)
        print(f"wrote {path}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    model = _build_model(args.model)
    pipeline = DAEDVFSPipeline()
    print(
        f"{'QoS':>6s} {'TinyEngine':>11s} {'TE+gating':>10s} {'ours':>9s}"
        f" {'vs TE':>7s} {'vs CG':>7s}"
    )
    for percent in args.qos_percents:
        level = QoSLevel(name=f"{percent}%", slack=percent / 100.0)
        row = pipeline.compare(model, level)
        print(
            f"{percent:5d}% {to_mj(row.tinyengine.energy_j):9.3f}mJ"
            f" {to_mj(row.clock_gated.energy_j):8.3f}mJ"
            f" {to_mj(row.ours.energy_j):7.3f}mJ"
            f" {row.savings_vs_tinyengine:7.1%}"
            f" {row.savings_vs_clock_gated:7.1%}"
        )
    return 0


def cmd_microbench(args: argparse.Namespace) -> int:
    pipeline = DAEDVFSPipeline()
    configs = enumerate_configs(
        hse_choices=[16 * MHZ, 25 * MHZ, 50 * MHZ],
        pllm_choices=[8, 16, 25, 50],
        plln_choices=[75, 100, 150, 216, 336, 432],
        include_hse_direct=True,
    )
    results = sorted(
        (run_addition_loop(pipeline.board, c) for c in configs),
        key=lambda r: (r.config.sysclk_hz, r.power_w),
    )
    for r in results:
        print(
            f"{r.config.describe():>56s}  {r.power_w * 1e3:7.1f} mW  "
            f"{to_ms(r.latency_s):7.3f} ms/Mops"
        )
    return 0


def cmd_stream(args: argparse.Namespace) -> int:
    from .engine import IdlePolicy, run_stream
    from .power import ThermalModelParams, thermal_replay

    model = _build_model(args.model)
    pipeline = DAEDVFSPipeline()
    level = _qos_level(args) or QoSLevel(name="30%", slack=0.30)
    result = pipeline.optimize(model, qos_level=level)
    policy = IdlePolicy(args.idle)
    stream = run_stream(
        pipeline.runtime, model, result.plan,
        period_s=result.qos_s, windows=args.windows, idle_policy=policy,
    )
    print(
        f"{stream.windows} windows of {to_ms(stream.period_s):.2f} ms "
        f"({policy.value} idle): {stream.total_energy_j * 1e3:.2f} mJ, "
        f"avg {stream.average_power_w * 1e3:.1f} mW, "
        f"{stream.deadline_misses} deadline misses"
    )
    params = ThermalModelParams(
        leakage_ref_w=pipeline.board.power_model.params.p_mcu_leakage_w
    )
    replay = thermal_replay(stream.power_trace(), params, max_step_s=5e-3)
    print(
        f"thermal: peak {replay.peak_temperature_c:.1f} C, "
        f"leakage correction {replay.leakage_correction:+.2%}"
    )
    return 0


def cmd_hotspots(args: argparse.Namespace) -> int:
    from .analysis import identify_hotspots

    model = _build_model(args.model)
    pipeline = DAEDVFSPipeline()
    hotspots = identify_hotspots(
        pipeline.board, model, top_k=args.top
    )
    print(f"{'layer':>26s} {'kind':>10s} {'latency':>9s} {'share':>6s}"
          f" {'DAE':>4s}")
    for h in hotspots:
        print(
            f"{h.layer_name:>26s} {h.layer_kind.value:>10s}"
            f" {to_ms(h.latency_s):7.3f}ms {h.latency_share:6.1%}"
            f" {'yes' if h.supports_dae else 'no':>4s}"
        )
    return 0


def cmd_selftest(args: argparse.Namespace) -> int:
    from .selftest import run_selftest

    result = run_selftest()
    print(result.summary())
    return 0 if result.ok else 1


def cmd_lifetime(args: argparse.Namespace) -> int:
    model = _build_model(args.model)
    pipeline = DAEDVFSPipeline()
    level = _qos_level(args) or QoSLevel(name="30%", slack=0.30)
    row = pipeline.compare(model, level)
    battery = Battery(capacity_mah=args.capacity_mah)
    duty = DutyCycle(windows_per_hour=args.windows_per_hour)
    print(
        f"battery {battery.capacity_mah:.0f} mAh @ {battery.voltage_v:.1f} V, "
        f"{duty.windows_per_hour:.0f} inferences/hour:"
    )
    for name, report in (
        ("TinyEngine", row.tinyengine),
        ("TinyEngine + gating", row.clock_gated),
        ("DAE + DVFS (ours)", row.ours),
    ):
        life = estimate_lifetime(battery, report, duty)
        print(
            f"  {name:20s} {life.days:8.1f} days "
            f"({life.energy_per_hour_j:.3f} J/h)"
        )
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    import json

    from .fleet import (
        FleetScheduler,
        GovernorConfig,
        aggregate_fleet,
        sample_fleet,
        supervise_device,
    )

    model = _build_model(args.model)
    level = _qos_level(args) or QoSLevel(name="30%", slack=0.30)
    fleet = sample_fleet(args.devices, seed=args.seed)
    scheduler = FleetScheduler(
        model, qos_level=level, max_workers=args.workers
    )
    results = scheduler.run(fleet, pooled=not args.serial)
    governed = {}
    if args.epochs > 0:
        config = GovernorConfig(epochs=args.epochs)
        for result in results:
            if result.error is None:
                pipeline = scheduler.pipeline_for(result.profile)
                governed[result.device_id] = supervise_device(
                    pipeline, result.profile, model,
                    result.optimized, config,
                )
    qos_s = next(
        (r.optimized.qos_s for r in results if r.error is None), 0.0
    )
    report = aggregate_fleet(model, qos_s, results, governed)
    print(report.summary())
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        print(f"fleet report written to {args.json}")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from .faults import ChaosConfig, FaultPlan, run_campaign

    model = _build_model(args.model)
    fault_plan = FaultPlan(
        seed=args.fault_seed,
        hse_dropout_rate=args.hse_dropout_rate,
        pll_lock_timeout_rate=args.pll_timeout_rate,
        sensor_dropout_rate=args.sensor_dropout_rate,
        sensor_stuck_rate=args.sensor_stuck_rate,
        sensor_nack_rate=args.sensor_nack_rate,
        brownout_rate=args.brownout_rate,
        watchdog_rate=args.watchdog_rate,
    )
    config = ChaosConfig(
        devices=args.devices,
        seed=args.seed,
        epochs=args.epochs,
        max_workers=args.workers,
    )
    report = run_campaign(model, fault_plan, config)
    print(report.summary())
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        print(f"chaos report written to {args.json}")
    return 0


def make_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-dvfs",
        description="DAE-enabled DVFS for tinyML on STM32 (DATE 2024 repro)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_model(p):
        p.add_argument("model", help=f"one of {sorted(MODEL_BUILDERS)}")

    def add_qos(p, required=False):
        group = p.add_mutually_exclusive_group(required=required)
        group.add_argument(
            "--qos-percent", type=float,
            help="latency slack over the TinyEngine baseline, in percent",
        )
        group.add_argument(
            "--qos-ms", type=float, help="absolute latency budget in ms"
        )

    p = sub.add_parser("summary", help="print a model's layer table")
    add_model(p)
    p.set_defaults(func=cmd_summary)

    p = sub.add_parser("optimize", help="produce a deployment plan")
    add_model(p)
    add_qos(p, required=True)
    p.add_argument("--solver", choices=("dp", "greedy"), default="dp")
    p.add_argument("--harmonize", action="store_true",
                   help="run the re-lock reduction pass on the plan")
    p.add_argument("--output", "-o", help="write the plan JSON here")
    p.set_defaults(func=cmd_optimize)

    p = sub.add_parser("deploy", help="execute a saved plan")
    add_model(p)
    add_qos(p)
    p.add_argument("--plan", required=True, help="plan JSON to execute")
    p.add_argument("--timeline", help="write a CSV execution timeline here")
    p.set_defaults(func=cmd_deploy)

    p = sub.add_parser(
        "codegen", help="emit C firmware scaffolding from a saved plan"
    )
    add_model(p)
    p.add_argument("--plan", required=True, help="plan JSON to translate")
    p.add_argument("--outdir", default=".", help="output directory")
    p.set_defaults(func=cmd_codegen)

    p = sub.add_parser("compare", help="ours vs the TinyEngine baselines")
    add_model(p)
    p.add_argument(
        "--qos-percents", type=int, nargs="+", default=[10, 30, 50]
    )
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser(
        "microbench", help="Fig. 2 style clock/power characterization"
    )
    p.set_defaults(func=cmd_microbench)

    p = sub.add_parser(
        "stream", help="periodic-window streaming + thermal replay"
    )
    add_model(p)
    add_qos(p)
    p.add_argument("--windows", type=int, default=100)
    p.add_argument(
        "--idle", choices=("hot", "gated", "stop"), default="gated"
    )
    p.set_defaults(func=cmd_stream)

    p = sub.add_parser(
        "hotspots", help="rank layers by baseline latency (Step 1A)"
    )
    add_model(p)
    p.add_argument("--top", type=int, default=10)
    p.set_defaults(func=cmd_hotspots)

    p = sub.add_parser("selftest", help="fast installation sanity sweep")
    p.set_defaults(func=cmd_selftest)

    p = sub.add_parser(
        "fleet",
        help="plan a heterogeneous device fleet and supervise drift",
    )
    p.add_argument(
        "model", nargs="?", default="tiny",
        help=f"one of {sorted(MODEL_BUILDERS)} (default: tiny)",
    )
    add_qos(p)
    p.add_argument(
        "--devices", type=int, default=100, help="fleet size"
    )
    p.add_argument(
        "--seed", type=int, default=0,
        help="root seed of the device-variation sampler",
    )
    p.add_argument(
        "--workers", type=int, default=4, help="planning thread-pool width"
    )
    p.add_argument(
        "--serial", action="store_true",
        help="plan on the calling thread instead of the pool",
    )
    p.add_argument(
        "--epochs", type=int, default=10,
        help="governor telemetry epochs per device (0 disables)",
    )
    p.add_argument("--json", help="write the full fleet report JSON here")
    p.set_defaults(func=cmd_fleet)

    p = sub.add_parser(
        "chaos",
        help="seeded fault-injection campaign over a fleet",
    )
    p.add_argument(
        "model", nargs="?", default="tiny",
        help=f"one of {sorted(MODEL_BUILDERS)} (default: tiny)",
    )
    p.add_argument("--devices", type=int, default=64, help="fleet size")
    p.add_argument(
        "--seed", type=int, default=0,
        help="device-variation sampling seed",
    )
    p.add_argument(
        "--fault-seed", type=int, default=0,
        help="root seed of the fault streams",
    )
    p.add_argument(
        "--epochs", type=int, default=4,
        help="governor telemetry epochs per device",
    )
    p.add_argument(
        "--workers", type=int, default=4, help="planning thread-pool width"
    )
    p.add_argument(
        "--hse-dropout-rate", type=float, default=0.02,
        help="HSE failure probability per oscillator (re)start",
    )
    p.add_argument(
        "--pll-timeout-rate", type=float, default=0.05,
        help="PLL lock-timeout probability per lock wait",
    )
    p.add_argument(
        "--sensor-dropout-rate", type=float, default=0.05,
        help="lost INA219 conversion probability per sample",
    )
    p.add_argument(
        "--sensor-stuck-rate", type=float, default=0.02,
        help="frozen power-register probability per measurement",
    )
    p.add_argument(
        "--sensor-nack-rate", type=float, default=0.02,
        help="I2C NACK probability per measurement",
    )
    p.add_argument(
        "--brownout-rate", type=float, default=0.05,
        help="supply-sag probability per telemetry epoch",
    )
    p.add_argument(
        "--watchdog-rate", type=float, default=0.002,
        help="watchdog-reset probability per layer checkpoint",
    )
    p.add_argument("--json", help="write the survival report JSON here")
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser("lifetime", help="battery-lifetime projection")
    add_model(p)
    add_qos(p)
    p.add_argument("--capacity-mah", type=float, default=1200.0)
    p.add_argument("--windows-per-hour", type=float, default=60.0)
    p.set_defaults(func=cmd_lifetime)

    return parser


def main(argv: Optional[list] = None) -> int:
    """CLI entry point."""
    args = make_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
