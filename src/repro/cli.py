"""Command-line interface for the DAE+DVFS toolchain.

Exposes the end-to-end flow without writing Python::

    repro-dvfs summary mbv2
    repro-dvfs optimize vww --qos-percent 30 --output vww.plan.json
    repro-dvfs deploy vww --plan vww.plan.json --timeline vww.csv
    repro-dvfs codegen vww --plan vww.plan.json --outdir firmware/
    repro-dvfs compare pd --qos-percents 10 30 50
    repro-dvfs microbench
    repro-dvfs lifetime vww --qos-percent 30 --capacity-mah 1200
    repro-dvfs fleet --devices 1000 --seed 0 --json fleet.json
    repro-dvfs chaos --devices 64 --fault-seed 7 --json chaos.json
    repro-dvfs serve --port 7070
    repro-dvfs loadgen --requests 64 --concurrency 8 --json -
    repro-dvfs plan tiny --qos-percent 30 --trace plan.trace.json
    repro-dvfs obs plan.trace.jsonl --chrome plan.chrome.json
    repro-dvfs fleet --devices 64 --metrics fleet.metrics.json
    repro-dvfs monitor fleet.metrics.json --slo --lint --prom
    repro-dvfs boards --show nucleo-n657x0 --json
    repro-dvfs crossboard tiny --qos-percent 30 --json
    repro-dvfs fleet --devices 64 --board nucleo-f767zi --board nucleo-n657x0

Model names: ``vww``, ``pd``, ``mbv2`` (the paper's suite) and
``tiny`` (a small test CNN).

The ``--json`` contract (optimize / compare / lifetime / selftest /
fleet / chaos / loadgen): when the flag is present, stdout carries
*only* the machine-parseable JSON payload -- human-readable progress
moves to stderr -- so ``repro-dvfs ... --json | jq .`` always works.
``--json PATH`` additionally writes the same payload to ``PATH``
(``-`` means stdout only).

``--trace PATH`` (plan / fleet / chaos / serve) installs the
:mod:`repro.obs` tracer for the run and writes the span trace to
``PATH`` on exit -- ``.jsonl`` for the native line format, anything
else for Chrome trace JSON (load it at https://ui.perfetto.dev).  In
``--json`` mode the payload gains a ``trace`` summary (path, span
count, deterministic digest) *after* the core digest is computed, so
tracing never perturbs a payload's own digest.

``--metrics PATH`` (plan / fleet / chaos / scenario / serve) writes
the process's final metrics-registry snapshot to ``PATH`` as
canonical JSON with its sha256 digest, symmetric to ``--trace``: the
``metrics`` summary also attaches to a ``--json`` payload only after
the core digest is computed.  ``repro-dvfs monitor`` consumes these
files (or a live server's ``metrics`` op via ``--connect``): it
tails the registry, rolls two snapshots into windowed deltas, renders
Prometheus exposition text, lints it, and judges the default SLOs.

Exit codes: 0 on success; 1 when the command failed with a
:class:`~repro.errors.ReproError` (infeasible QoS, bad plan file,
overload, ...) -- in ``--json`` mode the error is also emitted on
stdout as ``{"ok": false, "error": {"kind": ..., "message": ...}}`` --
or when a check-style command (``selftest``, ``loadgen``) found a
failing check; 2 on argparse usage errors (argparse's convention).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Callable, Dict, Optional

from .analysis import (
    Battery,
    DutyCycle,
    estimate_lifetime,
    run_addition_loop,
    write_timeline_csv,
)
from .clock import enumerate_configs
from .engine import load_plan, save_plan
from .errors import ReproError
from .nn import PAPER_MODELS, build_tiny_test_model
from .nn.graph import Model
from .optimize import QoSLevel
from .pipeline import DAEDVFSPipeline
from .units import MHZ, to_mhz, to_mj, to_ms

MODEL_BUILDERS: Dict[str, Callable[[], Model]] = {
    **PAPER_MODELS,
    "tiny": build_tiny_test_model,
}


def _build_model(name: str) -> Model:
    try:
        return MODEL_BUILDERS[name]()
    except KeyError:
        raise SystemExit(
            f"unknown model {name!r}; choose from {sorted(MODEL_BUILDERS)}"
        )


def _qos_level(args: argparse.Namespace) -> Optional[QoSLevel]:
    if getattr(args, "qos_percent", None) is not None:
        return QoSLevel(
            name=f"{args.qos_percent}%", slack=args.qos_percent / 100.0
        )
    return None


def _qos_seconds(args: argparse.Namespace) -> Optional[float]:
    if getattr(args, "qos_ms", None) is not None:
        return args.qos_ms * 1e-3
    return None


def _json_mode(args: argparse.Namespace) -> bool:
    return getattr(args, "json", None) is not None


def _out(args: argparse.Namespace):
    """Human-readable stream: stderr once ``--json`` owns stdout."""
    return sys.stderr if _json_mode(args) else sys.stdout


def _emit_json(args: argparse.Namespace, payload: Dict[str, Any]) -> None:
    """Honor the ``--json`` contract for one payload.

    Stdout always gets the JSON (and nothing else); a path argument
    other than ``-`` gets a copy on disk.
    """
    text = json.dumps(payload, indent=2, sort_keys=True)
    if args.json != "-":
        with open(args.json, "w") as fh:
            fh.write(text + "\n")
        print(f"report written to {args.json}", file=sys.stderr)
    print(text)


def _add_json_flag(p: argparse.ArgumentParser, what: str) -> None:
    p.add_argument(
        "--json", nargs="?", const="-", metavar="PATH",
        help=(
            f"emit the {what} as JSON on stdout (human text moves to"
            " stderr); with PATH, also write it there"
        ),
    )


def _add_trace_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--trace", metavar="PATH",
        help=(
            "record an execution trace and write it here (.jsonl for"
            " the native format, anything else for Chrome/Perfetto"
            " JSON)"
        ),
    )


def _trace_begin(args: argparse.Namespace):
    """Install a process tracer when ``--trace PATH`` was given."""
    if not getattr(args, "trace", None):
        return None
    from .obs.tracing import Tracer, install

    return install(Tracer())


def _trace_finish(
    args: argparse.Namespace,
    tracer,
    payload: Optional[Dict[str, Any]] = None,
) -> Optional[Dict[str, Any]]:
    """Uninstall the tracer, write the trace, attach the summary.

    The summary lands under ``payload["trace"]`` *after* the caller
    computed any content digest, so tracing never changes a payload's
    own digest.
    """
    if tracer is None:
        return None
    from .obs.export import write_trace
    from .obs.tracing import uninstall

    uninstall()
    summary = write_trace(tracer, args.trace)
    print(
        f"trace written to {summary['path']} "
        f"({summary['format']}, {summary['spans']} spans, "
        f"digest {summary['digest'][:12]}...)",
        file=_out(args),
    )
    if payload is not None:
        payload["trace"] = summary
    return summary


def _add_metrics_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--metrics", metavar="PATH",
        help=(
            "write the final metrics-registry snapshot here as"
            " canonical JSON with its sha256 digest (inspect with"
            " `repro-dvfs monitor PATH`)"
        ),
    )


def _metrics_finish(
    args: argparse.Namespace,
    payload: Optional[Dict[str, Any]] = None,
) -> Optional[Dict[str, Any]]:
    """Write the registry snapshot when ``--metrics PATH`` was given.

    Mirrors :func:`_trace_finish`: the ``metrics`` summary lands under
    ``payload["metrics"]`` *after* the caller computed any content
    digest, so metrics capture never changes a payload's own digest.
    """
    if not getattr(args, "metrics", None):
        return None
    from .obs.registry import get_registry, snapshot_digest

    snapshot = get_registry().snapshot()
    digest = snapshot_digest(snapshot)
    with open(args.metrics, "w", encoding="utf-8") as fh:
        fh.write(
            json.dumps(
                {"registry": snapshot, "digest": digest},
                sort_keys=True,
                separators=(",", ":"),
            )
        )
        fh.write("\n")
    summary = {
        "path": args.metrics,
        "digest": digest,
        "families": {
            section: len(snapshot.get(section, {}))
            for section in ("counters", "gauges", "histograms")
        },
    }
    print(
        f"metrics written to {args.metrics} "
        f"(digest {digest[:12]}...)",
        file=_out(args),
    )
    if payload is not None:
        payload["metrics"] = summary
    return summary


def cmd_summary(args: argparse.Namespace) -> int:
    model = _build_model(args.model)
    print(model.summary())
    print(
        f"DAE-eligible conv layers: {model.dae_layer_fraction():.0%} "
        f"({len(model.dae_nodes())}/{len(model.conv_nodes())})"
    )
    return 0


def cmd_optimize(args: argparse.Namespace) -> int:
    model = _build_model(args.model)
    if getattr(args, "board", None):
        from .boards import build_board

        pipeline = DAEDVFSPipeline(
            board=build_board(args.board), solver=args.solver
        )
    else:
        pipeline = DAEDVFSPipeline(solver=args.solver)
    result = pipeline.optimize(
        model, qos_level=_qos_level(args), qos_s=_qos_seconds(args)
    )
    plan = result.plan
    if args.harmonize:
        plan = pipeline.harmonize(model, result).plan
    out = _out(args)
    print(
        f"baseline {to_ms(result.baseline_latency_s):.3f} ms, "
        f"budget {to_ms(result.qos_s):.3f} ms",
        file=out,
    )
    for node_id in sorted(plan.layer_plans):
        lp = plan.layer_plans[node_id]
        layer = model.nodes[node_id - 1].layer
        print(
            f"  [{node_id:3d}] {layer.name:24s} g={lp.granularity:2d} "
            f"@ {to_mhz(lp.hfo.sysclk_hz):5.0f} MHz",
            file=out,
        )
    if args.output:
        save_plan(plan, args.output)
        print(f"plan written to {args.output}", file=out)
    if _json_mode(args):
        from .engine.serialize import plan_to_dict
        from .serve.protocol import plan_digest

        payload = {
            "model": args.model,
            "baseline_latency_s": result.baseline_latency_s,
            "budget_s": result.qos_s,
            "fixed_overhead_s": result.fixed_overhead_s,
            "harmonized": bool(args.harmonize),
            "plan": plan_to_dict(plan),
        }
        # Key present only under --board: default payloads (and their
        # pinned digests) are unchanged by the board registry.
        if getattr(args, "board", None):
            payload["board"] = args.board
        payload["digest"] = plan_digest(payload)
        _emit_json(args, payload)
    return 0


def cmd_deploy(args: argparse.Namespace) -> int:
    model = _build_model(args.model)
    pipeline = DAEDVFSPipeline()
    plan = load_plan(args.plan)
    report = pipeline.deploy(model, plan, qos_s=_qos_seconds(args))
    print(report.summary())
    print(f"QoS met: {report.met_qos}")
    if args.timeline:
        write_timeline_csv(report, args.timeline)
        print(f"timeline written to {args.timeline}")
    return 0


def cmd_codegen(args: argparse.Namespace) -> int:
    import pathlib

    from .codegen import generate_firmware

    model = _build_model(args.model)
    plan = load_plan(args.plan)
    outdir = pathlib.Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    for filename, contents in generate_firmware(model, plan).items():
        path = outdir / filename
        path.write_text(contents)
        print(f"wrote {path}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    model = _build_model(args.model)
    pipeline = DAEDVFSPipeline()
    out = _out(args)
    print(
        f"{'QoS':>6s} {'TinyEngine':>11s} {'TE+gating':>10s} {'ours':>9s}"
        f" {'vs TE':>7s} {'vs CG':>7s}",
        file=out,
    )
    rows = []
    for percent in args.qos_percents:
        level = QoSLevel(name=f"{percent}%", slack=percent / 100.0)
        row = pipeline.compare(model, level)
        print(
            f"{percent:5d}% {to_mj(row.tinyengine.energy_j):9.3f}mJ"
            f" {to_mj(row.clock_gated.energy_j):8.3f}mJ"
            f" {to_mj(row.ours.energy_j):7.3f}mJ"
            f" {row.savings_vs_tinyengine:7.1%}"
            f" {row.savings_vs_clock_gated:7.1%}",
            file=out,
        )
        rows.append(
            {
                "qos_percent": percent,
                "tinyengine_j": row.tinyengine.energy_j,
                "clock_gated_j": row.clock_gated.energy_j,
                "ours_j": row.ours.energy_j,
                "savings_vs_tinyengine": row.savings_vs_tinyengine,
                "savings_vs_clock_gated": row.savings_vs_clock_gated,
                "met_qos": row.ours.met_qos,
            }
        )
    if _json_mode(args):
        _emit_json(args, {"model": args.model, "rows": rows})
    return 0


def cmd_microbench(args: argparse.Namespace) -> int:
    pipeline = DAEDVFSPipeline()
    configs = enumerate_configs(
        hse_choices=[16 * MHZ, 25 * MHZ, 50 * MHZ],
        pllm_choices=[8, 16, 25, 50],
        plln_choices=[75, 100, 150, 216, 336, 432],
        include_hse_direct=True,
    )
    results = sorted(
        (run_addition_loop(pipeline.board, c) for c in configs),
        key=lambda r: (r.config.sysclk_hz, r.power_w),
    )
    for r in results:
        print(
            f"{r.config.describe():>56s}  {r.power_w * 1e3:7.1f} mW  "
            f"{to_ms(r.latency_s):7.3f} ms/Mops"
        )
    return 0


def cmd_stream(args: argparse.Namespace) -> int:
    from .engine import IdlePolicy, run_stream
    from .power import ThermalModelParams, thermal_replay

    model = _build_model(args.model)
    pipeline = DAEDVFSPipeline()
    level = _qos_level(args) or QoSLevel(name="30%", slack=0.30)
    result = pipeline.optimize(model, qos_level=level)
    policy = IdlePolicy(args.idle)
    stream = run_stream(
        pipeline.runtime, model, result.plan,
        period_s=result.qos_s, windows=args.windows, idle_policy=policy,
    )
    print(
        f"{stream.windows} windows of {to_ms(stream.period_s):.2f} ms "
        f"({policy.value} idle): {stream.total_energy_j * 1e3:.2f} mJ, "
        f"avg {stream.average_power_w * 1e3:.1f} mW, "
        f"{stream.deadline_misses} deadline misses"
    )
    params = ThermalModelParams(
        leakage_ref_w=pipeline.board.power_model.params.p_mcu_leakage_w
    )
    replay = thermal_replay(stream.power_trace(), params, max_step_s=5e-3)
    print(
        f"thermal: peak {replay.peak_temperature_c:.1f} C, "
        f"leakage correction {replay.leakage_correction:+.2%}"
    )
    return 0


def cmd_hotspots(args: argparse.Namespace) -> int:
    from .analysis import identify_hotspots

    model = _build_model(args.model)
    pipeline = DAEDVFSPipeline()
    hotspots = identify_hotspots(
        pipeline.board, model, top_k=args.top
    )
    print(f"{'layer':>26s} {'kind':>10s} {'latency':>9s} {'share':>6s}"
          f" {'DAE':>4s}")
    for h in hotspots:
        print(
            f"{h.layer_name:>26s} {h.layer_kind.value:>10s}"
            f" {to_ms(h.latency_s):7.3f}ms {h.latency_share:6.1%}"
            f" {'yes' if h.supports_dae else 'no':>4s}"
        )
    return 0


def cmd_boards(args: argparse.Namespace) -> int:
    from .boards import DEFAULT_BOARD, board_names, get_spec

    if args.show:
        spec = get_spec(args.show)
        data = spec.to_dict()
        data["digest"] = spec.digest()
        data["default"] = spec.name == DEFAULT_BOARD
        if _json_mode(args):
            _emit_json(args, data)
            return 0
        print(f"{spec.name}: {spec.title}")
        print(f"  core {spec.core}, family {spec.family}")
        print(f"  {spec.description}")
        ladder = ", ".join(
            f"{hz / 1e6:g}" for hz in spec.sysclk_ladder_hz()
        )
        print(
            f"  LFO {spec.lfo_hz / 1e6:g} MHz, HFO ladder"
            f" [{ladder}] MHz"
        )
        if spec.npu is not None:
            print(
                f"  NPU {spec.npu.name}:"
                f" {spec.npu.throughput_gops():.0f} GOPS @"
                f" {spec.npu.active_power_w * 1e3:g} mW"
            )
        if spec.calibration:
            print(f"  calibration: {spec.calibration}")
        print(f"  digest: {spec.digest()}")
        return 0
    rows = []
    for name in board_names():
        spec = get_spec(name)
        ladder = spec.sysclk_ladder_hz()
        rows.append(
            {
                "name": spec.name,
                "title": spec.title,
                "core": spec.core,
                "family": spec.family,
                "sysclk_max_mhz": max(ladder) / 1e6 if ladder else 0.0,
                "npu": spec.npu.name if spec.npu is not None else None,
                "default": spec.name == DEFAULT_BOARD,
                "digest": spec.digest(),
            }
        )
    if _json_mode(args):
        _emit_json(args, {"default": DEFAULT_BOARD, "boards": rows})
        return 0
    for row in rows:
        mark = "*" if row["default"] else " "
        npu = f", NPU {row['npu']}" if row["npu"] else ""
        print(
            f"{mark} {row['name']:16s} {row['core']:12s} "
            f"up to {row['sysclk_max_mhz']:g} MHz{npu} -- {row['title']}"
        )
    print("(* = default board; `boards --show NAME` for details)")
    return 0


def cmd_crossboard(args: argparse.Namespace) -> int:
    from .boards import DEFAULT_BOARD, cross_board_report

    model = _build_model(args.model)
    tracer = _trace_begin(args)
    report = cross_board_report(
        model,
        qos_s=_qos_seconds(args),
        qos_percent=args.qos_percent,
        boards=args.board or None,
        reference=args.reference or DEFAULT_BOARD,
        solver=args.solver,
    )
    out = _out(args)
    print(
        f"cross-board DSE: {args.model}, budget "
        f"{report['qos_s'] * 1e3:.3f} ms "
        f"(anchored on {report['reference']})",
        file=out,
    )
    for row in report["boards"]:
        if row["feasible"] and row["met_qos"]:
            npu = (
                f", {row['npu_layers']} NPU layers"
                if row["npu_layers"]
                else ""
            )
            print(
                f"  {row['board']:16s} {row['energy_j'] * 1e3:9.4f} mJ"
                f"  {row['latency_s'] * 1e3:8.3f} ms"
                f"  {row['relock_count']} relocks{npu}",
                file=out,
            )
        else:
            reason = (
                f"min {row['min_latency_s'] * 1e3:.3f} ms"
                if row.get("min_latency_s") is not None
                else "infeasible"
            )
            print(
                f"  {row['board']:16s} misses the budget ({reason})",
                file=out,
            )
    winner = report["winner"]
    print(
        f"  winner: {winner if winner else '(none met the budget)'}",
        file=out,
    )
    _trace_finish(args, tracer, report)
    if _json_mode(args):
        _emit_json(args, report)
    return 0


def cmd_selftest(args: argparse.Namespace) -> int:
    from .selftest import run_selftest

    result = run_selftest(quick=args.quick)
    print(result.summary(), file=_out(args))
    if _json_mode(args):
        _emit_json(args, result.to_dict())
    return 0 if result.ok else 1


def cmd_lifetime(args: argparse.Namespace) -> int:
    model = _build_model(args.model)
    pipeline = DAEDVFSPipeline()
    level = _qos_level(args) or QoSLevel(name="30%", slack=0.30)
    row = pipeline.compare(model, level)
    battery = Battery(capacity_mah=args.capacity_mah)
    duty = DutyCycle(windows_per_hour=args.windows_per_hour)
    out = _out(args)
    print(
        f"battery {battery.capacity_mah:.0f} mAh @ {battery.voltage_v:.1f} V, "
        f"{duty.windows_per_hour:.0f} inferences/hour:",
        file=out,
    )
    systems = {}
    for key, name, report in (
        ("tinyengine", "TinyEngine", row.tinyengine),
        ("clock_gated", "TinyEngine + gating", row.clock_gated),
        ("ours", "DAE + DVFS (ours)", row.ours),
    ):
        life = estimate_lifetime(battery, report, duty)
        print(
            f"  {name:20s} {life.days:8.1f} days "
            f"({life.energy_per_hour_j:.3f} J/h)",
            file=out,
        )
        systems[key] = {
            "days": life.days,
            "energy_per_hour_j": life.energy_per_hour_j,
        }
    if _json_mode(args):
        _emit_json(
            args,
            {
                "model": args.model,
                "capacity_mah": battery.capacity_mah,
                "windows_per_hour": duty.windows_per_hour,
                "systems": systems,
            },
        )
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    from .fleet import (
        FleetScheduler,
        GovernorConfig,
        aggregate_fleet,
        sample_fleet,
        supervise_device,
    )

    model = _build_model(args.model)
    tracer = _trace_begin(args)
    level = _qos_level(args) or QoSLevel(name="30%", slack=0.30)
    fleet = sample_fleet(
        args.devices, seed=args.seed, boards=(args.board or None)
    )
    scheduler = FleetScheduler(
        model, qos_level=level, max_workers=args.workers
    )
    results = scheduler.run(fleet, pooled=not args.serial)
    governed = {}
    if args.epochs > 0:
        config = GovernorConfig(epochs=args.epochs)
        for result in results:
            if result.error is None:
                pipeline = scheduler.pipeline_for(result.profile)
                governed[result.device_id] = supervise_device(
                    pipeline, result.profile, model,
                    result.optimized, config,
                )
    qos_s = next(
        (r.optimized.qos_s for r in results if r.error is None), 0.0
    )
    report = aggregate_fleet(model, qos_s, results, governed)
    print(report.summary(), file=_out(args))
    payload = report.to_dict() if _json_mode(args) else None
    _trace_finish(args, tracer, payload)
    _metrics_finish(args, payload)
    if payload is not None:
        _emit_json(args, payload)
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from .faults import ChaosConfig, FaultPlan, run_campaign

    model = _build_model(args.model)
    tracer = _trace_begin(args)
    fault_plan = FaultPlan(
        seed=args.fault_seed,
        hse_dropout_rate=args.hse_dropout_rate,
        pll_lock_timeout_rate=args.pll_timeout_rate,
        sensor_dropout_rate=args.sensor_dropout_rate,
        sensor_stuck_rate=args.sensor_stuck_rate,
        sensor_nack_rate=args.sensor_nack_rate,
        brownout_rate=args.brownout_rate,
        watchdog_rate=args.watchdog_rate,
    )
    config = ChaosConfig(
        devices=args.devices,
        seed=args.seed,
        epochs=args.epochs,
        max_workers=args.workers,
        boards=tuple(args.board) if args.board else None,
    )
    report = run_campaign(model, fault_plan, config)
    print(report.summary(), file=_out(args))
    payload = report.to_dict() if _json_mode(args) else None
    _trace_finish(args, tracer, payload)
    _metrics_finish(args, payload)
    if payload is not None:
        _emit_json(args, payload)
    return 0


def cmd_scenario(args: argparse.Namespace) -> int:
    from .scenario import build_preset, list_presets, run_scenario

    if args.list:
        presets = list_presets()
        if _json_mode(args):
            _emit_json(args, {"presets": presets})
        else:
            for row in presets:
                print(f"{row['name']:18s} {row['description']}")
        return 0
    if args.resume:
        from .scenario import resume_scenario

        tracer = _trace_begin(args)
        report = resume_scenario(args.resume)
        print(report.summary(), file=_out(args))
        payload = report.to_dict() if _json_mode(args) else None
        _trace_finish(args, tracer, payload)
        _metrics_finish(args, payload)
        if payload is not None:
            _emit_json(args, payload)
        return 0
    if not args.preset:
        raise ReproError(
            "scenario: provide a preset name (or --list to see them)"
        )
    tracer = _trace_begin(args)
    config = build_preset(
        args.preset,
        devices=args.devices,
        horizon_s=(
            args.horizon_hours * 3600.0
            if args.horizon_hours is not None
            else None
        ),
        seed=args.seed,
    )
    if args.shards:
        config.shards = args.shards
    if args.oracle_stride is not None:
        config.oracle_stride = args.oracle_stride
    if args.board:
        config.boards = tuple(args.board)
    if args.checkpoint:
        report = _run_with_checkpoint(
            config, args.checkpoint, args.checkpoint_events
        )
    else:
        report = run_scenario(config)
    print(report.summary(), file=_out(args))
    payload = report.to_dict() if _json_mode(args) else None
    _trace_finish(args, tracer, payload)
    _metrics_finish(args, payload)
    if payload is not None:
        _emit_json(args, payload)
    return 0


def _run_with_checkpoint(config, path: str, after_events: int):
    """Run a scenario, snapshotting after N dispatched events.

    The run continues to completion after the snapshot, so the same
    invocation yields both the full report and a resume point
    (``scenario --resume PATH`` replays the remainder and must digest
    identically).
    """
    from .recovery import save_checkpoint
    from .scenario import ScenarioEngine

    engine = ScenarioEngine(config)
    try:
        engine.start()
        saved = False
        while True:
            if not saved and engine.events_processed >= after_events:
                save_checkpoint(engine.checkpoint(), path)
                saved = True
            if not engine.step():
                break
        if not saved:  # horizon shorter than the requested boundary
            save_checkpoint(engine.checkpoint(), path)
        return engine.finish()
    finally:
        engine.close()


def _serve_config(args: argparse.Namespace):
    from .serve import ServeConfig

    return ServeConfig(
        host=getattr(args, "host", "127.0.0.1") or "127.0.0.1",
        port=getattr(args, "port", 0) or 0,
        solver=args.solver,
        cache_enabled=not args.no_cache,
        cache_capacity=args.cache_capacity,
        batch_enabled=not args.no_batch,
        batch_window_s=args.batch_window_ms * 1e-3,
        max_batch=args.max_batch,
        workers=args.workers,
        stateless=args.stateless,
        max_queue_depth=args.max_queue_depth,
        rate_per_s=args.rate,
        burst=args.bucket_burst,
        admission_tick_s=(
            args.admission_tick_ms * 1e-3
            if args.admission_tick_ms is not None
            else None
        ),
        default_deadline_s=args.default_deadline_s,
    )


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .serve import PlanServer, RouterConfig, ShardRouter

    tracer = _trace_begin(args)
    config = _serve_config(args)
    config.default_board = getattr(args, "board", None)
    shards = getattr(args, "shards", 0) or 0

    async def _run_sharded() -> None:
        router = ShardRouter(
            RouterConfig(
                shards=shards,
                host=config.host,
                port=config.port,
                health_interval_s=args.health_interval_s,
                serve=config,
                journal_path=getattr(args, "journal", None),
            )
        )
        await router.start()
        print(
            f"repro-dvfs serve listening on "
            f"{config.host}:{router.port} "
            f"({shards} shards, shared cache on, "
            f"batch={'on' if not args.no_batch else 'off'})",
            flush=True,
        )
        try:
            await asyncio.Event().wait()
        finally:
            await router.stop()

    async def _run() -> None:
        if shards:
            await _run_sharded()
            return
        server = PlanServer(config)
        await server.start()
        print(
            f"repro-dvfs serve listening on {config.host}:{server.port} "
            f"(cache={'on' if server.service.cache_enabled else 'off'}, "
            f"batch={'on' if server.batcher.enabled else 'off'}, "
            f"workers={config.workers})",
            flush=True,
        )
        try:
            await asyncio.Event().wait()
        finally:
            await server.stop()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("draining and shutting down", file=sys.stderr)
    _trace_finish(args, tracer)
    _metrics_finish(args)
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    from .serve import LoadGenConfig, run_loadgen

    config = LoadGenConfig(
        model=args.model,
        board=getattr(args, "board", None),
        models=tuple(args.models or ()),
        qos_percents=tuple(args.qos_percents),
        requests=args.requests,
        concurrency=args.concurrency,
        clients=args.clients,
        seed=args.seed,
        burst=args.burst,
        open_loop=args.open_loop,
        arrival_rate_rps=args.arrival_rate,
        deadline_s=args.deadline_s,
        slo_p95_ms=args.slo_p95_ms,
        slo_p99_ms=args.slo_p99_ms,
        verify_digests=not args.no_verify,
        serve=_serve_config(args),
        shards=getattr(args, "shards", 0) or 0,
        journal_path=getattr(args, "journal", None),
        target_host=args.host,
        target_port=args.port,
    )
    summary = run_loadgen(config)
    out = _out(args)
    latency = summary["latency"]
    print(
        f"{summary['ok']}/{summary['requests']} ok, "
        f"{summary['sheds']} shed, "
        f"{summary['cached_responses']} cached, "
        f"{summary['throughput_rps']:.1f} req/s over "
        f"{summary['wall_s']:.3f} s",
        file=out,
    )
    print(
        f"latency p50 {latency['p50_s'] * 1e3:.2f} ms, "
        f"p95 {latency['p95_s'] * 1e3:.2f} ms, "
        f"p99 {latency['p99_s'] * 1e3:.2f} ms",
        file=out,
    )
    if summary["digest_checks"]:
        print(
            f"cache consistency: {summary['digest_checks']} digests "
            f"checked, {summary['digest_mismatches']} mismatches",
            file=out,
        )
    for name, gate in summary.get("slo", {}).items():
        print(
            f"SLO {name}: {gate['attained_ms']:.2f} ms attained vs "
            f"{gate['target_ms']:.2f} ms target "
            f"({'met' if gate['met'] else 'MISSED'})",
            file=out,
        )
    if _json_mode(args):
        _emit_json(args, summary)
    ok = summary["cache_consistent"] and summary["slo_met"]
    return 0 if ok else 1


def cmd_plan(args: argparse.Namespace) -> int:
    """One plan request through the full in-process serve path.

    Unlike ``optimize`` (which calls the pipeline directly), this
    routes the request through :class:`~repro.serve.server.PlanServer`
    -- admission, batcher, plan cache, planner pool -- so a ``--trace``
    run captures the whole span tree ``serve.request -> serve.batch ->
    serve.plan -> pipeline.optimize -> dse.explore -> mckp.solve``
    under one correlation ID (the request ID).
    """
    import asyncio

    from .serve import PlanServer
    from .serve.protocol import ErrorPayload, exception_from_error

    _build_model(args.model)  # fail fast on unknown models
    tracer = _trace_begin(args)
    config = _serve_config(args)
    params: Dict[str, Any] = {"model": args.model}
    if args.qos_percent is not None:
        params["qos_percent"] = args.qos_percent
    else:
        params["qos_ms"] = args.qos_ms
    if args.no_cache:
        params["no_cache"] = True
    if getattr(args, "board", None):
        params["board"] = args.board
    request = {
        "v": 1,
        "id": args.request_id,
        "op": "plan",
        "params": params,
    }

    async def _run() -> Dict[str, Any]:
        server = PlanServer(config)  # in-process: never bound to TCP
        try:
            return await server.handle_request_dict(request)
        finally:
            server.batcher.shutdown()

    response = asyncio.run(_run())
    if not response.get("ok", False):
        _trace_finish(args, tracer)
        _metrics_finish(args)
        raise exception_from_error(
            ErrorPayload.from_dict(response.get("error", {}))
        )
    result = dict(response["result"])
    out = _out(args)
    qos = result["qos"]
    print(
        f"{args.model}: baseline "
        f"{to_ms(result['baseline_latency_s']):.3f} ms, "
        f"budget {to_ms(qos['budget_s']):.3f} ms, "
        f"{'cached' if result.get('cached') else 'planned'} "
        f"(digest {result['digest'][:12]}...)",
        file=out,
    )
    # The trace and metrics summaries ride outside the core payload:
    # result["digest"] was computed server-side before either attached.
    _trace_finish(args, tracer, result)
    _metrics_finish(args, result)
    if _json_mode(args):
        _emit_json(args, result)
    return 0


def cmd_obs(args: argparse.Namespace) -> int:
    """Inspect a JSONL trace: digest, span counts, optional conversion."""
    from collections import Counter

    from .obs.export import (
        chrome_trace,
        dicts_to_records,
        load_jsonl,
        trace_digest,
    )

    entries = load_jsonl(args.trace_file)
    records = dicts_to_records(entries)
    names = Counter(r.name for r in records)
    correlations = sorted(
        {r.correlation for r in records if r.correlation is not None}
    )
    digest = trace_digest(records)
    out = _out(args)
    print(
        f"{args.trace_file}: {len(records)} spans, "
        f"{len(correlations)} correlation IDs, digest {digest}",
        file=out,
    )
    for name, count in sorted(names.items()):
        print(f"  {name:24s} {count:6d}", file=out)
    chrome_path = None
    if args.chrome:
        with open(args.chrome, "w", encoding="utf-8") as fh:
            json.dump(chrome_trace(records), fh, sort_keys=True)
        chrome_path = args.chrome
        print(f"chrome trace written to {chrome_path}", file=out)
    if _json_mode(args):
        _emit_json(
            args,
            {
                "path": args.trace_file,
                "spans": len(records),
                "digest": digest,
                "names": dict(sorted(names.items())),
                "correlations": correlations,
                "chrome": chrome_path,
            },
        )
    return 0


def _load_metrics_snapshot(path: str) -> Dict[str, Any]:
    """Load a registry snapshot from a ``--metrics`` file.

    Accepts both the wrapped document ``{"registry": ..., "digest":
    ...}`` the flag writes (the digest is re-verified) and a bare
    registry snapshot.
    """
    from .obs.registry import snapshot_digest

    try:
        with open(path, "r", encoding="utf-8") as fh:
            document = json.load(fh)
    except (OSError, ValueError) as err:
        raise ReproError(
            f"monitor: cannot read snapshot {path!r}: {err}"
        ) from err
    if not isinstance(document, dict):
        raise ReproError(
            f"monitor: {path} is not a metrics snapshot document"
        )
    snapshot = document.get("registry", document)
    expected = document.get("digest")
    if "registry" in document and expected is not None:
        actual = snapshot_digest(snapshot)
        if actual != expected:
            raise ReproError(
                f"monitor: {path} digest mismatch (file claims "
                f"{expected[:12]}..., content hashes to "
                f"{actual[:12]}...)"
            )
    for section in ("counters", "gauges", "histograms"):
        snapshot.setdefault(section, {})
    return snapshot


def _fetch_metrics(host: str, port: int) -> Dict[str, Any]:
    """Pull a live server's ``metrics`` op over TCP."""
    import asyncio

    from .serve.client import ServeClient

    async def _run() -> Dict[str, Any]:
        client = ServeClient(host, port, client_id="monitor")
        try:
            await client.connect()
            return await client.request("metrics")
        finally:
            await client.close()

    try:
        return asyncio.run(_run())
    except (ConnectionError, OSError) as err:
        raise ReproError(
            f"monitor: cannot reach {host}:{port}: {err}"
        ) from err


def cmd_monitor(args: argparse.Namespace) -> int:
    """Tail, roll up, lint, and SLO-check registry snapshots.

    One snapshot tails the registry as a single window-sized delta
    from empty; two snapshots (start, end) roll the exact delta
    between them.  ``--connect HOST:PORT`` pulls the snapshot from a
    live server's ``metrics`` protocol op instead of a file -- on a
    shard router that snapshot is the fleet-coherent merge of every
    worker's registry.
    """
    from .obs.prom import lint_exposition, to_prometheus
    from .obs.registry import snapshot_digest
    from .obs.series import SeriesStore, rollup_between
    from .obs.slo import (
        SLOEvaluator,
        default_scenario_slos,
        default_serve_slos,
        signal_value,
    )

    if args.interval <= 0:
        raise ReproError("monitor: --interval must be positive")
    if args.connect and args.snapshots:
        raise ReproError(
            "monitor: give snapshot files or --connect, not both"
        )
    if args.connect:
        host, _, port_text = args.connect.rpartition(":")
        if not host or not port_text.isdigit():
            raise ReproError(
                f"monitor: --connect wants HOST:PORT, got "
                f"{args.connect!r}"
            )
        result = _fetch_metrics(host, int(port_text))
        snapshots = [result.get("registry", {})]
        sources = [args.connect]
    elif args.snapshots:
        if len(args.snapshots) > 2:
            raise ReproError(
                "monitor: at most two snapshots (start end), got "
                f"{len(args.snapshots)}"
            )
        snapshots = [_load_metrics_snapshot(p) for p in args.snapshots]
        sources = list(args.snapshots)
    else:
        raise ReproError(
            "monitor: provide snapshot file(s) or --connect HOST:PORT"
        )
    interval = float(args.interval)
    if len(snapshots) == 2:
        start, end = snapshots
    else:
        start, end = {}, snapshots[0]
    rollup = rollup_between(start, end, interval)
    digest = snapshot_digest(end)
    out = _out(args)
    print(
        f"monitor: {' -> '.join(sources)} "
        f"(interval {interval:g} s, digest {digest[:12]}...)",
        file=out,
    )

    def _cell_name(family: str, label_repr: str) -> str:
        return f"{family}{{{label_repr}}}" if label_repr else family

    for family, cells in sorted(rollup["counters"].items()):
        for label_repr, cell in sorted(cells.items()):
            print(
                f"  counter   {_cell_name(family, label_repr):44s} "
                f"+{cell['delta']:g} ({cell['rate_per_s']:g}/s)",
                file=out,
            )
    for family, cells in sorted(rollup["gauges"].items()):
        for label_repr, cell in sorted(cells.items()):
            print(
                f"  gauge     {_cell_name(family, label_repr):44s} "
                f"{cell['last']:g}",
                file=out,
            )
    for family, cells in sorted(rollup["histograms"].items()):
        for label_repr, cell in sorted(cells.items()):
            print(
                f"  histogram {_cell_name(family, label_repr):44s} "
                f"n={cell['delta_count']:g} "
                f"p50 {cell['p50_s'] * 1e3:.3f} ms, "
                f"p95 {cell['p95_s'] * 1e3:.3f} ms, "
                f"p99 {cell['p99_s'] * 1e3:.3f} ms",
                file=out,
            )
    payload: Dict[str, Any] = {
        "sources": sources,
        "digest": digest,
        "interval_s": interval,
        "families": {
            section: len(end.get(section, {}))
            for section in ("counters", "gauges", "histograms")
        },
        "rollup": rollup,
    }
    rc = 0
    if args.slo:
        store = SeriesStore(capacity=2)
        store.sample(0.0, start)
        store.sample(interval, end)
        evaluator = SLOEvaluator(
            default_serve_slos() + default_scenario_slos()
        )
        evaluator.evaluate(store, interval)
        active = evaluator.active()
        rows = []
        for slo in evaluator.slos:
            measured, weight = signal_value(slo.signal, rollup)
            rows.append(
                {
                    "name": slo.name,
                    "severity": slo.severity,
                    "objective": slo.objective,
                    "comparator": slo.comparator,
                    "measured": measured,
                    "weight": weight,
                    "burn": (
                        slo.burn(measured)
                        if measured is not None
                        else None
                    ),
                    "firing": slo.name in active,
                }
            )
        for row in rows:
            if row["measured"] is None:
                verdict, measured_text = "no data", "-"
            else:
                verdict = "FIRING" if row["firing"] else "ok"
                measured_text = f"{row['measured']:g}"
            print(
                f"  slo       {row['name']:44s} {verdict:7s} "
                f"measured {measured_text} vs {row['comparator']} "
                f"{row['objective']:g}",
                file=out,
            )
        payload["slo"] = {
            "rows": rows,
            "alerts": evaluator.timeline(),
            "active": active,
        }
    exposition: Optional[str] = None
    if args.prom is not None or args.lint:
        exposition = to_prometheus(end)
    if args.prom is not None:
        if args.prom == "-":
            print(exposition, end="", file=out)
        else:
            with open(args.prom, "w", encoding="utf-8") as fh:
                fh.write(exposition)
            print(f"exposition written to {args.prom}", file=out)
            payload["prom_path"] = args.prom
    if args.lint:
        problems = lint_exposition(exposition)
        payload["lint"] = problems
        if problems:
            for problem in problems:
                print(f"  lint: {problem}", file=out)
            rc = 1
        else:
            print("  lint: exposition clean", file=out)
    if _json_mode(args):
        if args.prom == "-":
            payload["exposition"] = exposition
        _emit_json(args, payload)
    return rc


def make_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-dvfs",
        description="DAE-enabled DVFS for tinyML on STM32 (DATE 2024 repro)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_model(p):
        p.add_argument("model", help=f"one of {sorted(MODEL_BUILDERS)}")

    def add_qos(p, required=False):
        group = p.add_mutually_exclusive_group(required=required)
        group.add_argument(
            "--qos-percent", type=float,
            help="latency slack over the TinyEngine baseline, in percent",
        )
        group.add_argument(
            "--qos-ms", type=float, help="absolute latency budget in ms"
        )

    def add_board(p):
        p.add_argument(
            "--board", metavar="NAME", default=None,
            help="registry board target (see `repro-dvfs boards`)",
        )

    def add_board_mix(p):
        p.add_argument(
            "--board", metavar="NAME", action="append", default=None,
            help=(
                "registry board target; repeat the flag to mix a"
                " heterogeneous fleet (see `repro-dvfs boards`)"
            ),
        )

    p = sub.add_parser("summary", help="print a model's layer table")
    add_model(p)
    p.set_defaults(func=cmd_summary)

    p = sub.add_parser("optimize", help="produce a deployment plan")
    add_model(p)
    add_qos(p, required=True)
    add_board(p)
    p.add_argument("--solver", choices=("dp", "greedy"), default="dp")
    p.add_argument("--harmonize", action="store_true",
                   help="run the re-lock reduction pass on the plan")
    p.add_argument("--output", "-o", help="write the plan JSON here")
    _add_json_flag(p, "plan payload (with sha256 digest)")
    p.set_defaults(func=cmd_optimize)

    p = sub.add_parser("deploy", help="execute a saved plan")
    add_model(p)
    add_qos(p)
    p.add_argument("--plan", required=True, help="plan JSON to execute")
    p.add_argument("--timeline", help="write a CSV execution timeline here")
    p.set_defaults(func=cmd_deploy)

    p = sub.add_parser(
        "codegen", help="emit C firmware scaffolding from a saved plan"
    )
    add_model(p)
    p.add_argument("--plan", required=True, help="plan JSON to translate")
    p.add_argument("--outdir", default=".", help="output directory")
    p.set_defaults(func=cmd_codegen)

    p = sub.add_parser("compare", help="ours vs the TinyEngine baselines")
    add_model(p)
    p.add_argument(
        "--qos-percents", type=int, nargs="+", default=[10, 30, 50]
    )
    _add_json_flag(p, "comparison table")
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser(
        "microbench", help="Fig. 2 style clock/power characterization"
    )
    p.set_defaults(func=cmd_microbench)

    p = sub.add_parser(
        "stream", help="periodic-window streaming + thermal replay"
    )
    add_model(p)
    add_qos(p)
    p.add_argument("--windows", type=int, default=100)
    p.add_argument(
        "--idle", choices=("hot", "gated", "stop"), default="gated"
    )
    p.set_defaults(func=cmd_stream)

    p = sub.add_parser(
        "hotspots", help="rank layers by baseline latency (Step 1A)"
    )
    add_model(p)
    p.add_argument("--top", type=int, default=10)
    p.set_defaults(func=cmd_hotspots)

    p = sub.add_parser(
        "boards", help="list the registered board targets"
    )
    p.add_argument(
        "--list", action="store_true",
        help="enumerate the boards (the default action)",
    )
    p.add_argument(
        "--show", metavar="NAME", default=None,
        help="print one board's full descriptor",
    )
    _add_json_flag(p, "board descriptor(s)")
    p.set_defaults(func=cmd_boards)

    p = sub.add_parser(
        "crossboard",
        help="cross-board DSE: which board meets a QoS at least energy",
    )
    add_model(p)
    add_qos(p, required=True)
    add_board_mix(p)
    p.add_argument(
        "--reference", metavar="NAME", default=None,
        help=(
            "board whose TinyEngine baseline anchors a relative"
            " --qos-percent budget (default: the registry default)"
        ),
    )
    p.add_argument("--solver", choices=("dp", "greedy"), default="dp")
    _add_json_flag(p, "cross-board ranking (with sha256 digest)")
    _add_trace_flag(p)
    p.set_defaults(func=cmd_crossboard)

    p = sub.add_parser("selftest", help="fast installation sanity sweep")
    p.add_argument(
        "--quick", action="store_true",
        help="only the cheap structural checks (the serve health subset)",
    )
    _add_json_flag(p, "check results")
    p.set_defaults(func=cmd_selftest)

    p = sub.add_parser(
        "fleet",
        help="plan a heterogeneous device fleet and supervise drift",
    )
    p.add_argument(
        "model", nargs="?", default="tiny",
        help=f"one of {sorted(MODEL_BUILDERS)} (default: tiny)",
    )
    add_qos(p)
    p.add_argument(
        "--devices", type=int, default=100, help="fleet size"
    )
    p.add_argument(
        "--seed", type=int, default=0,
        help="root seed of the device-variation sampler",
    )
    p.add_argument(
        "--workers", type=int, default=4, help="planning thread-pool width"
    )
    p.add_argument(
        "--serial", action="store_true",
        help="plan on the calling thread instead of the pool",
    )
    p.add_argument(
        "--epochs", type=int, default=10,
        help="governor telemetry epochs per device (0 disables)",
    )
    add_board_mix(p)
    _add_json_flag(p, "full fleet report")
    _add_trace_flag(p)
    _add_metrics_flag(p)
    p.set_defaults(func=cmd_fleet)

    p = sub.add_parser(
        "chaos",
        help="seeded fault-injection campaign over a fleet",
    )
    p.add_argument(
        "model", nargs="?", default="tiny",
        help=f"one of {sorted(MODEL_BUILDERS)} (default: tiny)",
    )
    p.add_argument("--devices", type=int, default=64, help="fleet size")
    p.add_argument(
        "--seed", type=int, default=0,
        help="device-variation sampling seed",
    )
    p.add_argument(
        "--fault-seed", type=int, default=0,
        help="root seed of the fault streams",
    )
    p.add_argument(
        "--epochs", type=int, default=4,
        help="governor telemetry epochs per device",
    )
    p.add_argument(
        "--workers", type=int, default=4, help="planning thread-pool width"
    )
    p.add_argument(
        "--hse-dropout-rate", type=float, default=0.02,
        help="HSE failure probability per oscillator (re)start",
    )
    p.add_argument(
        "--pll-timeout-rate", type=float, default=0.05,
        help="PLL lock-timeout probability per lock wait",
    )
    p.add_argument(
        "--sensor-dropout-rate", type=float, default=0.05,
        help="lost INA219 conversion probability per sample",
    )
    p.add_argument(
        "--sensor-stuck-rate", type=float, default=0.02,
        help="frozen power-register probability per measurement",
    )
    p.add_argument(
        "--sensor-nack-rate", type=float, default=0.02,
        help="I2C NACK probability per measurement",
    )
    p.add_argument(
        "--brownout-rate", type=float, default=0.05,
        help="supply-sag probability per telemetry epoch",
    )
    p.add_argument(
        "--watchdog-rate", type=float, default=0.002,
        help="watchdog-reset probability per layer checkpoint",
    )
    add_board_mix(p)
    _add_json_flag(p, "survival report")
    _add_trace_flag(p)
    _add_metrics_flag(p)
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "scenario",
        help="simulate a fleet lifecycle preset over simulated days",
    )
    p.add_argument(
        "preset", nargs="?", default=None,
        help="scenario preset name (see --list)",
    )
    p.add_argument(
        "--list", action="store_true",
        help="enumerate the scenario presets and exit",
    )
    p.add_argument(
        "--devices", type=int, default=None,
        help="override the preset's initial fleet size",
    )
    p.add_argument(
        "--horizon-hours", type=float, default=None,
        help="override the preset's simulated span",
    )
    p.add_argument(
        "--seed", type=int, default=None,
        help="override the preset's root seed",
    )
    p.add_argument(
        "--shards", type=int, default=0,
        help="route replans through a shard router with this many"
        " worker processes (0 = in-process serve tier)",
    )
    p.add_argument(
        "--oracle-stride", type=int, default=None,
        help="twin every Nth device with a clairvoyant oracle"
        " (0 disables the gap metric)",
    )
    p.add_argument(
        "--checkpoint", metavar="PATH", default=None,
        help="snapshot the run state to PATH after --checkpoint-events"
        " dispatched events (the run still completes)",
    )
    p.add_argument(
        "--checkpoint-events", type=int, default=8,
        help="event boundary the --checkpoint snapshot is taken at",
    )
    p.add_argument(
        "--resume", metavar="PATH", default=None,
        help="resume a checkpointed run to completion (digest-identical"
        " to the uninterrupted run); no preset needed",
    )
    add_board_mix(p)
    _add_json_flag(p, "scenario report")
    _add_trace_flag(p)
    _add_metrics_flag(p)
    p.set_defaults(func=cmd_scenario)

    p = sub.add_parser("lifetime", help="battery-lifetime projection")
    add_model(p)
    add_qos(p)
    p.add_argument("--capacity-mah", type=float, default=1200.0)
    p.add_argument("--windows-per-hour", type=float, default=60.0)
    _add_json_flag(p, "lifetime projection")
    p.set_defaults(func=cmd_lifetime)

    def add_serve_tuning(p):
        p.add_argument(
            "--solver", choices=("dp", "greedy"), default="dp"
        )
        p.add_argument(
            "--workers", type=int, default=4,
            help="planner thread-pool width",
        )
        p.add_argument(
            "--no-cache", action="store_true",
            help="disable the LRU plan cache",
        )
        p.add_argument("--cache-capacity", type=int, default=256)
        p.add_argument(
            "--no-batch", action="store_true",
            help="disable request coalescing",
        )
        p.add_argument(
            "--batch-window-ms", type=float, default=2.0,
            help="micro-batch collection window",
        )
        p.add_argument("--max-batch", type=int, default=32)
        p.add_argument(
            "--stateless", action="store_true",
            help="cold pipeline per request (the batch-CLI baseline)",
        )
        p.add_argument(
            "--max-queue-depth", type=int, default=64,
            help="in-flight bound before shedding with queue_full",
        )
        p.add_argument(
            "--rate", type=float, default=None,
            help="token-bucket admission rate (requests/s)",
        )
        p.add_argument(
            "--bucket-burst", type=float, default=None,
            help="token-bucket capacity (defaults to 1)",
        )
        p.add_argument(
            "--admission-tick-ms", type=float, default=None,
            help=(
                "advance the limiter clock this much per admission"
                " check (deterministic shedding)"
            ),
        )
        p.add_argument(
            "--default-deadline-s", type=float, default=None,
            help="deadline applied to requests that carry none",
        )

    p = sub.add_parser(
        "serve",
        help="JSON-lines planning service over TCP (Ctrl-C to drain)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=7070,
        help="TCP port to bind (0 picks a free one)",
    )
    p.add_argument(
        "--shards", type=int, default=0,
        help=(
            "front this many worker processes with a consistent-hash"
            " router and a shared plan-cache tier (0 = single process)"
        ),
    )
    p.add_argument(
        "--health-interval-s", type=float, default=None,
        help=(
            "probe shard health this often, evicting and respawning"
            " failed workers (sharded mode only)"
        ),
    )
    p.add_argument(
        "--journal", metavar="PATH", default=None,
        help=(
            "write-ahead journal for the shared plan-cache tier; a"
            " restart rebuilds the tier from it (sharded mode only)"
        ),
    )
    add_board(p)
    add_serve_tuning(p)
    _add_trace_flag(p)
    _add_metrics_flag(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "plan",
        help="one plan request through the in-process serve path",
    )
    add_model(p)
    add_qos(p, required=True)
    p.add_argument(
        "--request-id", default="plan-1",
        help=(
            "request (and trace correlation) ID; deterministic by"
            " default so --trace digests reproduce"
        ),
    )
    add_board(p)
    add_serve_tuning(p)
    _add_json_flag(p, "served plan payload (with sha256 digest)")
    _add_trace_flag(p)
    _add_metrics_flag(p)
    p.set_defaults(func=cmd_plan)

    p = sub.add_parser(
        "obs",
        help="inspect a recorded JSONL trace (digest, spans, convert)",
    )
    p.add_argument("trace_file", help="JSONL trace from --trace")
    p.add_argument(
        "--chrome", metavar="PATH",
        help="also convert to Chrome/Perfetto trace JSON here",
    )
    _add_json_flag(p, "trace summary")
    p.set_defaults(func=cmd_obs)

    p = sub.add_parser(
        "monitor",
        help=(
            "tail/rollup/lint/SLO-check registry snapshots"
            " (--metrics files or a live server's metrics op)"
        ),
    )
    p.add_argument(
        "snapshots", nargs="*", metavar="SNAPSHOT",
        help=(
            "one --metrics JSON file (tail from zero) or two"
            " (start end: exact delta rollup)"
        ),
    )
    p.add_argument(
        "--connect", metavar="HOST:PORT", default=None,
        help="pull a live server's `metrics` op instead of files",
    )
    p.add_argument(
        "--interval", type=float, default=60.0,
        help="seconds the rollup window spans (rates divide by this)",
    )
    p.add_argument(
        "--prom", nargs="?", const="-", metavar="PATH", default=None,
        help=(
            "render Prometheus text exposition (to PATH; bare flag"
            " prints it inline)"
        ),
    )
    p.add_argument(
        "--lint", action="store_true",
        help="schema-check the exposition; exit 1 on problems",
    )
    p.add_argument(
        "--slo", action="store_true",
        help="judge the default serve+scenario SLOs on the rollup",
    )
    _add_json_flag(p, "monitor report")
    p.set_defaults(func=cmd_monitor)

    p = sub.add_parser(
        "loadgen",
        help=(
            "seeded load generator for the serve layer (closed-loop,"
            " burst, multi-client open-loop with SLO gates)"
        ),
    )
    p.add_argument(
        "--model", default="tiny",
        help=f"one of {sorted(MODEL_BUILDERS)} (default: tiny)",
    )
    p.add_argument(
        "--qos-percents", type=float, nargs="+",
        default=[10.0, 30.0, 50.0],
        help="QoS slack values the seeded schedule draws from",
    )
    p.add_argument(
        "--models", nargs="+", default=None,
        help="mixed traffic: draw each request's model from this set",
    )
    p.add_argument("--requests", type=int, default=64)
    p.add_argument(
        "--concurrency", type=int, default=8,
        help="closed-loop workers (ignored with --burst/--open-loop)",
    )
    p.add_argument(
        "--clients", type=int, default=1,
        help="independent client identities sharing the load",
    )
    p.add_argument(
        "--seed", type=int, default=0, help="request-schedule seed"
    )
    p.add_argument(
        "--burst", action="store_true",
        help="submit every request at once (deterministic overload)",
    )
    p.add_argument(
        "--open-loop", action="store_true",
        help="dispatch on a fixed arrival timetable instead of"
             " closed-loop",
    )
    p.add_argument(
        "--arrival-rate", type=float, default=200.0,
        help="open-loop arrival rate (requests/s)",
    )
    p.add_argument(
        "--slo-p95-ms", type=float, default=None,
        help="gate the run on attained p95 latency",
    )
    p.add_argument(
        "--slo-p99-ms", type=float, default=None,
        help="gate the run on attained p99 latency",
    )
    p.add_argument(
        "--shards", type=int, default=0,
        help="drive an in-process shard router with this many worker"
             " processes (0 = single process)",
    )
    p.add_argument(
        "--journal", metavar="PATH", default=None,
        help="write-ahead journal for the router's shared plan-cache"
             " tier (sharded mode only)",
    )
    p.add_argument(
        "--deadline-s", type=float, default=None,
        help="per-request deadline",
    )
    p.add_argument(
        "--no-verify", action="store_true",
        help="skip the cached-vs-cold digest cross-check",
    )
    add_board(p)
    p.add_argument(
        "--host", default=None,
        help="drive an external server instead of an in-process one",
    )
    p.add_argument("--port", type=int, default=None)
    add_serve_tuning(p)
    _add_json_flag(p, "load-generation summary")
    p.set_defaults(func=cmd_loadgen)

    return parser


def main(argv: Optional[list] = None) -> int:
    """CLI entry point.

    Returns 0 on success, 1 on a :class:`~repro.errors.ReproError`
    (or a failed check); argparse exits with 2 on usage errors.
    """
    args = make_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as err:
        print(f"error: {err}", file=sys.stderr)
        if _json_mode(args):
            from .serve.protocol import error_from_exception

            print(
                json.dumps(
                    {
                        "ok": False,
                        "error": error_from_exception(err).to_dict(),
                    },
                    indent=2,
                    sort_keys=True,
                )
            )
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
