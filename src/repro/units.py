"""Unit conventions and helpers used across the library.

All internal quantities use base SI units:

* frequency  -- hertz (``float`` or ``int``)
* time       -- seconds (``float``)
* power      -- watts (``float``)
* energy     -- joules (``float``)
* capacity   -- bytes (``int``)

These helpers exist so call sites read naturally (``50 * MHZ``,
``us(200)``) instead of sprinkling magic exponents around, and so that
unit conversions live in exactly one place.
"""

from __future__ import annotations

# --- frequency ---------------------------------------------------------

KHZ = 1_000.0
MHZ = 1_000_000.0
GHZ = 1_000_000_000.0


def mhz(value: float) -> float:
    """Convert a value given in megahertz to hertz."""
    return value * MHZ


def to_mhz(hertz: float) -> float:
    """Convert a value given in hertz to megahertz."""
    return hertz / MHZ


# --- time ---------------------------------------------------------------

def us(value: float) -> float:
    """Convert microseconds to seconds."""
    return value * 1e-6


def ms(value: float) -> float:
    """Convert milliseconds to seconds."""
    return value * 1e-3


def ns(value: float) -> float:
    """Convert nanoseconds to seconds."""
    return value * 1e-9


def to_us(seconds: float) -> float:
    """Convert seconds to microseconds."""
    return seconds * 1e6


def to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds * 1e3


# --- power / energy -----------------------------------------------------

def mw(value: float) -> float:
    """Convert milliwatts to watts."""
    return value * 1e-3


def to_mw(watts: float) -> float:
    """Convert watts to milliwatts."""
    return watts * 1e3


def mj(value: float) -> float:
    """Convert millijoules to joules."""
    return value * 1e-3


def to_mj(joules: float) -> float:
    """Convert joules to millijoules."""
    return joules * 1e3


def uj(value: float) -> float:
    """Convert microjoules to joules."""
    return value * 1e-6


def to_uj(joules: float) -> float:
    """Convert joules to microjoules."""
    return joules * 1e6


# --- capacity -----------------------------------------------------------

KIB = 1024
MIB = 1024 * 1024


def kib(value: float) -> int:
    """Convert kibibytes to bytes."""
    return int(value * KIB)
