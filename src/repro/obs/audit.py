"""Structured decision audit log: *why* did the system do that?

Metrics count outcomes; the audit log keeps the inputs that produced
them.  Every consequential decision -- a governor re-plan, an
admission shed, a plan-cache miss, a device quarantine -- records a
:class:`DecisionRecord` with the decision name and the inputs it was
made from (drift vs threshold, predicted vs measured energy, shed
reason, queue depth).  Reports and the serve ``stats`` endpoint can
then answer "why did device 7 re-plan in epoch 3" without re-running
anything.

The log is process-wide, always on (recording is a deque append under
a lock -- far off any hot path's critical cost), and bounded: beyond
``capacity`` the oldest records fall off and :attr:`DecisionLog.dropped`
counts them, so a week-long soak cannot eat the heap.

Records are ordered by a monotone ``seq`` assigned under the lock, so
an audit dump is deterministic for deterministic workloads; wall time
is deliberately *not* recorded (it would poison byte-stable report
digests) -- correlate with the tracer's spans via the correlation ID
when timing matters.
"""

from __future__ import annotations

import threading
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .tracing import current_correlation


@dataclass
class DecisionRecord:
    """One audited decision.

    Attributes:
        seq: monotone order of recording (process-wide).
        kind: the decision site, dotted like span names
            (``governor.epoch``, ``serve.admission``, ``serve.cache``).
        decision: what was decided (``replan``, ``hold``, ``shed``,
            ``hit``, ``miss``, ``quarantine``, ...).
        correlation: the serve correlation ID in effect, if any.
        inputs: the values the decision was made from.
    """

    seq: int
    kind: str
    decision: str
    correlation: Optional[str] = None
    inputs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "kind": self.kind,
            "decision": self.decision,
            "correlation": self.correlation,
            "inputs": dict(self.inputs),
        }


class DecisionLog:
    """Bounded, thread-safe ring of :class:`DecisionRecord`."""

    def __init__(self, capacity: int = 4096):
        self.capacity = capacity
        self._records: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._next_seq = 0
        self.dropped = 0

    def record(self, kind: str, decision: str, **inputs: Any) -> None:
        """Append one decision with its inputs (cheap; always safe to call)."""
        correlation = current_correlation()
        with self._lock:
            if len(self._records) >= self.capacity:
                self.dropped += 1
            self._records.append(
                DecisionRecord(
                    seq=self._next_seq,
                    kind=kind,
                    decision=decision,
                    correlation=correlation,
                    inputs=inputs,
                )
            )
            self._next_seq += 1

    def query(
        self,
        kind: Optional[str] = None,
        decision: Optional[str] = None,
        correlation: Optional[str] = None,
    ) -> List[DecisionRecord]:
        """Records matching every given filter, oldest first."""
        with self._lock:
            records = list(self._records)
        return [
            r
            for r in records
            if (kind is None or r.kind == kind)
            and (decision is None or r.decision == decision)
            and (correlation is None or r.correlation == correlation)
        ]

    def to_dicts(
        self, kind: Optional[str] = None, decision: Optional[str] = None
    ) -> List[Dict[str, Any]]:
        """JSON-safe dump of matching records."""
        return [r.to_dict() for r in self.query(kind, decision)]

    def counts(self) -> Dict[str, int]:
        """``{"kind:decision": n}`` tallies over the retained window."""
        with self._lock:
            records = list(self._records)
        tally: Counter = Counter(
            f"{r.kind}:{r.decision}" for r in records
        )
        return dict(sorted(tally.items()))

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self._next_seq = 0
            self.dropped = 0


#: The process-wide decision log (always on; bounded).
_AUDIT = DecisionLog()


def get_audit_log() -> DecisionLog:
    """The process-wide decision log."""
    return _AUDIT


def set_audit_log(log: DecisionLog) -> DecisionLog:
    """Swap the default log (tests); returns the previous one."""
    global _AUDIT
    previous = _AUDIT
    _AUDIT = log
    return previous
