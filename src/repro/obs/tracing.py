"""Lightweight span tracing with correlation IDs and deterministic mode.

The span API is two calls::

    with span("dse.explore", model=model.name):
        ...

    @traced("mckp.solve")
    def solve_mckp_dp(...): ...

Spans nest: the current span is tracked in a :mod:`contextvars`
variable, so a span opened inside another becomes its child without
any plumbing -- including across ``await`` points (each asyncio task
gets its own context).  Crossing a thread pool *does* need plumbing,
because executors run work in an empty context: wrap the submitted
callable with :func:`wrap` to carry the caller's span/correlation
context into the worker (the serve batcher and the fleet scheduler do
this).

Correlation IDs tie a whole request's spans together across layers:
the serve front end opens ``correlation("plan-1")`` around a request,
and every span recorded below it -- batcher, pipeline, explorer,
solver, even in pool threads via :func:`wrap` -- carries that ID, so
one grep over the exported trace reconstructs the request's tree.

Tracing is **off by default** and the disabled path is engineered to
be near-free: :func:`span` checks one module global and returns a
shared no-op context manager -- no allocation, no clock read, no lock.
``bench_perf_pipeline`` gates this at <2% overhead on the fully
instrumented pipeline.

Deterministic mode (``Tracer(deterministic=True)``) takes timestamps
from a monotonically incremented counter instead of the wall clock, so
the *entire* span record -- structure, ordering, and times -- is a
pure function of the work performed.  Even in wall-clock mode the
export digest (:func:`repro.obs.export.trace_digest`) covers only the
deterministic fields, so seeded runs digest identically either way.
"""

from __future__ import annotations

import contextvars
import functools
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

#: Current span sequence number (parent for new spans); None at root.
_CURRENT_SPAN: contextvars.ContextVar[Optional[int]] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)
#: Current correlation ID, threaded request -> batcher -> pipeline.
_CORRELATION: contextvars.ContextVar[Optional[str]] = contextvars.ContextVar(
    "repro_obs_correlation", default=None
)


@dataclass
class SpanRecord:
    """One finished (or in-flight) span.

    ``seq`` is the span's creation order under the tracer lock -- it
    doubles as the span ID and as the deterministic ordering key for
    exports.  ``start_s``/``end_s`` come from the tracer clock (wall
    by default, counting in deterministic mode).
    """

    seq: int
    name: str
    start_s: float
    thread: str
    parent_seq: Optional[int] = None
    correlation: Optional[str] = None
    end_s: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)


class _TickClock:
    """Counting clock for deterministic mode: every read advances by 1."""

    def __init__(self) -> None:
        self._ticks = 0
        self._lock = threading.Lock()

    def __call__(self) -> float:
        with self._lock:
            self._ticks += 1
            return float(self._ticks)


class Tracer:
    """Collects spans into a bounded in-memory buffer.

    Args:
        clock: zero-arg callable returning seconds.  Defaults to
            ``time.perf_counter`` (or a counting tick clock when
            ``deterministic`` is set).
        deterministic: take timestamps from a process-local counter so
            the full record is byte-stable under fixed seeds.
        max_spans: buffer bound; spans beyond it are counted in
            :attr:`dropped` instead of stored (the trace stays a
            prefix, never a sample).
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        deterministic: bool = False,
        max_spans: int = 100_000,
    ):
        if clock is None:
            if deterministic:
                clock = _TickClock()
            else:
                import time

                clock = time.perf_counter
        self.clock = clock
        self.deterministic = deterministic
        self.max_spans = max_spans
        self.dropped = 0
        self._lock = threading.Lock()
        self._spans: List[SpanRecord] = []
        self._next_seq = 0

    def begin(self, name: str, attrs: Dict[str, Any]) -> Optional[SpanRecord]:
        parent = _CURRENT_SPAN.get()
        correlation = _CORRELATION.get()
        start = self.clock()
        thread = threading.current_thread().name
        with self._lock:
            if len(self._spans) >= self.max_spans:
                self.dropped += 1
                return None
            record = SpanRecord(
                seq=self._next_seq,
                name=name,
                start_s=start,
                thread=thread,
                parent_seq=parent,
                correlation=correlation,
                attrs=dict(attrs),
            )
            self._next_seq += 1
            self._spans.append(record)
        return record

    def end(self, record: SpanRecord) -> None:
        record.end_s = self.clock()

    def spans(self) -> List[SpanRecord]:
        """Snapshot of recorded spans in creation (seq) order."""
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._next_seq = 0
            self.dropped = 0


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None

    def set(self, **attrs: Any) -> None:
        """No-op counterpart of :meth:`_LiveSpan.set`."""


_NULL = _NullSpan()


class _LiveSpan:
    """Context manager for one recorded span."""

    __slots__ = ("_tracer", "_name", "_attrs", "_record", "_token")

    def __init__(self, tracer: Tracer, name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._record: Optional[SpanRecord] = None
        self._token: Optional[contextvars.Token] = None

    def __enter__(self) -> "_LiveSpan":
        self._record = self._tracer.begin(self._name, self._attrs)
        if self._record is not None:
            self._token = _CURRENT_SPAN.set(self._record.seq)
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if self._token is not None:
            _CURRENT_SPAN.reset(self._token)
        if self._record is not None:
            if exc_type is not None:
                self._record.attrs["error"] = exc_type.__name__
            self._tracer.end(self._record)

    def set(self, **attrs: Any) -> None:
        """Attach attributes discovered mid-span (e.g. cache hit/miss)."""
        if self._record is not None:
            self._record.attrs.update(attrs)


#: The installed tracer; None means tracing is disabled (the common case).
_TRACER: Optional[Tracer] = None


def install(tracer: Optional[Tracer] = None, **kwargs: Any) -> Tracer:
    """Install (and return) a process-wide tracer; spans record from now on."""
    global _TRACER
    if tracer is None:
        tracer = Tracer(**kwargs)
    _TRACER = tracer
    return tracer


def uninstall() -> Optional[Tracer]:
    """Disable tracing; returns the tracer that was installed (if any)."""
    global _TRACER
    previous = _TRACER
    _TRACER = None
    return previous


def get_tracer() -> Optional[Tracer]:
    """The installed tracer, or None when tracing is disabled."""
    return _TRACER


def span(name: str, **attrs: Any):
    """Context manager recording one span (no-op when tracing is off).

    The disabled path returns a shared singleton without touching the
    clock, the buffer, or any lock -- this is the guarantee behind the
    <2% instrumented-pipeline overhead gate.
    """
    tracer = _TRACER
    if tracer is None:
        return _NULL
    return _LiveSpan(tracer, name, attrs)


def traced(name: str, **attrs: Any) -> Callable:
    """Decorator form of :func:`span`."""

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any):
            tracer = _TRACER
            if tracer is None:
                return fn(*args, **kwargs)
            with _LiveSpan(tracer, name, dict(attrs)):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


@contextmanager
def correlation(cid: Optional[str]) -> Iterator[None]:
    """Set the correlation ID for every span opened inside the block."""
    token = _CORRELATION.set(cid)
    try:
        yield
    finally:
        _CORRELATION.reset(token)


def current_correlation() -> Optional[str]:
    """The correlation ID in effect (for audit records off the span path)."""
    return _CORRELATION.get()


def wrap(fn: Callable) -> Callable:
    """Bind ``fn`` to the caller's span/correlation context.

    Executors run submitted work in an empty context; wrapping at
    submission time makes spans opened inside the worker children of
    the submitting span, with the same correlation ID.  When tracing
    is disabled this returns ``fn`` unchanged (zero overhead).
    """
    if _TRACER is None:
        return fn
    ctx = contextvars.copy_context()

    @functools.wraps(fn)
    def bound(*args: Any, **kwargs: Any):
        # A Context cannot be entered concurrently (pool.map fans one
        # wrapped fn across many workers), so run in a copy per call.
        return ctx.copy().run(fn, *args, **kwargs)

    return bound
