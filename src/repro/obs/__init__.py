"""repro.obs -- unified tracing, metrics, and decision-audit layer.

Three pillars, one import:

* :mod:`~repro.obs.tracing` -- nested spans with correlation IDs
  threaded serve request -> batcher -> pipeline -> explorer -> solver;
  off by default with a near-zero-cost disabled path.
* :mod:`~repro.obs.registry` -- process-wide labeled counters, gauges,
  and log-bucket histograms (home of :class:`LatencyHistogram`), so
  every subsystem's counters land in one snapshot.
* :mod:`~repro.obs.audit` -- bounded structured log of governor /
  admission / cache decisions with the inputs that produced them.

Exports live in :mod:`~repro.obs.export`: JSONL and Chrome-trace
(Perfetto) files plus a sha256 digest over the deterministic fields.
See ``docs/observability.md`` for the span taxonomy and metric naming
convention.
"""

from .audit import DecisionLog, DecisionRecord, get_audit_log, set_audit_log
from .export import (
    chrome_trace,
    dicts_to_records,
    dump_jsonl,
    load_jsonl,
    span_dicts,
    trace_digest,
    write_trace,
)
from .registry import (
    LatencyHistogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from .tracing import (
    SpanRecord,
    Tracer,
    correlation,
    current_correlation,
    get_tracer,
    install,
    span,
    traced,
    uninstall,
    wrap,
)

__all__ = [
    "DecisionLog",
    "DecisionRecord",
    "LatencyHistogram",
    "MetricsRegistry",
    "SpanRecord",
    "Tracer",
    "chrome_trace",
    "correlation",
    "current_correlation",
    "dicts_to_records",
    "dump_jsonl",
    "get_audit_log",
    "get_registry",
    "get_tracer",
    "install",
    "load_jsonl",
    "set_audit_log",
    "set_registry",
    "span",
    "span_dicts",
    "trace_digest",
    "traced",
    "uninstall",
    "wrap",
    "write_trace",
]
