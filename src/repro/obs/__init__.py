"""repro.obs -- unified tracing, metrics, and decision-audit layer.

Three pillars, one import:

* :mod:`~repro.obs.tracing` -- nested spans with correlation IDs
  threaded serve request -> batcher -> pipeline -> explorer -> solver;
  off by default with a near-zero-cost disabled path.
* :mod:`~repro.obs.registry` -- process-wide labeled counters, gauges,
  and log-bucket histograms (home of :class:`LatencyHistogram`), so
  every subsystem's counters land in one snapshot.
* :mod:`~repro.obs.audit` -- bounded structured log of governor /
  admission / cache decisions with the inputs that produced them.

Exports live in :mod:`~repro.obs.export`: JSONL and Chrome-trace
(Perfetto) files plus a sha256 digest over the deterministic fields.
See ``docs/observability.md`` for the span taxonomy and metric naming
convention.
"""

from .audit import DecisionLog, DecisionRecord, get_audit_log, set_audit_log
from .export import (
    chrome_trace,
    dicts_to_records,
    dump_jsonl,
    load_jsonl,
    span_dicts,
    trace_digest,
    write_trace,
)
from .prom import lint_exposition, to_prometheus
from .registry import (
    LatencyHistogram,
    MetricsRegistry,
    get_registry,
    merge_snapshot,
    set_registry,
    snapshot_digest,
)
from .series import SeriesStore, rollup_between, subtract_snapshot
from .slo import (
    SLO,
    Alert,
    Signal,
    SLOEvaluator,
    default_scenario_slos,
    default_serve_slos,
    deterministic_projection,
    simulation_projection,
)
from .tracing import (
    SpanRecord,
    Tracer,
    correlation,
    current_correlation,
    get_tracer,
    install,
    span,
    traced,
    uninstall,
    wrap,
)

__all__ = [
    "Alert",
    "DecisionLog",
    "DecisionRecord",
    "LatencyHistogram",
    "MetricsRegistry",
    "SLO",
    "SLOEvaluator",
    "SeriesStore",
    "Signal",
    "SpanRecord",
    "Tracer",
    "chrome_trace",
    "default_scenario_slos",
    "default_serve_slos",
    "deterministic_projection",
    "correlation",
    "current_correlation",
    "dicts_to_records",
    "dump_jsonl",
    "get_audit_log",
    "get_registry",
    "get_tracer",
    "install",
    "lint_exposition",
    "load_jsonl",
    "merge_snapshot",
    "rollup_between",
    "set_audit_log",
    "set_registry",
    "simulation_projection",
    "snapshot_digest",
    "span",
    "span_dicts",
    "subtract_snapshot",
    "to_prometheus",
    "trace_digest",
    "traced",
    "uninstall",
    "wrap",
    "write_trace",
]
