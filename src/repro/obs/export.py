"""Trace exporters: JSONL (native), Chrome trace (Perfetto), sha256 digest.

Two on-disk formats:

* **JSONL** -- one span dict per line, full fidelity, loadable back
  with :func:`load_jsonl`.  This is the native dump format; everything
  else derives from it.
* **Chrome trace** -- the ``{"traceEvents": [...]}`` JSON understood
  by Perfetto (https://ui.perfetto.dev) and ``chrome://tracing``.
  Spans become ``ph: "X"`` complete events with microsecond
  timestamps; threads map to stable integer ``tid``\\ s in order of
  first appearance, so the layout is deterministic.

:func:`write_trace` picks the format from the extension (``.jsonl``
-> JSONL, anything else -> Chrome JSON).

:func:`trace_digest` is the determinism anchor: a sha256 over a
canonical JSON encoding of only the *deterministic* span fields --
names, parent links, creation order, attributes (floats via ``repr``
for bit-exactness), correlation IDs, and drop count.  Wall-clock
timestamps and thread names are excluded, so two seeded runs digest
identically even under a wall-clock tracer, while any change to what
the run actually did (an extra cache miss, a different solver pick)
changes the digest.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional

from .tracing import SpanRecord, Tracer


def _canonical_value(value: Any) -> Any:
    """JSON-safe, bit-exact encoding for attribute values."""
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_canonical_value(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canonical_value(v) for k, v in sorted(value.items())}
    return repr(value)


def span_dicts(spans: List[SpanRecord]) -> List[Dict[str, Any]]:
    """Spans as JSON-safe dicts in seq order, with stable thread indices."""
    ordered = sorted(spans, key=lambda s: s.seq)
    thread_ids: Dict[str, int] = {}
    out = []
    for record in ordered:
        tid = thread_ids.setdefault(record.thread, len(thread_ids))
        out.append(
            {
                "seq": record.seq,
                "name": record.name,
                "parent_seq": record.parent_seq,
                "correlation": record.correlation,
                "start_s": record.start_s,
                "end_s": record.end_s,
                "thread": record.thread,
                "tid": tid,
                "attrs": dict(record.attrs),
            }
        )
    return out


def trace_digest(spans: List[SpanRecord], dropped: int = 0) -> str:
    """sha256 over the deterministic span fields (see module docstring)."""
    rows = []
    for entry in span_dicts(spans):
        rows.append(
            {
                "seq": entry["seq"],
                "name": entry["name"],
                "parent_seq": entry["parent_seq"],
                "correlation": entry["correlation"],
                "attrs": _canonical_value(entry["attrs"]),
            }
        )
    payload = json.dumps(
        {"spans": rows, "dropped": dropped},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def chrome_trace(spans: List[SpanRecord]) -> Dict[str, Any]:
    """Chrome trace-event JSON (``ph: "X"`` complete events, ts/dur in µs)."""
    events = []
    for entry in span_dicts(spans):
        start_s = entry["start_s"]
        end_s = entry["end_s"] if entry["end_s"] is not None else start_s
        args = dict(entry["attrs"])
        if entry["correlation"] is not None:
            args["correlation"] = entry["correlation"]
        args["seq"] = entry["seq"]
        if entry["parent_seq"] is not None:
            args["parent_seq"] = entry["parent_seq"]
        events.append(
            {
                "name": entry["name"],
                "ph": "X",
                "ts": start_s * 1e6,
                "dur": max(0.0, (end_s - start_s) * 1e6),
                "pid": 1,
                "tid": entry["tid"],
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def dump_jsonl(spans: List[SpanRecord], path: str) -> None:
    """Write one span dict per line (the native full-fidelity format)."""
    with open(path, "w", encoding="utf-8") as fh:
        for entry in span_dicts(spans):
            fh.write(json.dumps(entry, sort_keys=True) + "\n")


def load_jsonl(path: str) -> List[Dict[str, Any]]:
    """Read a JSONL trace back into span dicts."""
    out = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


def dicts_to_records(entries: List[Dict[str, Any]]) -> List[SpanRecord]:
    """Rehydrate span dicts (e.g. from :func:`load_jsonl`) into records."""
    records = []
    for entry in entries:
        records.append(
            SpanRecord(
                seq=entry["seq"],
                name=entry["name"],
                start_s=entry["start_s"],
                thread=entry.get("thread", "main"),
                parent_seq=entry.get("parent_seq"),
                correlation=entry.get("correlation"),
                end_s=entry.get("end_s"),
                attrs=dict(entry.get("attrs", {})),
            )
        )
    return records


def write_trace(
    tracer: Tracer, path: str, fmt: Optional[str] = None
) -> Dict[str, Any]:
    """Write the tracer's spans to ``path``; returns a summary.

    ``fmt`` is ``"jsonl"`` or ``"chrome"``; when None it is inferred
    from the extension (``.jsonl`` -> JSONL, else Chrome JSON).  The
    summary carries the path, format, span/drop counts, and the
    deterministic digest -- this is what the ``--trace`` CLI flags
    attach to their JSON payloads.
    """
    spans = tracer.spans()
    if fmt is None:
        fmt = "jsonl" if path.endswith(".jsonl") else "chrome"
    if fmt == "jsonl":
        dump_jsonl(spans, path)
    elif fmt == "chrome":
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(chrome_trace(spans), fh, sort_keys=True)
    else:
        raise ValueError(f"unknown trace format {fmt!r}")
    return {
        "path": path,
        "format": fmt,
        "spans": len(spans),
        "dropped": tracer.dropped,
        "digest": trace_digest(spans, tracer.dropped),
    }
