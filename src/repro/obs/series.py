"""Deterministic metric time series: ring-buffer samples + rollups.

A :class:`MetricsRegistry` snapshot answers "how much, ever"; serving
and scenario questions are windowed -- *what was fleet p95 over the
last simulated hour, how fast are sheds arriving right now?*  The
:class:`SeriesStore` closes that gap without giving up determinism:

* **Timestamps are injected, never read.**  ``sample(t_s)`` takes its
  time from whichever clock drives the caller -- the serve tier's
  :class:`~repro.serve.admission.ArrivalClock`, the scenario
  :class:`~repro.scenario.engine.SimClock`, or a fleet epoch index.
  There is no ``time.time()`` anywhere in this module, so same-seed
  runs produce byte-identical series and the rollups can live inside
  digested report sections.
* **Rollups are delta-aware.**  Counters and histogram buckets are
  cumulative; a window rollup subtracts the snapshot at the window
  start from the one at the end, turning totals into rates and the
  bucket deltas into window-local p50/p95/p99 (same rank rule as
  :meth:`~repro.obs.registry.LatencyHistogram.percentile_s`).
* **Memory is bounded.**  The ring keeps ``capacity`` samples; older
  ones drop and are counted, exactly like the audit log.

The store serialises (:meth:`to_state` / :meth:`from_state`) so the
scenario checkpoint/resume invariant -- resume at any event boundary
reproduces the byte-identical report -- extends to the health section.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from .registry import MetricsRegistry, get_registry, snapshot_digest

__all__ = ["SeriesStore", "rollup_between", "subtract_snapshot"]


def subtract_snapshot(
    current: Dict[str, Any], base: Dict[str, Any]
) -> Dict[str, Any]:
    """The activity between two snapshots, as a snapshot.

    Counters and histogram buckets subtract (clamped at zero);
    gauges keep their ``current`` value -- they are overwrite-style,
    not cumulative.  Together with
    :func:`~repro.obs.registry.merge_snapshot` this is how a resumed
    simulation splices its own fresh registry onto a checkpointed
    series: ``merge([checkpoint_sample, subtract(now, resume_base)],
    gauge_merge="last")`` continues the original absolute series
    byte-identically.
    """
    counters: Dict[str, Any] = {}
    for name, cells in current.get("counters", {}).items():
        base_cells = base.get("counters", {}).get(name, {})
        out = {
            label: max(0.0, value - base_cells.get(label, 0.0))
            for label, value in cells.items()
        }
        if any(out.values()) or name not in base.get("counters", {}):
            counters[name] = out
    histograms: Dict[str, Any] = {}
    for name, cells in current.get("histograms", {}).items():
        base_cells = base.get("histograms", {}).get(name, {})
        out = {}
        for label, summary in cells.items():
            base_summary = base_cells.get(label, {})
            base_buckets = {
                b["le"]: b["count"]
                for b in base_summary.get("buckets", [])
            }
            buckets = []
            for bucket in summary.get("buckets", []):
                n = bucket["count"] - base_buckets.get(bucket["le"], 0)
                if n > 0:
                    buckets.append(
                        {"le": bucket["le"], "count": n}
                    )
            count = max(
                0,
                summary.get("count", 0)
                - base_summary.get("count", 0),
            )
            sum_s = max(
                0.0,
                summary.get("sum_s", 0.0)
                - base_summary.get("sum_s", 0.0),
            )
            out[label] = {
                "count": count,
                "sum_s": sum_s,
                "mean_s": sum_s / count if count else 0.0,
                "min_s": summary.get("min_s", 0.0),
                "max_s": summary.get("max_s", 0.0),
                "p50_s": summary.get("p50_s", 0.0),
                "p95_s": summary.get("p95_s", 0.0),
                "p99_s": summary.get("p99_s", 0.0),
                "buckets": buckets,
            }
        histograms[name] = out
    return {
        "counters": counters,
        "gauges": {
            name: dict(cells)
            for name, cells in current.get("gauges", {}).items()
        },
        "histograms": histograms,
    }


def _delta_percentile(
    deltas: List[Tuple[float, float]], count: float, p: float, max_s: float
) -> float:
    """Percentile over bucket-count deltas, upper-bound rank rule."""
    if count <= 0:
        return 0.0
    rank = max(1, int(round(p / 100.0 * count)))
    seen = 0.0
    for le, n in deltas:
        seen += n
        if seen >= rank:
            return max_s if le == float("inf") else le
    return max_s


def rollup_between(
    start: Dict[str, Any],
    end: Dict[str, Any],
    interval_s: float,
) -> Dict[str, Any]:
    """Delta rollup between two registry snapshots.

    ``start`` may be an empty dict (``{}``) to roll up from zero.
    Counter deltas are clamped at 0 so a registry reset between the
    snapshots degrades to "no traffic" instead of negative rates.

    Zero-delta counter and histogram cells are omitted: the rollup
    describes the window's *activity*, and a cell that saw none must
    be indistinguishable from one that never existed -- otherwise
    counter residue left by earlier work in the process would leak
    into (and de-determinize) every downstream digest.
    """
    interval_s = max(0.0, float(interval_s))
    counters: Dict[str, Dict[str, Any]] = {}
    for name, cells in sorted(end.get("counters", {}).items()):
        base = start.get("counters", {}).get(name, {})
        out: Dict[str, Any] = {}
        for label, value in sorted(cells.items()):
            delta = max(0.0, value - base.get(label, 0.0))
            if delta <= 0.0:
                continue
            out[label] = {
                "delta": delta,
                "rate_per_s": delta / interval_s if interval_s else 0.0,
            }
        if out:
            counters[name] = out
    gauges: Dict[str, Dict[str, Any]] = {}
    for name, cells in sorted(end.get("gauges", {}).items()):
        gauges[name] = {
            label: {"last": value}
            for label, value in sorted(cells.items())
        }
    histograms: Dict[str, Dict[str, Any]] = {}
    for name, cells in sorted(end.get("histograms", {}).items()):
        base = start.get("histograms", {}).get(name, {})
        out = {}
        for label, summary in sorted(cells.items()):
            base_summary = base.get(label, {})
            base_buckets = {
                b["le"]: b["count"]
                for b in base_summary.get("buckets", [])
            }
            deltas = []
            for bucket in summary.get("buckets", []):
                n = bucket["count"] - base_buckets.get(bucket["le"], 0)
                if n > 0:
                    deltas.append((float(bucket["le"]), float(n)))
            deltas.sort()
            count = max(
                0.0,
                summary.get("count", 0) - base_summary.get("count", 0),
            )
            if count <= 0.0:
                continue
            sum_s = max(
                0.0,
                summary.get("sum_s", 0.0)
                - base_summary.get("sum_s", 0.0),
            )
            max_s = float(summary.get("max_s", 0.0))
            out[label] = {
                "delta_count": count,
                "rate_per_s": count / interval_s if interval_s else 0.0,
                "mean_s": sum_s / count if count else 0.0,
                "p50_s": _delta_percentile(deltas, count, 50, max_s),
                "p95_s": _delta_percentile(deltas, count, 95, max_s),
                "p99_s": _delta_percentile(deltas, count, 99, max_s),
            }
        if out:
            histograms[name] = out
    return {
        "interval_s": interval_s,
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
    }


class SeriesStore:
    """Bounded ring of ``(t_s, snapshot)`` samples with window rollups.

    Timestamps must be non-decreasing -- the store refuses wall-clock
    jitter and out-of-order injection loudly rather than producing a
    seed-dependent series.
    """

    def __init__(
        self,
        capacity: int = 256,
        registry: Optional[MetricsRegistry] = None,
    ):
        if capacity < 2:
            raise ValueError("capacity must be >= 2 (deltas need two samples)")
        self.capacity = capacity
        self._registry = registry
        self._samples: Deque[Tuple[float, Dict[str, Any]]] = deque(
            maxlen=capacity
        )
        self.dropped = 0
        self.total_samples = 0

    def __len__(self) -> int:
        return len(self._samples)

    def sample(
        self,
        t_s: float,
        snapshot: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record ``snapshot`` (default: the bound/default registry) at ``t_s``."""
        t_s = float(t_s)
        if self._samples and t_s < self._samples[-1][0]:
            raise ValueError(
                f"series timestamps must be non-decreasing: "
                f"{t_s} < {self._samples[-1][0]}"
            )
        if snapshot is None:
            registry = self._registry or get_registry()
            snapshot = registry.snapshot()
        if len(self._samples) == self.capacity:
            self.dropped += 1
        self._samples.append((t_s, snapshot))
        self.total_samples += 1

    # -- lookup ------------------------------------------------------------------

    def latest(self) -> Optional[Tuple[float, Dict[str, Any]]]:
        """The newest ``(t_s, snapshot)``, or ``None`` when empty."""
        return self._samples[-1] if self._samples else None

    def at_or_before(
        self, t_s: float
    ) -> Optional[Tuple[float, Dict[str, Any]]]:
        """The newest sample with timestamp ``<= t_s`` (None if too early)."""
        found = None
        for sample in self._samples:
            if sample[0] <= t_s:
                found = sample
            else:
                break
        return found

    # -- rollups -----------------------------------------------------------------

    def rollup(
        self, window_s: float, end_s: Optional[float] = None
    ) -> Dict[str, Any]:
        """Delta rollup over ``[end_s - window_s, end_s]``.

        The window end anchors at the newest sample not after
        ``end_s`` (default: the newest sample); the baseline is the
        newest sample at or before the window start, falling back to
        the oldest retained sample (flagged via ``"clamped": true``
        when ring eviction shortened the window).
        """
        if not self._samples:
            return {
                "window_s": float(window_s),
                "start_s": 0.0,
                "end_s": 0.0,
                "samples": 0,
                "clamped": False,
                **rollup_between({}, {}, 0.0),
            }
        end = (
            self._samples[-1]
            if end_s is None
            else (self.at_or_before(end_s) or self._samples[0])
        )
        start_t = end[0] - window_s
        start = self.at_or_before(start_t)
        clamped = start is None
        if start is None:
            start = self._samples[0]
        in_window = sum(
            1 for t, _ in self._samples if start[0] <= t <= end[0]
        )
        body = rollup_between(start[1], end[1], end[0] - start[0])
        return {
            "window_s": float(window_s),
            "start_s": start[0],
            "end_s": end[0],
            "samples": in_window,
            "clamped": clamped,
            **body,
        }

    # -- reporting / persistence -------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        """Small digest-safe description of the ring's coverage."""
        return {
            "capacity": self.capacity,
            "len": len(self._samples),
            "dropped": self.dropped,
            "total_samples": self.total_samples,
            "start_s": self._samples[0][0] if self._samples else 0.0,
            "end_s": self._samples[-1][0] if self._samples else 0.0,
            "latest_digest": (
                snapshot_digest(self._samples[-1][1])
                if self._samples
                else None
            ),
        }

    def to_state(self) -> Dict[str, Any]:
        """JSON-safe state for checkpointing (full retained samples)."""
        return {
            "capacity": self.capacity,
            "dropped": self.dropped,
            "total_samples": self.total_samples,
            "samples": [
                [t_s, snapshot] for t_s, snapshot in self._samples
            ],
        }

    @classmethod
    def from_state(
        cls,
        state: Dict[str, Any],
        registry: Optional[MetricsRegistry] = None,
    ) -> "SeriesStore":
        """Rebuild a store from :meth:`to_state` output."""
        store = cls(capacity=state["capacity"], registry=registry)
        for t_s, snapshot in state.get("samples", []):
            store._samples.append((float(t_s), snapshot))
        store.dropped = int(state.get("dropped", 0))
        store.total_samples = int(
            state.get("total_samples", len(store._samples))
        )
        return store
