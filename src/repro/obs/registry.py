"""Unified metrics registry: counters, gauges, log-bucket histograms.

Before this module existed every subsystem kept private counters --
``serve/metrics.py`` had histograms only the TCP server could see, the
pipeline and the fleet pricing caches counted hits on their own
instances, and governor re-plans only surfaced in end-of-run reports.
The registry gives all of them one process-wide home: a metric is a
**labeled family** (``pipeline.cache`` with labels ``cache=cloud,
event=hit``), every subsystem records into the default registry, and
one :meth:`MetricsRegistry.snapshot` returns the coherent cross-layer
view the serve ``stats`` endpoint (and the ``repro-dvfs obs`` CLI)
reports.

Naming convention (see ``docs/observability.md``): family names are
dotted ``<subsystem>.<thing>`` (``pipeline.cache``, ``fleet.pricing``,
``serve.sheds``); labels are short lowercase keys; event-style
counters use an ``event`` label rather than separate families.

:class:`LatencyHistogram` lives here (promoted out of
``repro.serve.metrics``, which re-exports it for compatibility): a
fixed log-spaced-bucket histogram whose percentile answers are bucket
*upper bounds* -- a deterministic over-estimate whose relative error
is bounded by the bucket ratio, ``10 ** (1/buckets_per_decade) - 1``
(~33% at the default 8 buckets/decade).  :meth:`LatencyHistogram.buckets`
exposes the exact per-bucket counts so clients can compute tighter
two-sided bounds themselves (documented in ``docs/api.md``).

Everything is lock-protected and cheap to record -- one bisect and a
few integer adds per observation -- so metrics never become the reason
a hot path stalls.
"""

from __future__ import annotations

import bisect
import hashlib
import json
import math
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple


def _log_bounds(
    lo_s: float = 1e-6, hi_s: float = 100.0, per_decade: int = 8
) -> List[float]:
    """Log-spaced bucket upper bounds from ``lo_s`` to ``hi_s``."""
    bounds = []
    value = lo_s
    ratio = 10.0 ** (1.0 / per_decade)
    while value < hi_s:
        bounds.append(value)
        value *= ratio
    bounds.append(hi_s)
    return bounds


class LatencyHistogram:
    """Fixed-bucket log-spaced latency histogram.

    Percentiles are answered as the upper bound of the bucket holding
    the requested rank -- a deterministic over-estimate whose relative
    error is bounded by the bucket ratio (~33% at 8 buckets/decade),
    plenty for load-shedding decisions and benchmark gates.  Clients
    needing tighter bounds should use :meth:`buckets`: the true value
    of any percentile lies in ``(lower, le]`` of its bucket, so the
    exact counts bound it two-sided.
    """

    def __init__(self, bounds: Optional[List[float]] = None):
        self.bounds = bounds if bounds is not None else _log_bounds()
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum_s = 0.0
        self.min_s = float("inf")
        self.max_s = 0.0

    def record(self, latency_s: float) -> None:
        """Add one observation."""
        index = bisect.bisect_left(self.bounds, latency_s)
        self.counts[index] += 1
        self.count += 1
        self.sum_s += latency_s
        self.min_s = min(self.min_s, latency_s)
        self.max_s = max(self.max_s, latency_s)

    # Alias so histograms fit the registry's observe() verb.
    observe = record

    def percentile_s(self, p: float) -> float:
        """The ``p``-th percentile (0 < p <= 100), 0.0 when empty."""
        if self.count == 0:
            return 0.0
        rank = max(1, int(round(p / 100.0 * self.count)))
        seen = 0
        for index, count in enumerate(self.counts):
            seen += count
            if seen >= rank:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.max_s
        return self.max_s

    def buckets(self) -> List[Dict[str, float]]:
        """Exact per-bucket counts, non-empty buckets only.

        Each entry is ``{"le": upper_bound_s, "count": n}`` (the final
        overflow bucket reports ``le`` as ``inf``); together with
        ``count`` this is a complete, exact snapshot of the recorded
        distribution, so clients can compute two-sided percentile
        bounds instead of trusting the upper-bound answers of
        :meth:`percentile_s`.
        """
        out: List[Dict[str, float]] = []
        for index, count in enumerate(self.counts):
            if count == 0:
                continue
            le = (
                self.bounds[index]
                if index < len(self.bounds)
                else float("inf")
            )
            out.append({"le": le, "count": count})
        return out

    def to_dict(self, include_buckets: bool = False) -> Dict[str, Any]:
        """Summary statistics (optionally with the exact bucket counts).

        ``sum_s`` is included so merged views (:func:`merge_snapshot`)
        can recompute the mean from exact sums instead of compounding
        rounded means -- that is what makes the merge associative.
        """
        summary: Dict[str, Any] = {
            "count": self.count,
            "sum_s": self.sum_s,
            "mean_s": self.sum_s / self.count if self.count else 0.0,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
            "p50_s": self.percentile_s(50),
            "p95_s": self.percentile_s(95),
            "p99_s": self.percentile_s(99),
        }
        if include_buckets:
            summary["buckets"] = self.buckets()
        return summary


def _label_key(label_names: Tuple[str, ...], labels: Dict[str, Any]) -> Tuple:
    if tuple(sorted(labels)) != tuple(sorted(label_names)):
        raise ValueError(
            f"expected labels {sorted(label_names)}, got {sorted(labels)}"
        )
    return tuple(str(labels[name]) for name in label_names)


class _Family:
    """One named family of metrics, keyed by label values."""

    kind = "counter"

    def __init__(self, name: str, label_names: Sequence[str] = ()):
        self.name = name
        self.label_names = tuple(label_names)
        self._children: Dict[Tuple, Any] = {}
        self._lock = threading.Lock()

    def _make_child(self) -> Any:
        raise NotImplementedError

    def child(self, labels: Dict[str, Any]) -> Any:
        key = _label_key(self.label_names, labels)
        with self._lock:
            existing = self._children.get(key)
            if existing is None:
                existing = self._children.setdefault(
                    key, self._make_child()
                )
            return existing

    def items(self) -> List[Tuple[Tuple, Any]]:
        with self._lock:
            return sorted(self._children.items())

    def _label_repr(self, key: Tuple) -> str:
        return ",".join(
            f"{name}={value}"
            for name, value in zip(self.label_names, key)
        )


class _CounterFamily(_Family):
    kind = "counter"

    def _make_child(self) -> List[float]:
        return [0.0]


class _GaugeFamily(_Family):
    kind = "gauge"

    def _make_child(self) -> List[float]:
        return [0.0]


class _HistogramFamily(_Family):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        label_names: Sequence[str] = (),
        bounds: Optional[List[float]] = None,
    ):
        super().__init__(name, label_names)
        self._bounds = bounds

    def _make_child(self) -> LatencyHistogram:
        return LatencyHistogram(
            list(self._bounds) if self._bounds is not None else None
        )


class MetricsRegistry:
    """Process-wide labeled metric families with one-call recording.

    The recording verbs (:meth:`count`, :meth:`gauge_set`,
    :meth:`observe`) create the family on first use, so call sites
    never need registration boilerplate; a family's label *names* are
    fixed by its first use and a mismatch raises immediately (catching
    typos rather than silently forking families).
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    def _family(self, name: str, cls, label_names: Tuple[str, ...], **kw):
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = self._families.setdefault(
                    name, cls(name, label_names, **kw)
                )
        if not isinstance(family, cls):
            raise ValueError(
                f"metric {name!r} is a {family.kind}, not a {cls.kind}"
            )
        if family.label_names != label_names:
            raise ValueError(
                f"metric {name!r} has labels {family.label_names}, "
                f"got {label_names}"
            )
        return family

    # -- recording verbs ---------------------------------------------------------

    def count(self, name: str, n: float = 1.0, **labels: Any) -> None:
        """Increment counter ``name`` (labeled by ``labels``) by ``n``."""
        family = self._family(
            name, _CounterFamily, tuple(sorted(labels))
        )
        cell = family.child(labels)
        with family._lock:
            cell[0] += n

    def gauge_set(self, name: str, value: float, **labels: Any) -> None:
        """Set gauge ``name`` (labeled by ``labels``) to ``value``."""
        family = self._family(name, _GaugeFamily, tuple(sorted(labels)))
        cell = family.child(labels)
        with family._lock:
            cell[0] = value

    def observe(self, name: str, value_s: float, **labels: Any) -> None:
        """Record one observation into histogram ``name``."""
        family = self._family(
            name, _HistogramFamily, tuple(sorted(labels))
        )
        histogram = family.child(labels)
        with family._lock:
            histogram.record(value_s)

    def histogram(
        self, name: str, **labels: Any
    ) -> LatencyHistogram:
        """The (created-on-first-use) histogram behind ``name``/``labels``."""
        family = self._family(
            name, _HistogramFamily, tuple(sorted(labels))
        )
        return family.child(labels)

    def counter_value(self, name: str, **labels: Any) -> float:
        """Current value of a counter (0.0 when never incremented)."""
        with self._lock:
            family = self._families.get(name)
        if family is None or not isinstance(family, _CounterFamily):
            return 0.0
        try:
            key = _label_key(family.label_names, labels)
        except ValueError:
            return 0.0
        with family._lock:
            cell = family._children.get(key)
            return cell[0] if cell is not None else 0.0

    # -- reporting ---------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe copy of every family, deterministically ordered.

        Shape: ``{"counters": {name: {label_repr: value}}, "gauges":
        {...}, "histograms": {name: {label_repr: summary+buckets}}}``.
        Unlabeled metrics use the empty-string label key.
        """
        with self._lock:
            families = sorted(self._families.items())
        counters: Dict[str, Dict[str, float]] = {}
        gauges: Dict[str, Dict[str, float]] = {}
        histograms: Dict[str, Dict[str, Any]] = {}
        for name, family in families:
            if isinstance(family, _HistogramFamily):
                histograms[name] = {
                    family._label_repr(key): hist.to_dict(
                        include_buckets=True
                    )
                    for key, hist in family.items()
                }
            elif isinstance(family, _GaugeFamily):
                gauges[name] = {
                    family._label_repr(key): cell[0]
                    for key, cell in family.items()
                }
            else:
                counters[name] = {
                    family._label_repr(key): cell[0]
                    for key, cell in family.items()
                }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def reset(self) -> None:
        """Drop every family (tests; production registries live forever)."""
        with self._lock:
            self._families.clear()


def _merge_histogram_dicts(parts: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge ``to_dict(include_buckets=True)`` histogram dumps.

    Bucket counts add bucket-wise (keyed on ``le``), ``count`` and
    ``sum_s`` add exactly (``math.fsum``: round-once, hence
    order-independent), and percentiles are recomputed from the merged
    buckets with the same rank rule as
    :meth:`LatencyHistogram.percentile_s` -- so the merged summary is
    byte-identical to recording every observation into one histogram,
    as long as the parts share bucket bounds.
    """
    bucket_counts: Dict[float, float] = {}
    count = 0
    sum_parts: List[float] = []
    min_s = float("inf")
    max_s = 0.0
    for part in parts:
        part_count = int(part.get("count", 0))
        count += part_count
        if part_count:
            sum_parts.append(
                float(
                    part.get(
                        "sum_s",
                        part.get("mean_s", 0.0) * part_count,
                    )
                )
            )
            min_s = min(min_s, float(part.get("min_s", float("inf"))))
            max_s = max(max_s, float(part.get("max_s", 0.0)))
        for bucket in part.get("buckets", []):
            le = float(bucket["le"])
            bucket_counts[le] = (
                bucket_counts.get(le, 0) + bucket["count"]
            )
    sum_s = math.fsum(sum_parts)
    ordered = sorted(bucket_counts.items())

    def _percentile(p: float) -> float:
        if count == 0:
            return 0.0
        rank = max(1, int(round(p / 100.0 * count)))
        seen = 0
        for le, n in ordered:
            seen += n
            if seen >= rank:
                return max_s if le == float("inf") else le
        return max_s

    return {
        "count": count,
        "sum_s": sum_s,
        "mean_s": sum_s / count if count else 0.0,
        "min_s": min_s if count else 0.0,
        "max_s": max_s,
        "p50_s": _percentile(50),
        "p95_s": _percentile(95),
        "p99_s": _percentile(99),
        "buckets": [
            {"le": le, "count": n} for le, n in ordered if n
        ],
    }


#: Gauge merge modes understood by :func:`merge_snapshot`.
GAUGE_MERGE_MODES = ("sum", "max", "min", "last")


def merge_snapshot(
    snapshots: Sequence[Dict[str, Any]],
    *,
    gauge_merge: str = "sum",
    gauge_modes: Optional[Dict[str, str]] = None,
) -> Dict[str, Any]:
    """Losslessly merge :meth:`MetricsRegistry.snapshot` dumps.

    Counters add per ``(family, label)`` cell; histograms add
    bucket-wise (see :func:`_merge_histogram_dicts`); gauges have no
    universally correct merge, so the semantic is **explicit**:
    ``gauge_merge`` picks the default mode (``sum`` -- fleet totals
    such as pool sizes; ``max`` / ``min`` -- worst-case watermarks;
    ``last`` -- the final snapshot wins) and ``gauge_modes`` overrides
    it per family name.

    The result is deterministically ordered (family names and label
    keys sorted) and is itself a valid snapshot, so merges compose:
    on exactly-representable inputs (integer counts; latencies that
    are dyadic rationals) the operation is associative and commutative
    byte-for-byte, which the ``tests/obs/test_merge.py`` algebra
    suite pins.

    A family appearing under different sections (counter in one
    snapshot, gauge in another) raises ``ValueError`` -- silent
    coercion would corrupt the fleet view.
    """
    if gauge_merge not in GAUGE_MERGE_MODES:
        raise ValueError(
            f"gauge_merge must be one of {GAUGE_MERGE_MODES}, "
            f"got {gauge_merge!r}"
        )
    modes = dict(gauge_modes or {})
    for family, mode in modes.items():
        if mode not in GAUGE_MERGE_MODES:
            raise ValueError(
                f"gauge mode for {family!r} must be one of "
                f"{GAUGE_MERGE_MODES}, got {mode!r}"
            )
    kinds: Dict[str, str] = {}
    counters: Dict[str, Dict[str, List[float]]] = {}
    gauges: Dict[str, Dict[str, List[float]]] = {}
    histograms: Dict[str, Dict[str, List[Dict[str, Any]]]] = {}
    for snapshot in snapshots:
        for section, into in (
            ("counters", counters),
            ("gauges", gauges),
            ("histograms", histograms),
        ):
            for name, cells in snapshot.get(section, {}).items():
                seen = kinds.setdefault(name, section)
                if seen != section:
                    raise ValueError(
                        f"metric {name!r} is a {seen[:-1]} in one "
                        f"snapshot and a {section[:-1]} in another"
                    )
                family = into.setdefault(name, {})
                for label_repr, value in cells.items():
                    family.setdefault(label_repr, []).append(value)

    def _gauge_value(name: str, values: List[float]) -> float:
        mode = modes.get(name, gauge_merge)
        if mode == "sum":
            return math.fsum(values)
        if mode == "max":
            return max(values)
        if mode == "min":
            return min(values)
        return values[-1]

    return {
        "counters": {
            name: {
                label: math.fsum(values)
                for label, values in sorted(cells.items())
            }
            for name, cells in sorted(counters.items())
        },
        "gauges": {
            name: {
                label: _gauge_value(name, values)
                for label, values in sorted(cells.items())
            }
            for name, cells in sorted(gauges.items())
        },
        "histograms": {
            name: {
                label: _merge_histogram_dicts(parts)
                for label, parts in sorted(cells.items())
            }
            for name, cells in sorted(histograms.items())
        },
    }


def snapshot_digest(snapshot: Dict[str, Any]) -> str:
    """sha256 over the canonical JSON encoding of a snapshot.

    ``sort_keys`` plus Python's shortest-round-trip float repr make
    the digest a pure function of the recorded values; the overflow
    bucket's ``le`` of ``inf`` serialises as ``Infinity``, matching
    how snapshots already travel over the serve wire protocol.
    """
    payload = json.dumps(snapshot, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# Registries merge snapshots, so expose the function as a method too.
MetricsRegistry.merge_snapshot = staticmethod(merge_snapshot)


#: The process-wide default registry every subsystem records into.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry (tests); returns the previous one."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous
