"""Prometheus text exposition for registry snapshots.

The registry's native dump (:meth:`MetricsRegistry.snapshot`) is
JSON shaped for digests and merges; real fleets scrape.  This module
renders any snapshot -- a single process, or a fleet-coherent merge
from :func:`repro.obs.registry.merge_snapshot` -- in the Prometheus
text exposition format (version 0.0.4):

* dotted family names become underscore names (``serve.latency`` ->
  ``serve_latency``); counters gain the ``_total`` suffix, histograms
  the ``_seconds`` unit suffix (every histogram in this stack records
  seconds);
* histograms expose **cumulative** ``_bucket{le="..."}`` samples
  rebuilt from the registry's exact per-bucket counts, closing with
  the mandatory ``le="+Inf"`` bucket equal to ``_count``;
* output ordering is deterministic (families and label sets sorted),
  so two exports of the same snapshot are byte-identical.

:func:`lint_exposition` is the schema check CI runs against the
rendered text: metric-name charset, ``HELP``/``TYPE`` presence and
ordering, bucket monotonicity, and ``+Inf``/``_count`` agreement.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, List, Tuple

__all__ = ["to_prometheus", "lint_exposition"]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_INVALID_CHAR_RE = re.compile(r"[^a-zA-Z0-9_:]")


def metric_name(family: str, suffix: str = "") -> str:
    """Prometheus-legal name for a registry family."""
    name = _INVALID_CHAR_RE.sub("_", family) + suffix
    if not _NAME_RE.match(name):
        name = "_" + name
    return name


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _parse_label_repr(label_repr: str) -> List[Tuple[str, str]]:
    """Split the registry's ``k=v,k=v`` label encoding into pairs."""
    if not label_repr:
        return []
    pairs = []
    for item in label_repr.split(","):
        key, _, value = item.partition("=")
        pairs.append((_INVALID_CHAR_RE.sub("_", key), value))
    return pairs


def _label_block(
    pairs: List[Tuple[str, str]], extra: List[Tuple[str, str]] = []
) -> str:
    merged = pairs + extra
    if not merged:
        return ""
    body = ",".join(
        f'{key}="{_escape_label_value(value)}"'
        for key, value in merged
    )
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, float) and math.isnan(value):
        return "NaN"
    if float(value) == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_le(le: float) -> str:
    return "+Inf" if le == float("inf") else repr(float(le))


def to_prometheus(snapshot: Dict[str, Any]) -> str:
    """Render a registry snapshot as Prometheus exposition text."""
    lines: List[str] = []

    def _head(name: str, kind: str, family: str) -> None:
        lines.append(f"# HELP {name} repro metric {family}")
        lines.append(f"# TYPE {name} {kind}")

    for family, cells in sorted(snapshot.get("counters", {}).items()):
        name = metric_name(family, "_total")
        _head(name, "counter", family)
        for label_repr, value in sorted(cells.items()):
            block = _label_block(_parse_label_repr(label_repr))
            lines.append(f"{name}{block} {_format_value(value)}")
    for family, cells in sorted(snapshot.get("gauges", {}).items()):
        name = metric_name(family)
        _head(name, "gauge", family)
        for label_repr, value in sorted(cells.items()):
            block = _label_block(_parse_label_repr(label_repr))
            lines.append(f"{name}{block} {_format_value(value)}")
    for family, cells in sorted(
        snapshot.get("histograms", {}).items()
    ):
        name = metric_name(family, "_seconds")
        _head(name, "histogram", family)
        for label_repr, summary in sorted(cells.items()):
            pairs = _parse_label_repr(label_repr)
            cumulative = 0
            for bucket in sorted(
                summary.get("buckets", []), key=lambda b: b["le"]
            ):
                if bucket["le"] == float("inf"):
                    continue
                cumulative += bucket["count"]
                block = _label_block(
                    pairs, [("le", _format_le(bucket["le"]))]
                )
                lines.append(
                    f"{name}_bucket{block} {_format_value(cumulative)}"
                )
            count = summary.get("count", 0)
            block = _label_block(pairs, [("le", "+Inf")])
            lines.append(
                f"{name}_bucket{block} {_format_value(count)}"
            )
            sum_s = summary.get(
                "sum_s",
                summary.get("mean_s", 0.0) * count,
            )
            block = _label_block(pairs)
            lines.append(f"{name}_sum{block} {_format_value(sum_s)}")
            lines.append(
                f"{name}_count{block} {_format_value(count)}"
            )
    return "\n".join(lines) + "\n" if lines else ""


_SAMPLE_RE = re.compile(
    r"^(?P<name>[^\s{]+)(?P<labels>\{[^}]*\})?\s+(?P<value>\S+)"
    r"(?:\s+\S+)?$"
)
_LE_RE = re.compile(r'le="(?P<le>[^"]+)"')


def _parse_sample_value(raw: str) -> float:
    if raw == "+Inf":
        return float("inf")
    if raw == "-Inf":
        return float("-inf")
    return float(raw)


def lint_exposition(text: str) -> List[str]:
    """Schema-check exposition text; returns a list of problems.

    Checks: metric-name charset, ``HELP``/``TYPE`` lines present
    before a family's first sample, sample values parse, histogram
    bucket counts are cumulative-monotone, and the ``+Inf`` bucket
    exists and equals the family's ``_count`` sample.
    """
    errors: List[str] = []
    typed: Dict[str, str] = {}
    helped: set = set()
    buckets: Dict[Tuple[str, str], List[Tuple[str, float]]] = {}
    counts: Dict[Tuple[str, str], float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 4:
                errors.append(f"line {lineno}: malformed HELP line")
                continue
            helped.add(parts[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) < 4:
                errors.append(f"line {lineno}: malformed TYPE line")
                continue
            name, kind = parts[2], parts[3].strip()
            if not _NAME_RE.match(name):
                errors.append(
                    f"line {lineno}: invalid metric name {name!r}"
                )
            if kind not in ("counter", "gauge", "histogram"):
                errors.append(
                    f"line {lineno}: unknown TYPE {kind!r}"
                )
            if name not in helped:
                errors.append(
                    f"line {lineno}: TYPE {name} without prior HELP"
                )
            typed[name] = kind
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            errors.append(f"line {lineno}: unparseable sample line")
            continue
        name = match.group("name")
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        if not _NAME_RE.match(name):
            errors.append(
                f"line {lineno}: invalid metric name {name!r}"
            )
            continue
        if name not in typed and base not in typed:
            errors.append(
                f"line {lineno}: sample {name} without prior TYPE"
            )
        if typed.get(base) == "counter" or typed.get(name) == "counter":
            counter_name = name if name in typed else base
            if not counter_name.endswith("_total"):
                errors.append(
                    f"line {lineno}: counter {counter_name} missing "
                    f"_total suffix"
                )
        try:
            value = _parse_sample_value(match.group("value"))
        except ValueError:
            errors.append(
                f"line {lineno}: unparseable value "
                f"{match.group('value')!r}"
            )
            continue
        labels = match.group("labels") or ""
        if name.endswith("_bucket") and typed.get(base) == "histogram":
            le_match = _LE_RE.search(labels)
            if le_match is None:
                errors.append(
                    f"line {lineno}: histogram bucket without le label"
                )
                continue
            rest = _LE_RE.sub("", labels)
            le_raw = le_match.group("le")
            le = (
                float("inf")
                if le_raw == "+Inf"
                else float(le_raw)
            )
            buckets.setdefault((base, rest), []).append((lineno, le, value))
        elif name.endswith("_count") and typed.get(base) == "histogram":
            counts[(base, labels)] = value
    for (base, rest), series in sorted(buckets.items()):
        series = sorted(series, key=lambda item: item[1])
        previous = None
        has_inf = False
        inf_value = None
        for lineno, le, value in series:
            if previous is not None and value < previous:
                errors.append(
                    f"line {lineno}: {base} bucket counts not "
                    f"monotone (le={le})"
                )
            previous = value
            if le == float("inf"):
                has_inf = True
                inf_value = value
        if not has_inf:
            errors.append(f"{base}: histogram missing +Inf bucket")
        else:
            # The bucket label block minus `le` should match a _count
            # sample's label block (allowing for comma cleanup).
            normalized = rest.replace("{,", "{").replace(",}", "}")
            normalized = normalized.replace(",,", ",")
            if normalized == "{}":
                normalized = ""
            expected = counts.get((base, normalized))
            if expected is not None and inf_value != expected:
                errors.append(
                    f"{base}: +Inf bucket {inf_value} != _count "
                    f"{expected}"
                )
    return errors
