"""Declarative SLOs with multi-window burn-rate alerting.

The paper's claim is an *objective* -- hold the latency QoS while
cutting energy -- so the monitoring layer judges runs the same way SRE
practice judges services: each :class:`SLO` names a signal extracted
from windowed series rollups (:mod:`repro.obs.series`), an objective
threshold, and a **two-window burn-rate rule**.  The fast window
catches a fresh budget burn within a few samples; the slow window
refuses to page on a transient spike that the budget can absorb.  An
alert fires only when *both* windows burn past their thresholds, and
resolves on the falling edge -- so the alert list is a timeline of
state transitions, not one line per evaluation.

Burn rate is "budgets consumed per budget allowed":

* ``comparator="le"`` (stay under): ``burn = measured / objective``.
* ``comparator="ge"`` (stay over): ``burn = objective / measured``
  (``inf`` when the measured value collapses to zero).

``burn >= 1.0`` means the objective is exactly exhausted; thresholds
above 1.0 demand a sustained multiple before paging.

Determinism contract: alerts are stamped with the *injected* series
timestamps (sim seconds, arrival-clock seconds, epoch indices) --
never wall time -- and evaluation is a pure function of the sampled
snapshots, so the alert timeline participates in byte-stable report
digests.  :func:`deterministic_projection` strips the families that
are recorded from the wall clock (``serve.latency``) before a
simulation samples them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .audit import DecisionLog, get_audit_log
from .series import SeriesStore

__all__ = [
    "SLO",
    "Alert",
    "Signal",
    "SLOEvaluator",
    "default_scenario_slos",
    "default_serve_slos",
    "deterministic_projection",
    "simulation_projection",
]

#: Histogram families whose observations come from the wall clock; a
#: deterministic simulation must not let them into digested series.
WALL_CLOCK_FAMILIES = ("serve.latency",)

#: Metric family prefixes that are pure functions of the simulated
#: request/decision sequence.  Everything else is either wall-clock
#: (``serve.latency``) or depends on process-local cache state that a
#: checkpoint resume legitimately rebuilds differently
#: (``fleet.pricing`` hit/miss, ``pipeline.*``) -- those families may
#: not appear in a digested, resume-stable health section.
SIMULATION_FAMILY_PREFIXES = (
    "serve.requests",
    "serve.sheds",
    "serve.errors",
    "serve.batch",
    "serve.queue_depth",
    "serve.worker_up",
    "router.",
    "fleet.governor",
    "scenario.",
)


def deterministic_projection(
    snapshot: Dict[str, Any],
    drop: Sequence[str] = WALL_CLOCK_FAMILIES,
) -> Dict[str, Any]:
    """Copy of ``snapshot`` without the wall-clock metric families."""
    dropped = set(drop)
    return {
        section: {
            name: cells
            for name, cells in snapshot.get(section, {}).items()
            if name not in dropped
        }
        for section in ("counters", "gauges", "histograms")
    }


def simulation_projection(
    snapshot: Dict[str, Any],
    keep: Sequence[str] = SIMULATION_FAMILY_PREFIXES,
) -> Dict[str, Any]:
    """Copy of ``snapshot`` with only the simulation-stable families.

    This is what a scenario samples into its health series: the
    retained families replay identically from any checkpoint, so the
    windowed rollups (and the alerts judged on them) are byte-stable
    across run / resume / same-seed re-run.
    """
    prefixes = tuple(keep)
    return {
        section: {
            name: cells
            for name, cells in snapshot.get(section, {}).items()
            if name.startswith(prefixes)
        }
        for section in ("counters", "gauges", "histograms")
    }


@dataclass(frozen=True)
class Signal:
    """How to read one scalar out of a window rollup.

    ``kind`` is one of:

    * ``"percentile"`` -- window-delta percentile of a histogram
      family (``percentile`` of 50/95/99); weight = delta count.
    * ``"rate"`` -- counter delta rate per second; label ``"*"`` sums
      every cell of the family; weight = delta.
    * ``"ratio"`` -- counter delta over counter delta (e.g. sheds /
      requests); weight = denominator delta.
    * ``"gauge"`` -- last sampled gauge value; weight = 1.
    """

    kind: str
    family: str
    label: str = "*"
    percentile: int = 95
    den_family: str = ""
    den_label: str = "*"

    def describe(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "kind": self.kind,
            "family": self.family,
            "label": self.label,
        }
        if self.kind == "percentile":
            out["percentile"] = self.percentile
        if self.kind == "ratio":
            out["den_family"] = self.den_family
            out["den_label"] = self.den_label
        return out


def _counter_delta(
    rollup: Dict[str, Any], family: str, label: str
) -> Optional[float]:
    cells = rollup.get("counters", {}).get(family)
    if cells is None:
        return None
    if label == "*":
        return sum(cell["delta"] for cell in cells.values())
    cell = cells.get(label)
    return None if cell is None else cell["delta"]


def signal_value(
    signal: Signal, rollup: Dict[str, Any]
) -> Tuple[Optional[float], float]:
    """``(measured, weight)`` for a signal over one rollup.

    ``measured`` is ``None`` when the window holds no data for the
    signal (family absent, or a ratio with a zero denominator).
    """
    if signal.kind == "percentile":
        cells = rollup.get("histograms", {}).get(signal.family, {})
        cell = cells.get(signal.label)
        if cell is None or cell["delta_count"] <= 0:
            return None, 0.0
        return cell[f"p{signal.percentile}_s"], cell["delta_count"]
    if signal.kind == "rate":
        delta = _counter_delta(rollup, signal.family, signal.label)
        if delta is None:
            return None, 0.0
        interval = rollup.get("interval_s", 0.0)
        return (delta / interval if interval else 0.0), delta
    if signal.kind == "ratio":
        den = _counter_delta(
            rollup, signal.den_family, signal.den_label
        )
        if den is None or den <= 0:
            return None, 0.0
        # A live denominator with no numerator cell measures 0, not
        # "no data": whether the cell exists yet is process history
        # (counter residue), and the measurement must not depend on it.
        num = _counter_delta(rollup, signal.family, signal.label)
        return (num or 0.0) / den, den
    if signal.kind == "gauge":
        cells = rollup.get("gauges", {}).get(signal.family, {})
        if signal.label == "*":
            if not cells:
                return None, 0.0
            return sum(c["last"] for c in cells.values()), 1.0
        cell = cells.get(signal.label)
        return (None, 0.0) if cell is None else (cell["last"], 1.0)
    raise ValueError(f"unknown signal kind {signal.kind!r}")


@dataclass(frozen=True)
class SLO:
    """One objective judged by a two-window burn-rate rule."""

    name: str
    signal: Signal
    objective: float
    comparator: str = "le"
    fast_window_s: float = 300.0
    slow_window_s: float = 3600.0
    fast_burn: float = 1.0
    slow_burn: float = 1.0
    min_weight: float = 1.0
    severity: str = "page"
    description: str = ""

    def __post_init__(self):
        if self.comparator not in ("le", "ge"):
            raise ValueError(
                f"comparator must be 'le' or 'ge', got {self.comparator!r}"
            )
        if self.objective <= 0:
            raise ValueError("objective must be positive")

    def burn(self, measured: float) -> float:
        """Budgets consumed: >= 1.0 means the objective is exhausted."""
        if self.comparator == "le":
            return measured / self.objective
        return float("inf") if measured <= 0 else self.objective / measured

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "signal": self.signal.describe(),
            "objective": self.objective,
            "comparator": self.comparator,
            "fast_window_s": self.fast_window_s,
            "slow_window_s": self.slow_window_s,
            "fast_burn": self.fast_burn,
            "slow_burn": self.slow_burn,
            "severity": self.severity,
        }


@dataclass(frozen=True)
class Alert:
    """One state transition of one SLO, stamped with injected time."""

    t_s: float
    name: str
    severity: str
    state: str  # "firing" | "resolved"
    burn_fast: float
    burn_slow: float
    measured_fast: Optional[float]
    measured_slow: Optional[float]
    objective: float
    comparator: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "t_s": self.t_s,
            "name": self.name,
            "severity": self.severity,
            "state": self.state,
            "burn_fast": self.burn_fast,
            "burn_slow": self.burn_slow,
            "measured_fast": self.measured_fast,
            "measured_slow": self.measured_slow,
            "objective": self.objective,
            "comparator": self.comparator,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Alert":
        return cls(**data)


class SLOEvaluator:
    """Evaluates a set of SLOs against a series store, edge-triggered.

    Keeps per-SLO firing state so the alert list records transitions
    only; every transition is also recorded into the decision audit
    log (kind ``slo.<name>``) with the burn inputs that caused it.
    """

    MAX_ALERTS = 4096

    def __init__(
        self,
        slos: Sequence[SLO],
        audit: Optional[DecisionLog] = None,
    ):
        names = [slo.name for slo in slos]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names in {names}")
        self.slos = tuple(slos)
        self._audit = audit
        self._active: Dict[str, bool] = {
            slo.name: False for slo in self.slos
        }
        self.alerts: List[Alert] = []
        self.dropped_alerts = 0
        self.evaluations = 0

    def evaluate(
        self, store: SeriesStore, t_s: float
    ) -> List[Alert]:
        """Judge every SLO at ``t_s``; return the new transitions."""
        self.evaluations += 1
        transitions: List[Alert] = []
        for slo in self.slos:
            fast = store.rollup(slo.fast_window_s, end_s=t_s)
            slow = store.rollup(slo.slow_window_s, end_s=t_s)
            measured_fast, _ = signal_value(slo.signal, fast)
            measured_slow, weight = signal_value(slo.signal, slow)
            if measured_slow is None or weight < slo.min_weight:
                # Not enough data to judge; hold the current state.
                continue
            burn_slow = slo.burn(measured_slow)
            burn_fast = (
                slo.burn(measured_fast)
                if measured_fast is not None
                else 0.0
            )
            firing = (
                burn_fast >= slo.fast_burn
                and burn_slow >= slo.slow_burn
            )
            if firing == self._active[slo.name]:
                continue
            self._active[slo.name] = firing
            alert = Alert(
                t_s=float(t_s),
                name=slo.name,
                severity=slo.severity,
                state="firing" if firing else "resolved",
                burn_fast=burn_fast,
                burn_slow=burn_slow,
                measured_fast=measured_fast,
                measured_slow=measured_slow,
                objective=slo.objective,
                comparator=slo.comparator,
            )
            transitions.append(alert)
            if len(self.alerts) >= self.MAX_ALERTS:
                self.dropped_alerts += 1
            else:
                self.alerts.append(alert)
            audit = self._audit or get_audit_log()
            audit.record(
                f"slo.{slo.name}",
                alert.state,
                t_s=alert.t_s,
                burn_fast=alert.burn_fast,
                burn_slow=alert.burn_slow,
                objective=slo.objective,
                severity=slo.severity,
            )
        return transitions

    def active(self) -> List[str]:
        """Names of currently firing SLOs, sorted."""
        return sorted(
            name for name, firing in self._active.items() if firing
        )

    def timeline(self) -> List[Dict[str, Any]]:
        """The full transition history as JSON-safe dicts."""
        return [alert.to_dict() for alert in self.alerts]

    def to_state(self) -> Dict[str, Any]:
        return {
            "active": dict(sorted(self._active.items())),
            "alerts": self.timeline(),
            "dropped_alerts": self.dropped_alerts,
            "evaluations": self.evaluations,
        }

    @classmethod
    def from_state(
        cls,
        state: Dict[str, Any],
        slos: Sequence[SLO],
        audit: Optional[DecisionLog] = None,
    ) -> "SLOEvaluator":
        evaluator = cls(slos, audit=audit)
        for name, firing in state.get("active", {}).items():
            if name in evaluator._active:
                evaluator._active[name] = bool(firing)
        evaluator.alerts = [
            Alert.from_dict(data) for data in state.get("alerts", [])
        ]
        evaluator.dropped_alerts = int(state.get("dropped_alerts", 0))
        evaluator.evaluations = int(state.get("evaluations", 0))
        return evaluator


def default_serve_slos(
    p95_objective_s: float = 0.5,
    p99_objective_s: float = 2.0,
    shed_ratio: float = 0.05,
    error_ratio: float = 0.01,
) -> Tuple[SLO, ...]:
    """Objectives for a live serve tier (wall-clock latency allowed)."""
    return (
        SLO(
            name="serve-latency-p95",
            signal=Signal(
                kind="percentile",
                family="serve.latency",
                label="op=plan",
                percentile=95,
            ),
            objective=p95_objective_s,
            description="p95 plan latency stays under the objective",
        ),
        SLO(
            name="serve-latency-p99",
            signal=Signal(
                kind="percentile",
                family="serve.latency",
                label="op=plan",
                percentile=99,
            ),
            objective=p99_objective_s,
            description="p99 plan latency stays under the objective",
        ),
        SLO(
            name="serve-shed-ratio",
            signal=Signal(
                kind="ratio",
                family="serve.sheds",
                den_family="serve.requests",
            ),
            objective=shed_ratio,
            description="shed fraction of requests stays under budget",
        ),
        SLO(
            name="serve-error-ratio",
            signal=Signal(
                kind="ratio",
                family="serve.errors",
                den_family="serve.requests",
            ),
            objective=error_ratio,
            description="error fraction of requests stays under budget",
        ),
    )


def default_scenario_slos(
    shed_ratio: float = 0.10,
    replan_applied_ratio: float = 0.5,
    oracle_gap_pct: float = 25.0,
    governor_drift: float = 1.0,
    fast_window_s: float = 3600.0,
    slow_window_s: float = 6 * 3600.0,
) -> Tuple[SLO, ...]:
    """Deterministic objectives for simulated fleets.

    Only wall-clock-free signals: shed/replan counters and the
    engine-published health gauges (``scenario.oracle_gap_pct``,
    ``scenario.governor_drift``).  Windows default to sim-hours to
    match scenario tick cadence.
    """
    windows = dict(
        fast_window_s=fast_window_s, slow_window_s=slow_window_s
    )
    return (
        SLO(
            name="scenario-shed-ratio",
            signal=Signal(
                kind="ratio",
                family="serve.sheds",
                den_family="serve.requests",
            ),
            objective=shed_ratio,
            description="fleet shed fraction stays under budget",
            **windows,
        ),
        SLO(
            name="scenario-replan-applied",
            signal=Signal(
                kind="ratio",
                family="fleet.governor",
                label="event=replan",
                den_family="fleet.governor",
                den_label="event=replan_pending",
            ),
            objective=replan_applied_ratio,
            comparator="ge",
            min_weight=4.0,
            severity="ticket",
            description=(
                "replan intents raised by governors that land as "
                "applied plans stay above the floor"
            ),
            **windows,
        ),
        SLO(
            name="scenario-oracle-gap",
            signal=Signal(
                kind="gauge",
                family="scenario.oracle_gap_pct",
                label="",
            ),
            objective=oracle_gap_pct,
            severity="ticket",
            description=(
                "energy gap vs the omniscient oracle stays under the "
                "objective"
            ),
            **windows,
        ),
        SLO(
            name="scenario-governor-drift",
            signal=Signal(
                kind="gauge",
                family="scenario.governor_drift",
                label="",
            ),
            objective=governor_drift,
            severity="ticket",
            description="mean telemetry drift stays under the objective",
            **windows,
        ),
    )
