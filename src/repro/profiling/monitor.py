"""Per-layer runtime monitoring (paper Sec. III-B, Step 2A).

The paper's profiling harness triggers on-board timers between layer
code segments and samples board power with the INA219 before/after the
DVFS integration.  :class:`LayerMonitor` reproduces that measurement
chain on top of the simulated hardware:

* latency is measured through :class:`~repro.mcu.timers.HardwareTimer`
  and therefore tick-quantized;
* energy is measured by sampling the layer's piecewise-constant power
  trace with the :class:`~repro.power.sensor.INA219Sensor`, including
  quantization, noise and (optional) thermal drift.

Tests use the monitor to show the measured pipeline converges to the
analytic truth (and that the paper's baseline-differential trick
cancels drift); the DSE uses analytic values by default but can be
switched to measured mode for end-to-end fidelity runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import ProfilingError
from ..mcu.board import Board
from ..mcu.timers import HardwareTimer, TimerConfig
from ..power.energy import EnergyInterval
from ..power.sensor import INA219Config, INA219Sensor


@dataclass(frozen=True)
class Measurement:
    """One monitored layer execution.

    Attributes:
        latency_s: timer-quantized latency.
        energy_j: sensor-integrated energy.
        true_latency_s: the analytic latency (for error analysis).
        true_energy_j: the analytic energy.
        samples: number of power samples the sensor produced.
    """

    latency_s: float
    energy_j: float
    true_latency_s: float
    true_energy_j: float
    samples: int

    @property
    def latency_error(self) -> float:
        """Relative latency measurement error."""
        if self.true_latency_s == 0:
            return 0.0
        return abs(self.latency_s - self.true_latency_s) / self.true_latency_s

    @property
    def energy_error(self) -> float:
        """Relative energy measurement error."""
        if self.true_energy_j == 0:
            return 0.0
        return abs(self.energy_j - self.true_energy_j) / self.true_energy_j


class LayerMonitor:
    """Timer + power-sensor measurement pipeline.

    Args:
        board: the simulated board (provides the timer's clock).
        sensor_config: INA219 configuration; the default uses a finer
            50 us conversion period so single layers receive several
            samples, as the paper's tuned profiling setup does.
        timer_config: timer prescaler/width.
    """

    def __init__(
        self,
        board: Board,
        sensor_config: Optional[INA219Config] = None,
        timer_config: Optional[TimerConfig] = None,
    ):
        self.board = board
        self.sensor = INA219Sensor(
            sensor_config or INA219Config(sample_period_s=50e-6)
        )
        self._timer_config = timer_config or TimerConfig()

    def measure_trace(
        self,
        intervals: List[EnergyInterval],
        timer_clock_hz: Optional[float] = None,
        start_time_s: float = 0.0,
    ) -> Measurement:
        """Measure one layer's power trace.

        Args:
            intervals: piecewise-constant power trace of the layer.
            timer_clock_hz: clock feeding the timer (defaults to the
                board's current SYSCLK).
            start_time_s: absolute time of the measurement (relevant
                when the sensor models thermal drift).

        Raises:
            ProfilingError: on an empty trace.
        """
        if not intervals:
            raise ProfilingError("cannot measure an empty trace")
        true_latency = sum(i.duration_s for i in intervals)
        true_energy = sum(i.energy_j for i in intervals)
        timer = HardwareTimer(
            sysclk_hz=timer_clock_hz or self.board.rcc.sysclk_hz,
            config=self._timer_config,
        )
        measured_latency = timer.measure(true_latency)
        samples = self.sensor.measure(intervals, start_time_s=start_time_s)
        measured_energy = self.sensor.estimate_energy(samples)
        # The sample train covers the true trace duration (the final
        # sample is clamped to the tail); rescale the rectangle-rule
        # estimate to the *timer-measured* duration so both observables
        # come from the same quantized window (the paper's harness
        # aligns windows the same way).
        covered = self.sensor.covered_duration_s(samples)
        if covered > 0 and measured_latency > 0:
            measured_energy *= measured_latency / covered
        return Measurement(
            latency_s=measured_latency,
            energy_j=measured_energy,
            true_latency_s=true_latency,
            true_energy_j=true_energy,
            samples=len(samples),
        )
