"""Per-layer monitoring and profiling (paper Step 2A)."""

from .monitor import LayerMonitor, Measurement
from .profiler import LayerProfiler, ProfileRecord

__all__ = [
    "LayerMonitor",
    "Measurement",
    "LayerProfiler",
    "ProfileRecord",
]
