"""Per-layer (g, clock) profiling through the measurement pipeline.

Where :class:`~repro.dse.explorer.DSEExplorer` prices candidates
analytically, :class:`LayerProfiler` runs the same candidates through
the simulated measurement chain -- hardware timer plus INA219 power
sampling -- producing the kind of noisy-but-faithful records the
paper's Step 2A harness collects on real hardware.  Feeding *measured*
records into the Pareto/MCKP pipeline demonstrates the methodology is
robust to realistic profiling error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from ..clock.configs import ClockConfig
from ..dse.explorer import layer_intervals
from ..dse.space import DesignSpace
from ..engine.cost import TraceBuilder, TraceParams
from ..mcu.board import Board
from ..nn.graph import Model, Node
from ..nn.layers.base import LayerKind
from .monitor import LayerMonitor, Measurement


@dataclass(frozen=True)
class ProfileRecord:
    """One measured (layer, granularity, HFO) candidate."""

    node_id: int
    layer_name: str
    layer_kind: LayerKind
    granularity: int
    hfo: ClockConfig
    measurement: Measurement

    @property
    def latency_s(self) -> float:
        """Measured latency."""
        return self.measurement.latency_s

    @property
    def energy_j(self) -> float:
        """Measured energy."""
        return self.measurement.energy_j


class LayerProfiler:
    """Profiles layers across the design space with simulated sensors.

    Args:
        board: the simulated board.
        space: granularities and clock candidates to profile.
        monitor: measurement chain (defaults to a fresh
            :class:`LayerMonitor` on the board).
        trace_params: access-pattern constants.
    """

    def __init__(
        self,
        board: Board,
        space: DesignSpace,
        monitor: Optional[LayerMonitor] = None,
        trace_params: Optional[TraceParams] = None,
    ):
        self.board = board
        self.space = space
        self.monitor = monitor or LayerMonitor(board)
        self.tracer = TraceBuilder(board, trace_params)

    def profile_candidate(
        self,
        model: Model,
        node: Node,
        granularity: int,
        hfo: ClockConfig,
        start_time_s: float = 0.0,
        assume_relock: bool = True,
    ) -> ProfileRecord:
        """Measure one (layer, g, HFO) candidate.

        Args:
            assume_relock: include the per-layer PLL reprogram in the
                measured execution (how an isolated hardware campaign
                sees each layer); the pipeline disables it to stay
                consistent with its sequence-aware refinement.
        """
        trace = self.tracer.build(model, node, granularity)
        account = layer_intervals(
            self.board, trace, hfo, self.space.lfo,
            assume_relock=assume_relock,
        )
        measurement = self.monitor.measure_trace(
            account.as_power_trace(),
            timer_clock_hz=hfo.sysclk_hz,
            start_time_s=start_time_s,
        )
        return ProfileRecord(
            node_id=node.node_id,
            layer_name=node.layer.name,
            layer_kind=node.layer.kind,
            granularity=trace.granularity,
            hfo=hfo,
            measurement=measurement,
        )

    def profile_layer(
        self, model: Model, node: Node, assume_relock: bool = True
    ) -> List[ProfileRecord]:
        """Measure every design-space candidate of one layer.

        Measurements are spaced in absolute time the way a sequential
        hardware campaign would be, so thermal drift (when configured
        on the sensor) evolves across the sweep.
        """
        records: List[ProfileRecord] = []
        granularities: Iterable[int] = (
            self.space.granularities if node.layer.supports_dae else (0,)
        )
        clock_s = 0.0
        for g in granularities:
            for hfo in self.space.hfo_configs:
                record = self.profile_candidate(
                    model, node, g, hfo, start_time_s=clock_s,
                    assume_relock=assume_relock,
                )
                clock_s += record.measurement.true_latency_s
                records.append(record)
        return records
