"""The scenario engine: a seeded fleet lifecycle simulator.

Composes every layer the repo already has into one discrete-event
simulation over simulated days: arrival generators decide which
devices run QoS windows each tick, per-device governors supervise
drift (battery sag, thermal pick-flips, staged faults) with injected
simulated timestamps, churn events grow and shrink the fleet, and
every re-plan the governors want is routed through the serve tier's
admission control before it is applied -- the closed loop between the
device fleet and planning-as-a-service.

Determinism is the design axiom: the event queue orders on
``(time, priority, insertion)``, every stochastic stream is a spawned
``SeedSequence`` child keyed by purpose and device, no wall-clock
value enters any decision, and the final :class:`ScenarioReport`
digests bit-exactly.  A scenario with no events layered on (constant
arrivals, flat ambient, no churn, no faults, admission always open)
collapses to the plain fleet epoch path -- same fleet digest.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..analysis.battery import Battery
from ..errors import ReproError
from ..faults.campaign import (
    SCENARIO_STAGE_BASE,
    CampaignClocks,
    FaultCampaign,
)
from ..faults.plan import FaultKind
from ..fleet.governor import FleetGovernor, GovernorConfig
from ..fleet.report import FleetReport, aggregate_fleet
from ..fleet.scheduler import DeviceResult, FleetScheduler
from ..fleet.variation import (
    DeviceProfile,
    VariationModel,
    sample_device,
)
from ..power.model import PowerModelParams
from ..nn import PAPER_MODELS, build_tiny_test_model
from ..obs.audit import get_audit_log
from ..obs.registry import get_registry, merge_snapshot, snapshot_digest
from ..obs.series import SeriesStore, subtract_snapshot
from ..obs.slo import (
    SLOEvaluator,
    default_scenario_slos,
    simulation_projection,
)
from ..obs.tracing import span
from ..optimize import QoSLevel
from ..recovery.checkpoint import ScenarioCheckpoint, load_checkpoint
from ..serve.admission import ArrivalClock
from ..serve.router import RouterConfig, ShardRouter
from ..serve.server import PlanServer, ServeConfig
from .arrivals import ArrivalModel, ConstantArrivals
from .churn import ChurnModel, ChurnProcess
from .environment import AmbientCycle
from .events import EventKind, EventQueue, SimClock
from .oracle import OracleTwin
from .report import ScenarioReport

_MODEL_BUILDERS = {**PAPER_MODELS, "tiny": build_tiny_test_model}


@dataclass
class ScenarioConfig:
    """Everything one scenario run is built from.

    Attributes:
        name: label carried into the report (presets set theirs).
        model_name: deployed network (must be known to the serve tier).
        qos_percent: latency slack relative to the baseline.
        devices: fleet size at t=0.
        horizon_s: simulated span.
        tick_s: engine tick; each active device runs one telemetry
            epoch per tick it has demand in.
        seed: root seed for fleet sampling.
        governor: per-device supervision tuning (``epochs`` is unused;
            the engine drives :meth:`~repro.fleet.governor.FleetGovernor.step`
            on scenario time).
        arrivals / ambient / churn / campaign: the lifecycle layers.
        serve: admission/control-plane configuration of the in-loop
            serve tier (None = always-admit defaults, batching off --
            micro-batch windows are wall-clock and pointless when the
            engine submits sequentially).
        shards: >0 routes replans through a ShardRouter with this many
            worker processes instead of the in-process server.
        oracle_stride: twin every Nth initial device with a
            clairvoyant oracle (0 disables the gap metric).
        storm_threshold: replan intents in one tick that count the
            tick as a replan storm.
        max_workers: planner thread-pool width for initial deployment.
        boards: registry names to mix the fleet across (devices are
            assigned round-robin-free from a dedicated seed stream, as
            :func:`repro.fleet.variation.sample_fleet` does).  ``None``
            keeps the homogeneous default-board pool -- and the
            scenario digest -- byte-identical to pre-registry runs.
        monitor: sample the wall-clock-free registry projection into a
            :class:`~repro.obs.series.SeriesStore` every tick, judge
            the scenario SLOs on it, and embed the resulting ``health``
            section in the report.  Off for the zero-event preset,
            whose digest is pinned to the pre-monitor tree.
        monitor_capacity: ring size of the health series (samples).
        monitor_window_s: rollup window of the report's health section
            (sim seconds).
    """

    name: str = "custom"
    model_name: str = "tiny"
    qos_percent: float = 30.0
    devices: int = 100
    horizon_s: float = 3600.0
    tick_s: float = 60.0
    seed: int = 0
    governor: GovernorConfig = field(
        default_factory=lambda: GovernorConfig(max_replans=64)
    )
    arrivals: ArrivalModel = field(default_factory=ConstantArrivals)
    ambient: AmbientCycle = field(default_factory=AmbientCycle)
    churn: ChurnModel = field(default_factory=ChurnModel)
    campaign: Optional[FaultCampaign] = None
    serve: Optional[ServeConfig] = None
    shards: int = 0
    oracle_stride: int = 0
    storm_threshold: int = 10
    max_workers: int = 4
    boards: Optional[Tuple[str, ...]] = None
    monitor: bool = True
    monitor_capacity: int = 256
    monitor_window_s: float = 3600.0

    def __post_init__(self) -> None:
        if self.model_name not in _MODEL_BUILDERS:
            raise ReproError(
                f"unknown model {self.model_name!r}; choose from "
                f"{sorted(_MODEL_BUILDERS)}"
            )
        if self.devices < 1:
            raise ReproError("devices must be >= 1")
        if self.horizon_s <= 0:
            raise ReproError("horizon_s must be positive")
        if self.tick_s <= 0:
            raise ReproError("tick_s must be positive")
        if self.shards < 0:
            raise ReproError("shards must be >= 0")
        if self.oracle_stride < 0:
            raise ReproError("oracle_stride must be >= 0")
        if self.storm_threshold < 1:
            raise ReproError("storm_threshold must be >= 1")
        if self.monitor_capacity < 2:
            raise ReproError("monitor_capacity must be >= 2")
        if self.monitor_window_s <= 0:
            raise ReproError("monitor_window_s must be positive")
        if self.boards is not None:
            if not self.boards:
                raise ReproError("boards must be None or non-empty")
            self.boards = tuple(self.boards)
            from ..boards.registry import get_spec

            for name in self.boards:
                get_spec(name)  # raises BoardError on unknown names

    def describe(self) -> Dict:
        """JSON-ready generator description (digested in the report).

        The ``boards`` key appears only when the scenario mixes board
        targets, so default-board scenario digests pin byte-identically
        across the registry refactor; the ``monitor`` key likewise
        appears only when health monitoring is on, so monitor-off runs
        (the zero-event pin) digest as before the monitor existed.
        """
        data = {
            "arrivals": self.arrivals.describe(),
            "ambient": self.ambient.to_dict(),
            "churn": self.churn.to_dict(),
            "campaign": (
                self.campaign.to_dict()
                if self.campaign is not None
                else None
            ),
            "serve": {
                "shards": self.shards,
                "rate_per_s": (
                    self.serve.rate_per_s
                    if self.serve is not None
                    else None
                ),
                "burst": (
                    self.serve.burst if self.serve is not None else None
                ),
                "max_queue_depth": (
                    self.serve.max_queue_depth
                    if self.serve is not None
                    else None
                ),
            },
            "governor": {
                "epoch_s": self.governor.epoch_s,
                "drift_threshold": self.governor.drift_threshold,
                "max_replans": self.governor.max_replans,
            },
            "oracle_stride": self.oracle_stride,
            "storm_threshold": self.storm_threshold,
        }
        if self.boards is not None:
            data["boards"] = list(self.boards)
        if self.monitor:
            data["monitor"] = {
                "capacity": self.monitor_capacity,
                "window_s": self.monitor_window_s,
            }
        return data


class ServeBridge:
    """Synchronous client for the in-loop serve tier.

    Owns a private asyncio loop and drives the server's in-process
    dict entry point -- no sockets, no wall-clock in any decision.
    Admission (the part the scenario observes) is deterministic when
    the serve config pins ``admission_tick_s``; the bridge's own
    counters are pure functions of the request sequence.
    """

    def __init__(self, config: ScenarioConfig):
        serve_cfg = config.serve or ServeConfig()
        # Micro-batching coalesces on a wall-clock window; the engine
        # submits strictly sequentially, so it only adds latency.
        serve_cfg.batch_enabled = False
        self._loop = asyncio.new_event_loop()
        self._started = False
        if config.shards > 0:
            self._server = ShardRouter(
                RouterConfig(shards=config.shards, serve=serve_cfg)
            )
            self._loop.run_until_complete(self._server.start())
            self._started = True
        else:
            self._server = PlanServer(serve_cfg)
        self._next_id = 0
        self.requests: Dict[str, int] = {}
        self.sheds: Dict[str, int] = {}
        self.errors: Dict[str, int] = {}

    def request(self, op: str, params: Dict) -> Dict:
        """One control-plane round trip; returns the response dict."""
        self._next_id += 1
        self.requests[op] = self.requests.get(op, 0) + 1
        response = self._loop.run_until_complete(
            self._server.handle_request_dict(
                {
                    "v": 1,
                    "id": f"scn-{self._next_id}",
                    "op": op,
                    "params": params,
                }
            )
        )
        if not response.get("ok", False):
            kind = (response.get("error") or {}).get("kind", "unknown")
            if kind == "overloaded":
                self.sheds[op] = self.sheds.get(op, 0) + 1
            else:
                self.errors[kind] = self.errors.get(kind, 0) + 1
        return response

    @staticmethod
    def shed(response: Dict) -> bool:
        """Whether the control plane shed this request."""
        return (
            not response.get("ok", False)
            and (response.get("error") or {}).get("kind") == "overloaded"
        )

    def counters(self) -> Dict:
        """Deterministic control-plane counters for the report."""
        return {
            "requests": dict(sorted(self.requests.items())),
            "sheds": dict(sorted(self.sheds.items())),
            "errors": dict(sorted(self.errors.items())),
        }

    def close(self) -> None:
        """Stop the server (and shard workers) and the private loop."""
        try:
            self._loop.run_until_complete(self._server.stop())
        finally:
            self._loop.close()


class ScenarioEngine:
    """Runs one :class:`ScenarioConfig` to a :class:`ScenarioReport`."""

    def __init__(self, config: ScenarioConfig):
        self.config = config
        self.model = _MODEL_BUILDERS[config.model_name]()
        self.qos_level = QoSLevel(
            name=f"{config.qos_percent:g}%",
            slack=config.qos_percent / 100.0,
        )
        self.clock = SimClock()
        self.queue = EventQueue()
        self.churn_proc = ChurnProcess(config.churn)
        self.campaign_clocks = (
            CampaignClocks(config.campaign)
            if config.campaign is not None
            else None
        )
        self.scheduler = FleetScheduler(
            self.model,
            qos_level=self.qos_level,
            max_workers=config.max_workers,
        )
        # Fleet pool: initial devices plus one pre-sampled profile per
        # scheduled JOIN.  SeedSequence.spawn is prefix-stable, so the
        # first ``devices`` profiles are bit-identical to a plain
        # ``sample_fleet(devices, seed)``.
        self._join_times = self.churn_proc.join_times(config.horizon_s)
        self._leave_times = self.churn_proc.leave_times(config.horizon_s)
        n_pool = config.devices + len(self._join_times)
        variation = VariationModel()
        base_power = PowerModelParams()
        base_battery = Battery()
        root = np.random.SeedSequence(config.seed)
        children = root.spawn(n_pool)
        if config.boards is None:
            self.pool: List[DeviceProfile] = [
                sample_device(i, child, variation, base_power, base_battery)
                for i, child in enumerate(children)
            ]
        else:
            # Board assignment draws from its own sibling stream (as
            # sample_fleet does), so per-device variation streams are
            # identical to the homogeneous pool of the same seed.
            from ..boards.registry import get_spec

            board_list = list(config.boards)
            specs = {name: get_spec(name) for name in board_list}
            assign_rng = np.random.default_rng(root.spawn(1)[0])
            assignment = [
                board_list[int(k)]
                for k in assign_rng.integers(
                    0, len(board_list), size=n_pool
                )
            ]
            self.pool = [
                sample_device(
                    i,
                    child,
                    variation,
                    specs[assignment[i]].base_power_params(),
                    base_battery,
                    board_name=assignment[i],
                )
                for i, child in enumerate(children)
            ]

        # Run state.
        self._bridge: Optional[ServeBridge] = None
        self.events_processed = 0
        #: Pool indices planned by JOIN events, in processing order --
        #: resume replays these (planning is deterministic) to rebuild
        #: joined governors before overwriting their mutable state.
        self._planned_pool_indices: List[int] = []
        self.governors: Dict[int, FleetGovernor] = {}
        self.results: Dict[int, DeviceResult] = {}
        self.live: Set[int] = set()
        self.quarantined: Set[int] = set()
        self.last_end: Dict[int, float] = {}
        self.invalid_streak: Dict[int, int] = {}
        self.twins: Dict[int, OracleTwin] = {}
        self._governed_twin_energy = 0.0
        self._ambient_delta = 0.0

        # Health monitor: one wall-clock-free registry sample per tick,
        # judged against the scenario SLOs (None when monitoring off).
        self.series: Optional[SeriesStore] = None
        self.slo_evaluator: Optional[SLOEvaluator] = None
        self._monitor_anchor: Optional[Tuple[Dict, Dict]] = None
        if config.monitor:
            self.series = SeriesStore(capacity=config.monitor_capacity)
            self.slo_evaluator = SLOEvaluator(default_scenario_slos())

        # Counters and timelines.
        self.demand = {
            "windows_requested": 0,
            "epochs_run": 0,
            "windows_deferred": 0,
        }
        self.replans = {
            "requested": 0,
            "applied": 0,
            "unavailable": 0,
            "shed": 0,
            "storm_peak": 0,
            "storm_ticks": 0,
        }
        self.churn_totals = {
            "joins": 0,
            "join_deferred": 0,
            "join_failed": 0,
            "join_rejected": 0,
            "leaves": 0,
            "quarantines": 0,
            "repairs": 0,
            "final_devices": 0,
        }
        self.shed_timeline: List[Dict] = []
        self.lifecycle_timeline: List[Dict] = []

    # -- setup -------------------------------------------------------------------

    def _deploy_initial_fleet(self) -> None:
        cfg = self.config
        initial = self.pool[: cfg.devices]
        results = self.scheduler.run(initial, pooled=cfg.max_workers > 1)
        for result in results:
            self._register_device(result, t_s=0.0)
        if cfg.oracle_stride > 0:
            for device_id in sorted(self.governors)[:: cfg.oracle_stride]:
                result = self.results[device_id]
                self.twins[device_id] = OracleTwin(
                    self.scheduler.pipeline_for(result.profile),
                    result.profile,
                    self.model,
                    result.optimized,
                    cfg.governor,
                )

    def _register_device(
        self, result: DeviceResult, t_s: float
    ) -> bool:
        """Book a planning outcome; True when the device went live."""
        device_id = result.device_id
        self.results[device_id] = result
        if result.error is not None or result.optimized is None:
            return False
        governor = FleetGovernor(
            self.scheduler.pipeline_for(result.profile),
            result.profile,
            self.model,
            result.optimized,
            self.config.governor,
        )
        governor.start()
        if self._ambient_delta != 0.0:
            governor.set_ambient(
                result.profile.thermal.t_ambient_c + self._ambient_delta
            )
        self.governors[device_id] = governor
        self.live.add(device_id)
        self.last_end[device_id] = t_s
        self.invalid_streak[device_id] = 0
        return True

    def _schedule_events(self) -> None:
        cfg = self.config
        # Tick times are computed by multiplication, not accumulation:
        # ``k * tick_s`` is the exact float the governor's own clock
        # produces, which the zero-event digest pin depends on.
        k = 0
        while k * cfg.tick_s < cfg.horizon_s:
            self.queue.push(k * cfg.tick_s, EventKind.TICK)
            k += 1
        for index, t_join in enumerate(self._join_times):
            self.queue.push(
                t_join, EventKind.JOIN, pool_index=cfg.devices + index
            )
        for t_leave in self._leave_times:
            self.queue.push(t_leave, EventKind.LEAVE)
        if cfg.campaign is not None:
            for stage in cfg.campaign.stages:
                if stage.start_s < cfg.horizon_s:
                    self.queue.push(
                        stage.start_s,
                        EventKind.STAGE_ENTER,
                        label=stage.label,
                    )
                if stage.end_s < cfg.horizon_s:
                    self.queue.push(
                        stage.end_s,
                        EventKind.STAGE_EXIT,
                        label=stage.label,
                    )

    # -- event handlers ----------------------------------------------------------

    def _on_tick(self, t_s: float, bridge: ServeBridge) -> None:
        cfg = self.config
        if not cfg.ambient.is_flat:
            self._ambient_delta = cfg.ambient.delta_at(t_s)
            for device_id in sorted(self.governors):
                base = self.results[device_id].profile.thermal
                self.governors[device_id].set_ambient(
                    base.t_ambient_c + self._ambient_delta
                )
            for device_id in sorted(self.twins):
                base = self.results[device_id].profile.thermal
                self.twins[device_id].set_ambient(
                    base.t_ambient_c + self._ambient_delta
                )
        intents: List[Tuple[int, FleetGovernor, object]] = []
        drift_sum, drift_n = 0.0, 0
        for device_id in sorted(self.live | self.quarantined):
            windows = cfg.arrivals.windows_at(device_id, t_s, cfg.tick_s)
            self.demand["windows_requested"] += windows
            if windows <= 0:
                continue
            if device_id in self.quarantined:
                self.demand["windows_deferred"] += windows
                continue
            governor = self.governors[device_id]
            gap_s = t_s - self.last_end[device_id]
            if gap_s > 0.0:
                governor.idle(gap_s)
            clock = (
                self.campaign_clocks.clock_at(device_id, t_s)
                if self.campaign_clocks is not None
                else None
            )
            sample = governor.step(
                now=t_s, fault_clock=clock, defer_replan=True
            )
            if (
                self.series is not None
                and sample.predicted_energy_j > 0.0
            ):
                drift_sum += (
                    abs(
                        sample.measured_energy_j
                        - sample.predicted_energy_j
                    )
                    / sample.predicted_energy_j
                )
                drift_n += 1
            self.last_end[device_id] = t_s + cfg.governor.epoch_s
            self.demand["epochs_run"] += 1
            twin = self.twins.get(device_id)
            if twin is not None:
                if gap_s > 0.0:
                    twin.idle(gap_s)
                twin.step()
                self._governed_twin_energy += sample.true_energy_j
            if sample.valid:
                self.invalid_streak[device_id] = 0
            else:
                self.invalid_streak[device_id] += 1
                if (
                    cfg.churn.quarantine_after > 0
                    and self.invalid_streak[device_id]
                    >= cfg.churn.quarantine_after
                ):
                    self._quarantine(device_id, t_s, governor)
                    continue
            if governor.pending_replan is not None:
                intents.append((device_id, governor, sample))
        self._route_replans(t_s, intents, bridge)
        if self.series is not None:
            registry = get_registry()
            registry.gauge_set(
                "scenario.governor_drift",
                drift_sum / drift_n if drift_n else 0.0,
            )
            # Published every tick even without twins: the sampled
            # gauge set must be a function of the simulation alone,
            # never of which gauges earlier runs in this process
            # happened to leave behind.
            oracle_j = sum(
                twin.true_energy_j for twin in self.twins.values()
            )
            registry.gauge_set(
                "scenario.oracle_gap_pct",
                (
                    (self._governed_twin_energy - oracle_j)
                    / oracle_j
                    * 100.0
                    if oracle_j > 0.0
                    else 0.0
                ),
            )

    def _sample_health(self, t_s: float) -> None:
        """One monitor sample at sim time ``t_s`` (no-op when off).

        Samples the simulation-stable projection of the process
        registry.  A resumed run's fresh process does not carry the
        original run's counter totals, so post-resume samples are
        spliced onto the checkpointed series: the restored newest
        sample plus the registry activity since the resume base (see
        :func:`~repro.obs.series.subtract_snapshot`) -- which keeps
        every window delta, and with it the health section, identical
        to the uninterrupted run.
        """
        if self.series is None:
            return
        snap = simulation_projection(get_registry().snapshot())
        if self._monitor_anchor is not None:
            last, base = self._monitor_anchor
            snap = merge_snapshot(
                [last, subtract_snapshot(snap, base)],
                gauge_merge="last",
            )
        self.series.sample(t_s, snap)
        if self.slo_evaluator is not None:
            self.slo_evaluator.evaluate(self.series, t_s)

    def _quarantine(
        self, device_id: int, t_s: float, governor: FleetGovernor
    ) -> None:
        self.live.discard(device_id)
        self.quarantined.add(device_id)
        self.churn_totals["quarantines"] += 1
        if governor.pending_replan is not None:
            governor.decline_replan("quarantined")
        self.queue.push(
            t_s + self.config.churn.repair_delay_s,
            EventKind.REPAIR,
            device_id=device_id,
        )
        self.lifecycle_timeline.append(
            {"t_s": t_s, "device_id": device_id, "event": "quarantine"}
        )
        get_audit_log().record(
            "scenario.engine",
            "quarantine",
            device_id=device_id,
            t_s=t_s,
        )
        get_registry().count("scenario.engine", event="quarantine")

    def _board_param(self, pool_index: int) -> Dict:
        """Serve-request board selector for one device ({} when
        homogeneous, so default-board wire requests are unchanged)."""
        if self.config.boards is None:
            return {}
        return {"board": self.pool[pool_index].board.name}

    def _route_replans(
        self,
        t_s: float,
        intents: List[Tuple[int, FleetGovernor, object]],
        bridge: ServeBridge,
    ) -> None:
        cfg = self.config
        storm = len(intents)
        self.replans["requested"] += storm
        if storm > self.replans["storm_peak"]:
            self.replans["storm_peak"] = storm
        if storm >= cfg.storm_threshold:
            self.replans["storm_ticks"] += 1
        tick_sheds = 0
        for device_id, governor, sample in intents:
            intent = governor.pending_replan
            bridge.request(
                "telemetry",
                {
                    "model": cfg.model_name,
                    "predicted_energy_j": sample.predicted_energy_j,
                    "measured_energy_j": sample.measured_energy_j,
                },
            )
            response = bridge.request(
                "reprice",
                {
                    "model": cfg.model_name,
                    "qos_percent": cfg.qos_percent,
                    "extra_power_w": intent.extra_w,
                    "max_hfo_mhz": intent.cap_hz / 1e6,
                    **self._board_param(device_id),
                },
            )
            if ServeBridge.shed(response):
                governor.decline_replan("shed")
                self.replans["shed"] += 1
                tick_sheds += 1
                get_registry().count(
                    "scenario.engine", event="replan_shed"
                )
                continue
            # Control-plane *errors* (as opposed to admission sheds)
            # do not block the device: the governor re-solves locally
            # exactly as the standalone fleet path would.
            if governor.apply_replan():
                self.replans["applied"] += 1
            else:
                self.replans["unavailable"] += 1
        if tick_sheds > 0:
            self.shed_timeline.append(
                {"t_s": t_s, "sheds": tick_sheds}
            )

    def _on_join(
        self, t_s: float, pool_index: int, bridge: ServeBridge
    ) -> None:
        cfg = self.config
        if (
            len(self.live) + len(self.quarantined)
            >= cfg.churn.max_devices
        ):
            self.churn_totals["join_rejected"] += 1
            return
        response = bridge.request(
            "plan",
            {
                "model": cfg.model_name,
                "qos_percent": cfg.qos_percent,
                **self._board_param(pool_index),
            },
        )
        if ServeBridge.shed(response):
            # Provisioning is admission-gated too: a shed join retries
            # one tick later (same pool slot, so the device's sampled
            # hardware does not change).
            self.churn_totals["join_deferred"] += 1
            self.queue.push(
                t_s + cfg.tick_s, EventKind.JOIN, pool_index=pool_index
            )
            self.shed_timeline.append(
                {"t_s": t_s, "sheds": 1, "op": "join"}
            )
            return
        profile = self.pool[pool_index]
        self._planned_pool_indices.append(pool_index)
        result = self.scheduler.plan_device(profile)
        if self._register_device(result, t_s=t_s):
            self.churn_totals["joins"] += 1
            event = "join"
        else:
            self.churn_totals["join_failed"] += 1
            event = "join_failed"
        self.lifecycle_timeline.append(
            {"t_s": t_s, "device_id": profile.device_id, "event": event}
        )
        get_audit_log().record(
            "scenario.engine",
            event,
            device_id=profile.device_id,
            t_s=t_s,
        )
        get_registry().count("scenario.engine", event=event)

    def _on_leave(self, t_s: float) -> None:
        candidates = sorted(self.live)
        if not candidates:
            return
        device_id = self.churn_proc.pick_victim(candidates)
        self.live.discard(device_id)
        self.churn_totals["leaves"] += 1
        self.lifecycle_timeline.append(
            {"t_s": t_s, "device_id": device_id, "event": "leave"}
        )
        get_audit_log().record(
            "scenario.engine", "leave", device_id=device_id, t_s=t_s
        )
        get_registry().count("scenario.engine", event="leave")

    def _on_repair(self, t_s: float, device_id: int) -> None:
        if device_id not in self.quarantined:
            return
        self.quarantined.discard(device_id)
        self.live.add(device_id)
        self.invalid_streak[device_id] = 0
        self.churn_totals["repairs"] += 1
        self.lifecycle_timeline.append(
            {"t_s": t_s, "device_id": device_id, "event": "repair"}
        )
        get_audit_log().record(
            "scenario.engine", "repair", device_id=device_id, t_s=t_s
        )
        get_registry().count("scenario.engine", event="repair")

    # -- the run -----------------------------------------------------------------

    def start(self) -> None:
        """Bring the serve bridge up, deploy t=0, schedule the queue."""
        if self._bridge is None:
            self._bridge = ServeBridge(self.config)
        self._deploy_initial_fleet()
        self._schedule_events()

    def step(self) -> bool:
        """Dispatch the next event; False when the horizon is reached.

        Every return is an *event boundary*: no handler is mid-flight,
        so :meth:`checkpoint` here captures a complete state.
        """
        cfg = self.config
        bridge = self._bridge
        if bridge is None:
            raise ReproError("engine not started (call start() first)")
        if not self.queue:
            return False
        event = self.queue.pop()
        if event.time_s >= cfg.horizon_s:
            # Deferred joins and repairs can land past the horizon;
            # the scenario ends before them.
            return False
        self.clock.advance_to(event.time_s)
        t_s = event.time_s
        if event.kind is EventKind.TICK:
            self._on_tick(t_s, bridge)
            self._sample_health(t_s)
        elif event.kind is EventKind.JOIN:
            self._on_join(t_s, event.payload["pool_index"], bridge)
        elif event.kind is EventKind.LEAVE:
            self._on_leave(t_s)
        elif event.kind is EventKind.REPAIR:
            self._on_repair(t_s, event.payload["device_id"])
        else:  # STAGE_ENTER / STAGE_EXIT
            get_audit_log().record(
                "scenario.engine",
                event.kind.value,
                label=event.payload.get("label", ""),
                t_s=t_s,
            )
        self.events_processed += 1
        return True

    def finish(self) -> ScenarioReport:
        """Fold the accumulated state into the final report."""
        if self._bridge is None:
            raise ReproError("engine not started (call start() first)")
        return self._report(self._bridge)

    def close(self) -> None:
        """Stop the serve bridge (idempotent)."""
        if self._bridge is not None:
            self._bridge.close()
            self._bridge = None

    def run(self) -> ScenarioReport:
        """Simulate the configured horizon and fold up the report."""
        cfg = self.config
        try:
            with span(
                "scenario.run",
                scenario=cfg.name,
                devices=cfg.devices,
                horizon_s=cfg.horizon_s,
            ):
                self.start()
                while self.step():
                    pass
            return self.finish()
        finally:
            self.close()

    # -- checkpoint / resume -----------------------------------------------------

    def checkpoint(self) -> ScenarioCheckpoint:
        """Snapshot the complete mutable state at an event boundary.

        Only meaningful between :meth:`step` calls.  Restricted to
        in-process serving (``shards == 0``): shard worker processes
        hold pipelines the snapshot cannot capture -- but the serve
        *state* the engine observes (admission counters, token bucket,
        arrival clock) is captured exactly, which is all that feeds
        the report.
        """
        cfg = self.config
        if cfg.shards != 0:
            raise ReproError(
                "checkpoint requires shards == 0 (worker processes "
                "cannot be snapshotted)"
            )
        if self._bridge is None:
            raise ReproError("engine not started (call start() first)")
        governors = [
            self._governor_state(device_id, governor)
            for device_id, governor in self.governors.items()
        ]
        twins = [
            self._twin_state(device_id, twin)
            for device_id, twin in self.twins.items()
        ]
        clocks: List[Dict] = []
        if self.campaign_clocks is not None:
            for (device_id, stage_index), clock in sorted(
                self.campaign_clocks._clocks.items()
            ):
                clocks.append(
                    {
                        "device_id": device_id,
                        "stage_index": stage_index,
                        "rng_states": {
                            kind.value: clock._rngs[
                                kind
                            ].bit_generator.state
                            for kind in FaultKind
                        },
                        "opportunities": {
                            kind.value: count
                            for kind, count in clock.opportunities.items()
                        },
                        "injected": {
                            kind.value: count
                            for kind, count in clock.injected.items()
                        },
                    }
                )
        return ScenarioCheckpoint(
            config=cfg,
            events_processed=self.events_processed,
            clock_now=self.clock.now,
            queue_heap=list(self.queue._heap),
            queue_seq=self.queue._seq,
            churn_rng_state=self.churn_proc._victim_rng.bit_generator.state,
            campaign_clocks=clocks,
            governors=governors,
            twins=twins,
            engine={
                "live": set(self.live),
                "quarantined": set(self.quarantined),
                "last_end": dict(self.last_end),
                "invalid_streak": dict(self.invalid_streak),
                "governed_twin_energy": self._governed_twin_energy,
                "ambient_delta": self._ambient_delta,
                "demand": dict(self.demand),
                "replans": dict(self.replans),
                "churn_totals": dict(self.churn_totals),
                "shed_timeline": list(self.shed_timeline),
                "lifecycle_timeline": list(self.lifecycle_timeline),
                "planned_pool_indices": list(self._planned_pool_indices),
                "monitor": (
                    {
                        "series": self.series.to_state(),
                        "slo": self.slo_evaluator.to_state(),
                    }
                    if self.series is not None
                    else None
                ),
            },
            serve=self._serve_state(),
        )

    @staticmethod
    def _governor_state(
        device_id: int, governor: FleetGovernor
    ) -> Dict:
        return {
            "device_id": device_id,
            "plan": governor._plan,
            "battery": governor._battery,
            "thermal": governor._thermal,
            "temperature": governor._temperature,
            "compensated_w": governor._compensated_w,
            "samples": list(governor._samples),
            "replans": governor._replans,
            "invalid_streak": governor._invalid_streak,
            "invalid_epochs": governor._invalid_epochs,
            "css_events": governor._css_events,
            "watchdog_resets": governor._watchdog_resets,
            "pll_retries": governor._pll_retries,
            "epoch": governor._epoch,
            "pending": governor._pending,
            "sensor_rng_state": governor._sensor._rng.bit_generator.state,
        }

    @staticmethod
    def _twin_state(device_id: int, twin: OracleTwin) -> Dict:
        return {
            "device_id": device_id,
            "plan": twin._plan,
            "battery": twin._battery,
            "thermal": twin._thermal,
            "temperature": twin._temperature,
            "bucket": twin._bucket,
            "replans": twin.replans,
            "epochs": twin.epochs,
            "epochs_met": twin.epochs_met,
            "true_energy_j": twin.true_energy_j,
        }

    def _serve_state(self) -> Dict:
        bridge = self._bridge
        server = bridge._server
        admission = server.admission
        bucket = admission.bucket
        state: Dict = {
            "next_id": bridge._next_id,
            "requests": dict(bridge.requests),
            "sheds": dict(bridge.sheds),
            "errors": dict(bridge.errors),
            "admission": {
                "in_flight": admission._in_flight,
                "sheds": dict(admission.sheds),
            },
        }
        if bucket is not None:
            state["bucket"] = {
                "tokens": bucket._tokens,
                "last_s": bucket._last_s,
                "clock_now_s": (
                    bucket._time_fn._now_s
                    if isinstance(bucket._time_fn, ArrivalClock)
                    else None
                ),
            }
        return state

    @classmethod
    def resume(cls, checkpoint: ScenarioCheckpoint) -> "ScenarioEngine":
        """Rebuild an engine mid-run from a checkpoint.

        Deterministic reconstruction first (re-plan the initial fleet
        and every joined device exactly as the original run did --
        planning consumes no RNG), then every mutable attribute is
        overwritten from the snapshot.  The caller drives
        :meth:`step` / :meth:`finish` / :meth:`close` as usual.
        """
        engine = cls(checkpoint.config)
        engine._bridge = ServeBridge(engine.config)
        engine._deploy_initial_fleet()
        # Replay the join-planned devices in processing order so the
        # governors dict -- and with it the report row order -- comes
        # back in exactly the original insertion order.
        for pool_index in checkpoint.engine["planned_pool_indices"]:
            result = engine.scheduler.plan_device(
                engine.pool[pool_index]
            )
            engine._register_device(result, t_s=0.0)
        engine._restore(checkpoint)
        return engine

    def _restore(self, checkpoint: ScenarioCheckpoint) -> None:
        self.events_processed = checkpoint.events_processed
        self.clock._now = checkpoint.clock_now
        self.queue._heap = list(checkpoint.queue_heap)
        self.queue._seq = checkpoint.queue_seq
        self.churn_proc._victim_rng.bit_generator.state = (
            checkpoint.churn_rng_state
        )
        if self.campaign_clocks is not None:
            for entry in checkpoint.campaign_clocks:
                index = entry["stage_index"]
                stage = self.config.campaign.stages[index]
                clock = stage.plan.clock_for(
                    entry["device_id"],
                    stage=SCENARIO_STAGE_BASE + index,
                )
                for kind in FaultKind:
                    clock._rngs[kind].bit_generator.state = entry[
                        "rng_states"
                    ][kind.value]
                clock.opportunities = {
                    FaultKind(k): v
                    for k, v in entry["opportunities"].items()
                }
                clock.injected = {
                    FaultKind(k): v
                    for k, v in entry["injected"].items()
                }
                self.campaign_clocks._clocks[
                    (entry["device_id"], index)
                ] = clock
        for state in checkpoint.governors:
            governor = self.governors[state["device_id"]]
            governor._plan = state["plan"]
            governor._battery = state["battery"]
            governor._thermal = state["thermal"]
            governor._temperature = state["temperature"]
            governor._compensated_w = state["compensated_w"]
            governor._samples = list(state["samples"])
            governor._replans = state["replans"]
            governor._invalid_streak = state["invalid_streak"]
            governor._invalid_epochs = state["invalid_epochs"]
            governor._css_events = state["css_events"]
            governor._watchdog_resets = state["watchdog_resets"]
            governor._pll_retries = state["pll_retries"]
            governor._epoch = state["epoch"]
            governor._pending = state["pending"]
            governor._sensor._rng.bit_generator.state = state[
                "sensor_rng_state"
            ]
        for state in checkpoint.twins:
            twin = self.twins[state["device_id"]]
            twin._plan = state["plan"]
            twin._battery = state["battery"]
            twin._thermal = state["thermal"]
            twin._temperature = state["temperature"]
            twin._bucket = state["bucket"]
            twin.replans = state["replans"]
            twin.epochs = state["epochs"]
            twin.epochs_met = state["epochs_met"]
            twin.true_energy_j = state["true_energy_j"]
        eng = checkpoint.engine
        self.live = set(eng["live"])
        self.quarantined = set(eng["quarantined"])
        self.last_end = dict(eng["last_end"])
        self.invalid_streak = dict(eng["invalid_streak"])
        self._governed_twin_energy = eng["governed_twin_energy"]
        self._ambient_delta = eng["ambient_delta"]
        self.demand = dict(eng["demand"])
        self.replans = dict(eng["replans"])
        self.churn_totals = dict(eng["churn_totals"])
        self.shed_timeline = list(eng["shed_timeline"])
        self.lifecycle_timeline = list(eng["lifecycle_timeline"])
        self._planned_pool_indices = list(eng["planned_pool_indices"])
        monitor = eng.get("monitor")
        if monitor is not None and self.series is not None:
            self.series = SeriesStore.from_state(monitor["series"])
            self.slo_evaluator = SLOEvaluator.from_state(
                monitor["slo"], default_scenario_slos()
            )
            last = self.series.latest()
            if last is not None:
                # Splice base for post-resume samples: the registry as
                # it stands right now (after the deterministic replay
                # of planning) subtracts out, leaving only activity
                # that the original run also accumulated past this
                # checkpoint.
                self._monitor_anchor = (
                    last[1],
                    simulation_projection(get_registry().snapshot()),
                )
        serve = checkpoint.serve
        bridge = self._bridge
        bridge._next_id = serve["next_id"]
        bridge.requests = dict(serve["requests"])
        bridge.sheds = dict(serve["sheds"])
        bridge.errors = dict(serve["errors"])
        admission = bridge._server.admission
        admission._in_flight = serve["admission"]["in_flight"]
        admission.sheds = dict(serve["admission"]["sheds"])
        bucket = admission.bucket
        if bucket is not None and "bucket" in serve:
            bucket._tokens = serve["bucket"]["tokens"]
            bucket._last_s = serve["bucket"]["last_s"]
            if serve["bucket"]["clock_now_s"] is not None and isinstance(
                bucket._time_fn, ArrivalClock
            ):
                bucket._time_fn._now_s = serve["bucket"]["clock_now_s"]

    def _report(self, bridge: ServeBridge) -> ScenarioReport:
        cfg = self.config
        governed = {
            device_id: governor.result()
            for device_id, governor in self.governors.items()
        }
        results = [
            self.results[device_id] for device_id in sorted(self.results)
        ]
        qos_s = next(
            (
                r.optimized.qos_s
                for r in results
                if r.error is None and r.optimized is not None
            ),
            0.0,
        )
        fleet: FleetReport = aggregate_fleet(
            self.model, qos_s, results, governed
        )
        self.churn_totals["final_devices"] = len(self.live) + len(
            self.quarantined
        )
        oracle = None
        if self.twins:
            oracle = {
                "devices": len(self.twins),
                "stride": cfg.oracle_stride,
                "governed_true_energy_j": self._governed_twin_energy,
                "oracle_true_energy_j": sum(
                    twin.true_energy_j for twin in self.twins.values()
                ),
                "oracle_replans": sum(
                    twin.replans for twin in self.twins.values()
                ),
                "oracle_epochs": sum(
                    twin.epochs for twin in self.twins.values()
                ),
            }
        faults = (
            self.campaign_clocks.injected_by_kind()
            if self.campaign_clocks is not None
            else {}
        )
        health = None
        if self.series is not None:
            coverage = self.series.summary()
            # The newest raw snapshot is process-absolute (it can
            # carry counter residue from earlier work in the same
            # process); only the delta-based views below are
            # digest-stable across same-seed runs.
            coverage.pop("latest_digest", None)
            rollup = self.series.rollup(cfg.monitor_window_s)
            alerts = self.slo_evaluator.timeline()
            health = {
                "series": coverage,
                "rollup": rollup,
                "slos": [
                    slo.describe() for slo in self.slo_evaluator.slos
                ],
                "alerts": alerts,
                "alerts_active": self.slo_evaluator.active(),
                "evaluations": self.slo_evaluator.evaluations,
                "rollup_digest": snapshot_digest(rollup),
                "alerts_digest": snapshot_digest({"alerts": alerts}),
            }
        return ScenarioReport(
            name=cfg.name,
            model_name=cfg.model_name,
            qos_s=qos_s,
            seed=cfg.seed,
            horizon_s=cfg.horizon_s,
            tick_s=cfg.tick_s,
            devices_initial=cfg.devices,
            config=cfg.describe(),
            fleet=fleet,
            demand=dict(self.demand),
            replans=dict(self.replans),
            serve=bridge.counters(),
            shed_timeline=self.shed_timeline,
            lifecycle_timeline=self.lifecycle_timeline,
            churn=dict(self.churn_totals),
            faults_injected=faults,
            oracle=oracle,
            health=health,
        )


def run_scenario(config: ScenarioConfig) -> ScenarioReport:
    """Convenience wrapper: build an engine and run it."""
    return ScenarioEngine(config).run()


def resume_scenario(path: str) -> ScenarioReport:
    """Resume a checkpointed run to completion; returns its report.

    The invariant this rests on (gated in tests and
    ``bench_scenario``): resuming at *any* event boundary produces a
    report byte-identical -- same digest -- to the uninterrupted run.
    """
    engine = ScenarioEngine.resume(load_checkpoint(path))
    try:
        while engine.step():
            pass
        return engine.finish()
    finally:
        engine.close()
