"""Seeded arrival-trace generators for the scenario engine.

An arrival model answers one question per device per tick: how many
QoS-window trains does this device want to run in ``[t, t + tick_s)``?
The engine treats any positive answer as one active telemetry epoch
(the governor's unit of supervision) and records the raw demand, so
overload shows up as deferred work rather than silently dropped
arrivals.

Three generator families, per the evaluation scenarios the paper's
deployment setting implies:

* :class:`DiurnalArrivals` -- a sinusoid-modulated Poisson process
  (day/night traffic);
* :class:`PoissonBurstArrivals` -- a base Poisson rate with scheduled
  burst windows multiplying it (flash crowds);
* :class:`TimetableArrivals` -- a replayed open-loop timetable using
  exactly the load generator's dispatch arithmetic (event *i* fires at
  ``i / rate``, round-robined over the fleet), so a serve-tier load
  test can be re-run against the fleet simulator event-for-event.

Every stochastic generator owns one spawned RNG stream per device
(``SeedSequence(seed, spawn_key=(device_id,))``), so the draw sequence
of one device never shifts another's.  The engine queries devices in
sorted id order, tick by tick; generators are deterministic under that
(and any per-device-monotone) calling discipline.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ReproError

#: Seconds per simulated day (the default diurnal period).
DAY_S = 86400.0


class ArrivalModel:
    """Interface: per-device window demand over one tick."""

    def windows_at(
        self, device_id: int, t_s: float, tick_s: float
    ) -> int:
        """Window trains device ``device_id`` wants in
        ``[t_s, t_s + tick_s)``."""
        raise NotImplementedError

    def describe(self) -> Dict:
        """JSON-ready self-description (for scenario reports)."""
        raise NotImplementedError


class ConstantArrivals(ArrivalModel):
    """Every device runs a fixed number of trains every tick.

    ``windows_per_tick=1`` is the zero-event scenario's generator: the
    back-to-back epoch train the plain fleet path simulates, with no
    RNG consumed anywhere.
    """

    def __init__(self, windows_per_tick: int = 1):
        if windows_per_tick < 0:
            raise ReproError("windows_per_tick must be >= 0")
        self.windows_per_tick = windows_per_tick

    def windows_at(
        self, device_id: int, t_s: float, tick_s: float
    ) -> int:
        return self.windows_per_tick

    def describe(self) -> Dict:
        return {
            "kind": "constant",
            "windows_per_tick": self.windows_per_tick,
        }


class _SeededPerDevice:
    """Lazily-spawned independent per-device RNG streams."""

    def __init__(self, seed: int):
        self.seed = seed
        self._rngs: Dict[int, np.random.Generator] = {}

    def rng_for(self, device_id: int) -> np.random.Generator:
        rng = self._rngs.get(device_id)
        if rng is None:
            rng = np.random.default_rng(
                np.random.SeedSequence(
                    entropy=self.seed, spawn_key=(device_id,)
                )
            )
            self._rngs[device_id] = rng
        return rng


class DiurnalArrivals(ArrivalModel):
    """Sinusoid-modulated Poisson arrivals (day/night traffic).

    The per-device rate at time ``t`` is::

        rate(t) = mean_per_hour / 3600 * (1 + amplitude * sin(
            2 * pi * (t - phase_s) / period_s))

    floored at zero; each device draws its tick's window count from a
    Poisson with mean ``rate(t) * tick_s`` on its own seeded stream.

    Args:
        mean_per_hour: average window trains per device-hour.
        amplitude: relative swing of the sinusoid (0 = flat Poisson,
            1 = full on/off day cycle).
        period_s: cycle length (a simulated day by default).
        phase_s: time of the rising zero-crossing.
        seed: root of the per-device streams.
    """

    def __init__(
        self,
        mean_per_hour: float,
        amplitude: float = 0.8,
        period_s: float = DAY_S,
        phase_s: float = 0.0,
        seed: int = 0,
    ):
        if mean_per_hour < 0:
            raise ReproError("mean_per_hour must be >= 0")
        if not 0.0 <= amplitude <= 1.0:
            raise ReproError("amplitude must be in [0, 1]")
        if period_s <= 0:
            raise ReproError("period_s must be positive")
        self.mean_per_hour = mean_per_hour
        self.amplitude = amplitude
        self.period_s = period_s
        self.phase_s = phase_s
        self._streams = _SeededPerDevice(seed)

    def rate_at(self, t_s: float) -> float:
        """Instantaneous per-device rate (windows per second)."""
        swing = 1.0 + self.amplitude * math.sin(
            2.0 * math.pi * (t_s - self.phase_s) / self.period_s
        )
        return max(0.0, self.mean_per_hour / 3600.0 * swing)

    def windows_at(
        self, device_id: int, t_s: float, tick_s: float
    ) -> int:
        lam = self.rate_at(t_s) * tick_s
        if lam == 0.0:
            return 0
        return int(self._streams.rng_for(device_id).poisson(lam))

    def describe(self) -> Dict:
        return {
            "kind": "diurnal",
            "mean_per_hour": self.mean_per_hour,
            "amplitude": self.amplitude,
            "period_s": self.period_s,
            "phase_s": self.phase_s,
            "seed": self._streams.seed,
        }


class PoissonBurstArrivals(ArrivalModel):
    """Base Poisson arrivals with scheduled burst windows.

    Args:
        base_per_hour: average window trains per device-hour outside
            bursts.
        bursts: ``(start_s, end_s, multiplier)`` windows; inside one,
            the rate is multiplied (flash crowd).  Overlapping bursts
            compound multiplicatively.
        seed: root of the per-device streams.
    """

    def __init__(
        self,
        base_per_hour: float,
        bursts: Sequence[Tuple[float, float, float]] = (),
        seed: int = 0,
    ):
        if base_per_hour < 0:
            raise ReproError("base_per_hour must be >= 0")
        for start_s, end_s, mult in bursts:
            if not end_s > start_s:
                raise ReproError("burst end must exceed start")
            if mult < 0:
                raise ReproError("burst multiplier must be >= 0")
        self.base_per_hour = base_per_hour
        self.bursts: Tuple[Tuple[float, float, float], ...] = tuple(
            sorted(bursts)
        )
        self._streams = _SeededPerDevice(seed)

    def rate_at(self, t_s: float) -> float:
        """Instantaneous per-device rate (windows per second)."""
        rate = self.base_per_hour / 3600.0
        for start_s, end_s, mult in self.bursts:
            if start_s <= t_s < end_s:
                rate *= mult
        return rate

    def windows_at(
        self, device_id: int, t_s: float, tick_s: float
    ) -> int:
        lam = self.rate_at(t_s) * tick_s
        if lam == 0.0:
            return 0
        return int(self._streams.rng_for(device_id).poisson(lam))

    def describe(self) -> Dict:
        return {
            "kind": "poisson-burst",
            "base_per_hour": self.base_per_hour,
            "bursts": [list(b) for b in self.bursts],
            "seed": self._streams.seed,
        }


class TimetableArrivals(ArrivalModel):
    """Replayed open-loop timetable (the load generator's arithmetic).

    Event *i* of the timetable fires at ``start_s + i / rate_rps`` --
    the exact fixed-timetable dispatch the serve load generator uses
    (``t0 + i / arrival_rate_rps``), round-robined over ``devices``
    fleet slots exactly like the load generator round-robins clients.
    Deterministic with no RNG at all.

    Args:
        rate_rps: aggregate arrival rate of the timetable.
        devices: round-robin modulus (the fleet size the timetable was
            recorded for).
        total: events in the timetable (None = unbounded).
        start_s: dispatch time of event 0.
    """

    def __init__(
        self,
        rate_rps: float,
        devices: int,
        total: Optional[int] = None,
        start_s: float = 0.0,
    ):
        if rate_rps <= 0:
            raise ReproError("rate_rps must be positive")
        if devices < 1:
            raise ReproError("devices must be >= 1")
        if total is not None and total < 0:
            raise ReproError("total must be >= 0")
        self.rate_rps = rate_rps
        self.devices = devices
        self.total = total
        self.start_s = start_s

    def _events_in(self, t0: float, t1: float) -> range:
        """Timetable indices dispatched in ``[t0, t1)``."""
        lo = math.ceil((t0 - self.start_s) * self.rate_rps - 1e-9)
        hi = math.ceil((t1 - self.start_s) * self.rate_rps - 1e-9)
        lo = max(0, lo)
        hi = max(0, hi)
        if self.total is not None:
            lo = min(lo, self.total)
            hi = min(hi, self.total)
        return range(lo, hi)

    def windows_at(
        self, device_id: int, t_s: float, tick_s: float
    ) -> int:
        if device_id >= self.devices:
            # Churn growth beyond the recorded fleet: the timetable
            # has no slot for this device.
            return 0
        events = self._events_in(t_s, t_s + tick_s)
        if not len(events):
            return 0
        # Index i lands on device i % devices; count members of the
        # residue class inside [lo, hi).
        lo, hi = events.start, events.stop
        first = lo + (device_id - lo) % self.devices
        if first >= hi:
            return 0
        return (hi - 1 - first) // self.devices + 1

    def describe(self) -> Dict:
        return {
            "kind": "timetable",
            "rate_rps": self.rate_rps,
            "devices": self.devices,
            "total": self.total,
            "start_s": self.start_s,
        }


class CompositeArrivals(ArrivalModel):
    """Sum of independent arrival processes (e.g. diurnal + bursts)."""

    def __init__(self, parts: Sequence[ArrivalModel]):
        if not parts:
            raise ReproError("composite needs at least one part")
        self.parts: List[ArrivalModel] = list(parts)

    def windows_at(
        self, device_id: int, t_s: float, tick_s: float
    ) -> int:
        return sum(
            part.windows_at(device_id, t_s, tick_s)
            for part in self.parts
        )

    def describe(self) -> Dict:
        return {
            "kind": "composite",
            "parts": [part.describe() for part in self.parts],
        }
