"""Clairvoyant oracle twin: the energy lower bound for the gap metric.

The governor reacts: it measures drift with a noisy INA219, waits for
a trigger, then re-solves.  The oracle *knows*: it sees the true
junction temperature and rail state before every window, re-prices the
cached Pareto fronts the moment the operating point moves to a new
quantized bucket, and runs fault-free with no sensor in the loop.  Its
summed true energy over the same activity schedule is (up to bucket
quantization) the best any re-planning policy could have done with the
same plan space -- so the scenario report's ``oracle_gap`` is the
closed-loop tax: energy the fleet burned because it had to *discover*
the drift instead of knowing it.

The twin replays exactly the physics of the governed device -- same
:func:`~repro.fleet.governor.clamp_plan_to_cap` clamping, same leaky
thermal excess on :data:`~repro.fleet.governor.LEAKY_STATES`, same
battery/temperature bookkeeping, same exact-exponential idle -- with
the sensor, faults, and drift trigger removed.  It consumes no RNG,
so adding or removing oracle twins never perturbs a scenario's
stochastic streams.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Dict, Optional, Tuple

from ..engine.schedule import DeploymentPlan
from ..errors import PowerModelError, ReproError
from ..fleet.governor import (
    GovernorConfig,
    LEAKY_STATES,
    clamp_plan_to_cap,
    resolve_replan,
)
from ..fleet.variation import DeviceProfile
from ..nn.graph import Model
from ..optimize.mckp import MCKPItem
from ..pipeline import DAEDVFSPipeline, OptimizationResult


class OracleTwin:
    """Clairvoyant shadow of one device.

    Args:
        pipeline: the (shared, board-keyed) planning pipeline.
        profile: the device being shadowed.
        model: the deployed network.
        optimized: the deployment-time optimization result.
        config: governor tuning (only ``epoch_s`` is used).
        quant_w: thermal-excess quantization bucket.  The twin
            re-solves only when ``extra_w`` crosses into a new bucket
            (or the frequency cap moves), bounding re-solves while
            staying within one bucket of the continuous optimum.
    """

    def __init__(
        self,
        pipeline: DAEDVFSPipeline,
        profile: DeviceProfile,
        model: Model,
        optimized: OptimizationResult,
        config: Optional[GovernorConfig] = None,
        quant_w: float = 0.002,
    ):
        if quant_w <= 0:
            raise PowerModelError("quant_w must be positive")
        self.pipeline = pipeline
        self.profile = profile
        self.model = model
        self.optimized = optimized
        self.config = config or GovernorConfig()
        self.quant_w = quant_w
        node_ids = sorted(optimized.pareto_fronts)
        self.base_classes = [
            [
                MCKPItem(
                    weight=p.latency_s, value=p.energy_j, payload=p
                )
                for p in optimized.pareto_fronts[node_id]
            ]
            for node_id in node_ids
        ]
        self.start()

    def start(self) -> None:
        """(Re)initialize the twin at deployment conditions."""
        self._plan: DeploymentPlan = self.optimized.plan
        self._battery = self.profile.battery
        self._thermal = self.profile.thermal
        self._temperature = self._thermal.t_ambient_c
        self._bucket: Tuple[int, float] = (
            0,
            self._battery.max_sysclk_hz(),
        )
        self.replans = 0
        self.epochs = 0
        self.epochs_met = 0
        self.true_energy_j = 0.0

    def set_ambient(self, t_ambient_c: float) -> None:
        """Mirror the governed device's ambient shift."""
        self._thermal = replace(self._thermal, t_ambient_c=t_ambient_c)

    def idle(
        self, duration_s: float, sleep_power_w: float = 0.25e-3
    ) -> None:
        """Mirror the governed device's window-free stretch."""
        if duration_s < 0:
            raise PowerModelError("duration_s must be >= 0")
        thermal = self._thermal
        self._battery = self._battery.discharged(
            sleep_power_w * duration_s
        )
        t_ss = (
            thermal.t_ambient_c + sleep_power_w * thermal.r_th_c_per_w
        )
        decay = math.exp(-duration_s / thermal.time_constant_s)
        self._temperature = t_ss + (self._temperature - t_ss) * decay

    def step(self) -> bool:
        """Run one clairvoyant epoch; True when the window met QoS.

        The twin re-solves *before* the window whenever the quantized
        operating point moved -- the defining clairvoyance: it never
        pays a drifted window to learn the drift exists.
        """
        cfg = self.config
        thermal = self._thermal
        cap_hz = self._battery.max_sysclk_hz()
        extra_w = (
            thermal.leakage_at(self._temperature)
            - thermal.leakage_ref_w
        )
        bucket = (int(round(extra_w / self.quant_w)), cap_hz)
        if bucket != self._bucket:
            self._bucket = bucket
            new_plan = resolve_replan(
                self.pipeline,
                self.model,
                self.base_classes,
                extra_w=extra_w,
                cap_hz=cap_hz,
                budget=self.optimized.qos_s,
                fixed=self.optimized.fixed_overhead_s,
            )
            if new_plan is not None:
                self._plan = new_plan
                self.replans += 1
        exec_plan, _clamped = clamp_plan_to_cap(
            self._plan, cap_hz, self.pipeline.space.hfo_configs
        )
        try:
            ref = self.pipeline.runtime.run(
                self.model,
                exec_plan,
                qos_s=self.optimized.qos_s,
                initial_config=exec_plan.initial_config(),
            )
        except ReproError:
            # Fault-free runs do not die; treat defensively as a
            # missed window with no energy accounted.
            self.epochs += 1
            return False
        true_energy = sum(
            iv.duration_s
            * (
                iv.power_w
                + (extra_w if iv.state in LEAKY_STATES else 0.0)
            )
            for iv in ref.account.intervals
        )
        window_s = ref.qos_s if ref.qos_s is not None else ref.latency_s
        avg_power = true_energy / window_s if window_s > 0 else 0.0
        self._battery = self._battery.discharged(
            avg_power * cfg.epoch_s
        )
        self._temperature = thermal.temperature_step(
            self._temperature, avg_power, cfg.epoch_s
        )
        self.epochs += 1
        self.true_energy_j += true_energy
        if ref.met_qos:
            self.epochs_met += 1
        return ref.met_qos

    def summary(self) -> Dict:
        """JSON-ready twin outcome."""
        return {
            "device_id": self.profile.device_id,
            "epochs": self.epochs,
            "epochs_met": self.epochs_met,
            "replans": self.replans,
            "true_energy_j": self.true_energy_j,
        }
