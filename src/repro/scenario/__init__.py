"""repro.scenario -- discrete-event fleet lifecycle simulation.

A seeded simulator that composes the repo's fleet, faults, serve and
obs layers over simulated days: arrival traces decide which devices
run QoS windows, ambient cycles and battery discharge drive the drift
the governors chase, churn and staged fault campaigns reshape the
fleet, and every re-plan routes through the serve tier's admission
control before it applies.  Identical seeds produce byte-identical
digested reports; a scenario with no events layered on collapses to
the plain fleet epoch path (same fleet digest).

See ``docs/scenarios.md`` for the engine architecture and the event
taxonomy, and :mod:`.library` for the named presets.
"""

from .arrivals import (
    ArrivalModel,
    CompositeArrivals,
    ConstantArrivals,
    DAY_S,
    DiurnalArrivals,
    PoissonBurstArrivals,
    TimetableArrivals,
)
from .churn import ChurnModel, ChurnProcess
from .engine import (
    ScenarioConfig,
    ScenarioEngine,
    ServeBridge,
    resume_scenario,
    run_scenario,
)
from .environment import AmbientCycle
from .events import Event, EventKind, EventQueue, SimClock
from .library import PRESETS, build_preset, list_presets
from .oracle import OracleTwin
from .report import ScenarioReport

__all__ = [
    "AmbientCycle",
    "ArrivalModel",
    "ChurnModel",
    "ChurnProcess",
    "CompositeArrivals",
    "ConstantArrivals",
    "DAY_S",
    "DiurnalArrivals",
    "Event",
    "EventKind",
    "EventQueue",
    "OracleTwin",
    "PRESETS",
    "PoissonBurstArrivals",
    "ScenarioConfig",
    "ScenarioEngine",
    "ScenarioReport",
    "ServeBridge",
    "SimClock",
    "TimetableArrivals",
    "build_preset",
    "list_presets",
    "resume_scenario",
    "run_scenario",
]
