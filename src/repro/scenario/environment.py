"""Ambient environment cycles for long-horizon scenarios.

The thermal model (:mod:`repro.power.thermal`) and the INA219 drift
term (:mod:`repro.power.sensor`) both respond to slow environmental
change: ambient temperature shifts the leakage operating point (and
with it the governor's thermal pick-flips), while the sensor's
deterministic drift sinusoid models shunt/reference drift over the
day.  :class:`AmbientCycle` supplies the shared forcing function --
a sinusoid plus optional heat-wave windows -- that the engine samples
once per tick and pushes into every device's thermal model via
``FleetGovernor.set_ambient``.

An amplitude-zero cycle with no waves is exactly "no environment":
``delta_at`` returns 0.0 everywhere and the engine skips the
``set_ambient`` call entirely, keeping the zero-event scenario
bit-identical to the plain fleet path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from ..errors import ReproError
from .arrivals import DAY_S


@dataclass(frozen=True)
class AmbientCycle:
    """Deterministic ambient-temperature forcing.

    The offset applied to every device's calibrated ambient at time
    ``t`` is::

        delta(t) = amplitude_c * sin(2 * pi * (t - phase_s) / period_s)
                   + sum(extra_c for waves covering t)

    Attributes:
        amplitude_c: half swing of the daily sinusoid (0 = flat).
        period_s: cycle length (a simulated day by default).
        phase_s: time of the rising zero-crossing; the default puts
            the peak at mid-afternoon of a cycle starting at midnight.
        waves: ``(start_s, end_s, extra_c)`` heat-wave (or cold-snap,
            with negative ``extra_c``) windows added on top.
    """

    amplitude_c: float = 0.0
    period_s: float = DAY_S
    phase_s: float = DAY_S * 0.375
    waves: Tuple[Tuple[float, float, float], ...] = ()

    def __post_init__(self) -> None:
        if self.amplitude_c < 0:
            raise ReproError("amplitude_c must be >= 0")
        if self.period_s <= 0:
            raise ReproError("period_s must be positive")
        for start_s, end_s, _extra in self.waves:
            if not end_s > start_s:
                raise ReproError("wave end must exceed start")
        object.__setattr__(self, "waves", tuple(sorted(self.waves)))

    @property
    def is_flat(self) -> bool:
        """True when ``delta_at`` is identically zero."""
        return self.amplitude_c == 0.0 and not any(
            extra != 0.0 for _s, _e, extra in self.waves
        )

    def delta_at(self, t_s: float) -> float:
        """Ambient offset in degrees C at simulated time ``t_s``."""
        delta = self.amplitude_c * math.sin(
            2.0 * math.pi * (t_s - self.phase_s) / self.period_s
        )
        for start_s, end_s, extra_c in self.waves:
            if start_s <= t_s < end_s:
                delta += extra_c
        return delta

    def to_dict(self) -> Dict:
        """JSON-ready description (for scenario reports)."""
        return {
            "amplitude_c": self.amplitude_c,
            "period_s": self.period_s,
            "phase_s": self.phase_s,
            "waves": [list(w) for w in self.waves],
        }
