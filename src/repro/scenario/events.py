"""Deterministic discrete-event core of the scenario engine.

Simulation time is a number, never the wall clock: every event carries
an absolute simulated timestamp, ties break on an explicit priority
and then on insertion order, and :class:`SimClock` only moves forward.
Two runs that push the same events pop them in exactly the same order
-- the property every digest-pinned scenario report rests on.

Event taxonomy (see ``docs/scenarios.md``):

===============  ==============================================
``TICK``         one engine tick: arrivals, epochs, replans
``JOIN``         churn: new devices enter the fleet
``LEAVE``        churn: devices retire from the fleet
``REPAIR``       a quarantined device returns to duty
``STAGE_ENTER``  a staged fault campaign window opens
``STAGE_EXIT``   a staged fault campaign window closes
===============  ==============================================
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..errors import ReproError


class EventKind(enum.Enum):
    """One kind of scenario event."""

    STAGE_ENTER = "stage-enter"
    STAGE_EXIT = "stage-exit"
    JOIN = "join"
    REPAIR = "repair"
    LEAVE = "leave"
    TICK = "tick"


#: Same-timestamp ordering: environment/campaign transitions apply
#: before membership changes, membership changes before the tick that
#: observes them.
_PRIORITY = {
    EventKind.STAGE_ENTER: 0,
    EventKind.STAGE_EXIT: 0,
    EventKind.JOIN: 1,
    EventKind.REPAIR: 2,
    EventKind.LEAVE: 3,
    EventKind.TICK: 5,
}


@dataclass(frozen=True)
class Event:
    """One scheduled occurrence.

    Attributes:
        time_s: absolute simulated time the event fires at.
        kind: what happens.
        seq: insertion sequence number (the final tie-breaker).
        payload: kind-specific data (device ids, stage labels, ...).
    """

    time_s: float
    kind: EventKind
    seq: int
    payload: Dict[str, Any] = field(default_factory=dict)

    @property
    def priority(self) -> int:
        """Same-timestamp ordering rank."""
        return _PRIORITY[self.kind]


class EventQueue:
    """A min-heap of events ordered (time, priority, insertion seq)."""

    def __init__(self) -> None:
        self._heap: List = []
        self._seq = 0

    def push(
        self,
        time_s: float,
        kind: EventKind,
        **payload: Any,
    ) -> Event:
        """Schedule an event; returns it."""
        if time_s < 0:
            raise ReproError("event time must be >= 0")
        event = Event(
            time_s=time_s, kind=kind, seq=self._seq, payload=payload
        )
        self._seq += 1
        heapq.heappush(
            self._heap,
            (event.time_s, event.priority, event.seq, event),
        )
        return event

    def pop(self) -> Event:
        """The earliest event (ties by priority, then insertion)."""
        if not self._heap:
            raise ReproError("event queue is empty")
        return heapq.heappop(self._heap)[3]

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next event (None when empty)."""
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class SimClock:
    """Forward-only simulated time (no wall time anywhere)."""

    def __init__(self, start_s: float = 0.0) -> None:
        self._now = start_s

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance_to(self, time_s: float) -> None:
        """Move the clock forward (monotonicity enforced)."""
        if time_s < self._now:
            raise ReproError(
                f"simulated time moved backward: {time_s} < {self._now}"
            )
        self._now = time_s
