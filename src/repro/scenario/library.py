"""The scenario preset library.

Named, parameterized scenario configurations the CLI, the benchmark,
and CI all build from.  Each preset is a factory: ``devices``,
``horizon_s`` and ``seed`` can be overridden without touching the
preset's character (its arrival mix, environment, churn, faults, and
admission posture).

=================  ====================================================
``steady-diurnal`` day/night traffic, mild ambient cycle, open
                   admission -- the baseline lifecycle
``flash-crowd``    quiet fleet hit by a midday x20 burst against a
                   rate-limited serve tier (replan storms + sheds)
``brownout-summer`` heat-wave afternoons driving thermal pick-flips,
                   with a staged brownout fault wave at peak heat
``churn-heavy``    boards joining/leaving all day plus a sensor-fault
                   wave that quarantines and repairs devices
``zero-event``     no events layered on at all: collapses to the plain
                   fleet epoch path (the digest pin)
``smoke``          a small, fast slice of ``steady-diurnal`` for CI
=================  ====================================================
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..errors import ReproError
from ..faults.campaign import FaultCampaign, FaultStage
from ..faults.plan import FaultPlan
from ..fleet.governor import GovernorConfig
from ..serve.server import ServeConfig
from .arrivals import (
    CompositeArrivals,
    ConstantArrivals,
    DAY_S,
    DiurnalArrivals,
    PoissonBurstArrivals,
)
from .churn import ChurnModel
from .engine import ScenarioConfig
from .environment import AmbientCycle

HOUR_S = 3600.0


def steady_diurnal(
    devices: int = 1000,
    horizon_s: float = DAY_S,
    seed: int = 0,
) -> ScenarioConfig:
    """Day/night traffic under a mild ambient cycle, open admission."""
    return ScenarioConfig(
        name="steady-diurnal",
        devices=devices,
        horizon_s=horizon_s,
        tick_s=900.0,
        seed=seed,
        arrivals=DiurnalArrivals(
            mean_per_hour=2.0, amplitude=0.8, seed=seed + 1
        ),
        ambient=AmbientCycle(amplitude_c=4.0),
        oracle_stride=10,
    )


def flash_crowd(
    devices: int = 1000,
    horizon_s: float = DAY_S,
    seed: int = 0,
) -> ScenarioConfig:
    """A quiet fleet hit by a midday x20 burst, admission-limited.

    The serve tier's token bucket replenishes 0.2 tokens per admission
    check (``rate_per_s * admission_tick_s``), so once the burst
    exhausts the bucket roughly four of five replan/join requests shed
    -- deterministically, as a pure function of arrival order.
    """
    burst_start = horizon_s * 0.5
    return ScenarioConfig(
        name="flash-crowd",
        devices=devices,
        horizon_s=horizon_s,
        tick_s=300.0,
        seed=seed,
        arrivals=PoissonBurstArrivals(
            base_per_hour=0.5,
            bursts=((burst_start, burst_start + 0.5 * HOUR_S, 20.0),),
            seed=seed + 1,
        ),
        serve=ServeConfig(
            rate_per_s=10.0,
            burst=20.0,
            admission_tick_s=0.02,
            max_queue_depth=10_000,
        ),
        storm_threshold=5,
        oracle_stride=10,
    )


def brownout_summer(
    devices: int = 1000,
    horizon_s: float = DAY_S,
    seed: int = 0,
) -> ScenarioConfig:
    """Heat-wave afternoons with a brownout wave at peak heat.

    The ambient sinusoid plus a midday heat wave pushes junction
    temperatures (and leakage) up -- the INA219 drift term and the
    governor's thermal pick-flips both key off it -- while a staged
    fault campaign sags supply rails over the hottest hours.
    """
    wave_start = horizon_s * 0.45
    wave_end = horizon_s * 0.7
    return ScenarioConfig(
        name="brownout-summer",
        devices=devices,
        horizon_s=horizon_s,
        tick_s=600.0,
        seed=seed,
        arrivals=CompositeArrivals(
            [
                DiurnalArrivals(
                    mean_per_hour=2.0, amplitude=0.6, seed=seed + 1
                ),
                PoissonBurstArrivals(
                    base_per_hour=0.25, seed=seed + 2
                ),
            ]
        ),
        ambient=AmbientCycle(
            amplitude_c=8.0,
            waves=((wave_start, wave_end, 10.0),),
        ),
        campaign=FaultCampaign(
            stages=(
                FaultStage(
                    start_s=wave_start,
                    end_s=wave_end,
                    plan=FaultPlan(
                        seed=seed + 3,
                        brownout_rate=0.3,
                        brownout_derate=0.6,
                    ),
                    label="afternoon-brownout",
                ),
            )
        ),
        oracle_stride=10,
    )


def churn_heavy(
    devices: int = 1000,
    horizon_s: float = DAY_S,
    seed: int = 0,
) -> ScenarioConfig:
    """Boards joining and leaving all day, plus a sensor-fault wave.

    The overnight sensor-fault stage produces the consecutive invalid
    telemetry epochs that trip the engine's quarantine reaction, so
    the quarantine/repair path exercises alongside join/leave churn.
    """
    fault_start = horizon_s * 0.25
    fault_end = horizon_s * 0.5
    return ScenarioConfig(
        name="churn-heavy",
        devices=devices,
        horizon_s=horizon_s,
        tick_s=600.0,
        seed=seed,
        arrivals=DiurnalArrivals(
            mean_per_hour=3.0, amplitude=0.5, seed=seed + 1
        ),
        churn=ChurnModel(
            join_per_hour=4.0,
            leave_per_hour=3.0,
            repair_delay_s=2.0 * HOUR_S,
            quarantine_after=2,
            seed=seed + 2,
        ),
        campaign=FaultCampaign(
            stages=(
                FaultStage(
                    start_s=fault_start,
                    end_s=fault_end,
                    plan=FaultPlan(
                        seed=seed + 3,
                        sensor_nack_rate=0.35,
                        sensor_stuck_rate=0.15,
                    ),
                    label="sensor-fault-wave",
                ),
            )
        ),
        oracle_stride=0,
    )


def zero_event(
    devices: int = 32,
    epochs: int = 20,
    seed: int = 0,
    governor: Optional[GovernorConfig] = None,
) -> ScenarioConfig:
    """No events at all: the plain fleet epoch path, digest-pinned.

    Every device runs one epoch per tick, ticks land exactly on the
    governor's own epoch grid, nothing perturbs ambient, membership,
    faults, or admission -- so the scenario's embedded fleet report
    digests identically to ``FleetScheduler.run`` +
    ``supervise_device`` with the same seed and epochs.
    """
    gov = governor or GovernorConfig(epochs=epochs)
    return ScenarioConfig(
        name="zero-event",
        devices=devices,
        horizon_s=epochs * gov.epoch_s,
        tick_s=gov.epoch_s,
        seed=seed,
        governor=gov,
        arrivals=ConstantArrivals(1),
        ambient=AmbientCycle(),
        churn=ChurnModel(quarantine_after=0),
        oracle_stride=0,
        # The zero-event digest is pinned to the pre-monitor tree
        # (tests/boards/test_golden_digests.py); the plain fleet path
        # it collapses to has no monitor either.
        monitor=False,
    )


def smoke(
    devices: int = 200,
    horizon_s: float = 2.0 * HOUR_S,
    seed: int = 0,
) -> ScenarioConfig:
    """A small, fast steady-diurnal slice for CI's scenario-smoke job."""
    config = steady_diurnal(
        devices=devices, horizon_s=horizon_s, seed=seed
    )
    config.name = "smoke"
    config.tick_s = 300.0
    config.oracle_stride = 20
    return config


#: name -> (description, factory(devices=..., horizon_s=..., seed=...)).
PRESETS: Dict[str, tuple] = {
    "steady-diurnal": (
        "day/night diurnal traffic, mild ambient cycle, open admission",
        steady_diurnal,
    ),
    "flash-crowd": (
        "midday x20 burst against a rate-limited serve tier",
        flash_crowd,
    ),
    "brownout-summer": (
        "heat-wave afternoons with a staged brownout fault wave",
        brownout_summer,
    ),
    "churn-heavy": (
        "continuous join/leave churn plus a quarantine-driving "
        "sensor-fault wave",
        churn_heavy,
    ),
    "zero-event": (
        "no lifecycle events; collapses to the plain fleet epoch path",
        zero_event,
    ),
    "smoke": (
        "small fast steady-diurnal slice for CI",
        smoke,
    ),
}


def list_presets() -> List[Dict]:
    """JSON-ready preset listing (the CLI's ``scenario --list``)."""
    return [
        {"name": name, "description": description}
        for name, (description, _factory) in sorted(PRESETS.items())
    ]


def build_preset(
    name: str,
    devices: Optional[int] = None,
    horizon_s: Optional[float] = None,
    seed: Optional[int] = None,
) -> ScenarioConfig:
    """Build a preset's config, overriding size/span/seed if given."""
    try:
        _description, factory = PRESETS[name]
    except KeyError:
        raise ReproError(
            f"unknown scenario preset {name!r}; choose from "
            f"{sorted(PRESETS)}"
        ) from None
    kwargs: Dict = {}
    if devices is not None:
        kwargs["devices"] = devices
    if seed is not None:
        kwargs["seed"] = seed
    if horizon_s is not None:
        if factory is zero_event:
            raise ReproError(
                "zero-event derives its horizon from epochs; "
                "override devices/seed only"
            )
        kwargs["horizon_s"] = horizon_s
    return factory(**kwargs)
