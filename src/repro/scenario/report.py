"""Digest-pinned scenario reports.

A scenario run folds down to one :class:`ScenarioReport`: the embedded
:class:`~repro.fleet.report.FleetReport` (per-device rows, population
statistics, and the fleet digest the zero-event scenario pins against
the plain fleet path) plus the lifecycle layers the fleet report has
no notion of -- demand served vs deferred, replan routing through the
serve tier (applied / shed / storms), churn and quarantine timelines,
staged fault injections, and the clairvoyant oracle gap.

Like the fleet report, everything is deterministic and the digest
hashes full-precision values (``repr`` of a float round-trips the
exact binary), so two runs of the same seeded scenario agree on the
digest iff they agree bit-for-bit on every number in the report.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..fleet.report import FleetReport


def _canonical(obj):
    """Recursively ``repr`` floats so the digest sees exact bits."""
    if isinstance(obj, float):
        return repr(obj)
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    return obj


@dataclass
class ScenarioReport:
    """Outcome of one simulated fleet lifecycle.

    Attributes:
        name: preset (or ``custom``) name.
        seed: the scenario's root seed.
        horizon_s / tick_s: simulated span and engine tick.
        devices_initial: fleet size at t=0.
        config: JSON-ready description of the scenario's generators
            (arrivals, ambient, churn, campaign, serve admission).
        fleet: the end-of-scenario fleet aggregation; its ``digest()``
            is the zero-event pin anchor.
        demand: windows requested / epochs run / windows deferred.
        replans: requested / applied / unavailable / shed counts plus
            storm statistics (peak intents in one tick, ticks at or
            above the storm threshold).
        serve: deterministic control-plane counters (requests by op,
            sheds by reason) from the in-loop serve tier.
        shed_timeline: per-tick shed counts, only non-zero ticks.
        lifecycle_timeline: join / leave / quarantine / repair events.
        churn: membership totals over the run.
        faults_injected: staged-campaign injections by fault kind.
        oracle: clairvoyant-twin comparison (None when disabled).
        health: deterministic monitoring section (None when the
            monitor is disabled): series coverage, the final-window
            metric rollup, SLO burn-rate alert timeline, and digests
            over both.  Built exclusively from the sim clock and the
            wall-clock-free registry projection, so it is covered by
            the report digest like every other section.
    """

    name: str
    model_name: str
    qos_s: float
    seed: int
    horizon_s: float
    tick_s: float
    devices_initial: int
    config: Dict = field(default_factory=dict)
    fleet: FleetReport = None  # type: ignore[assignment]
    demand: Dict[str, int] = field(default_factory=dict)
    replans: Dict[str, int] = field(default_factory=dict)
    serve: Dict = field(default_factory=dict)
    shed_timeline: List[Dict] = field(default_factory=list)
    lifecycle_timeline: List[Dict] = field(default_factory=list)
    churn: Dict[str, int] = field(default_factory=dict)
    faults_injected: Dict[str, int] = field(default_factory=dict)
    oracle: Optional[Dict] = None
    health: Optional[Dict] = None

    # -- derived metrics ---------------------------------------------------------

    @property
    def qos_met_fraction(self) -> float:
        """Epoch-weighted QoS attainment across every governed epoch."""
        epochs = sum(s.epochs for s in self.fleet.summaries)
        if epochs == 0:
            return 0.0
        met = sum(s.epochs_met for s in self.fleet.summaries)
        return met / epochs

    @property
    def oracle_gap_fraction(self) -> Optional[float]:
        """Governed-over-oracle energy excess on the sampled twins."""
        if not self.oracle:
            return None
        oracle_j = self.oracle.get("oracle_true_energy_j", 0.0)
        governed_j = self.oracle.get("governed_true_energy_j", 0.0)
        if oracle_j <= 0.0:
            return None
        return (governed_j - oracle_j) / oracle_j

    # -- serialization -----------------------------------------------------------

    def _core(self) -> Dict:
        """Everything the digest covers, canonically ordered."""
        oracle = dict(self.oracle) if self.oracle else None
        if oracle is not None:
            gap = self.oracle_gap_fraction
            oracle["gap_fraction"] = gap
        core = {
            "name": self.name,
            "model": self.model_name,
            "qos_s": self.qos_s,
            "seed": self.seed,
            "horizon_s": self.horizon_s,
            "tick_s": self.tick_s,
            "devices_initial": self.devices_initial,
            "config": self.config,
            "fleet_digest": self.fleet.digest(),
            "qos_met_fraction": self.qos_met_fraction,
            "demand": dict(sorted(self.demand.items())),
            "replans": dict(sorted(self.replans.items())),
            "serve": self.serve,
            "shed_timeline": self.shed_timeline,
            "lifecycle_timeline": self.lifecycle_timeline,
            "churn": dict(sorted(self.churn.items())),
            "faults_injected": dict(sorted(self.faults_injected.items())),
            "oracle": oracle,
        }
        # Conditional like the config's ``boards`` key: monitor-off
        # runs (the zero-event pin) digest as before the monitor
        # existed.
        if self.health is not None:
            core["health"] = self.health
        return core

    def digest(self) -> str:
        """SHA-256 over the canonical report -- the determinism anchor."""
        payload = json.dumps(_canonical(self._core()), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()

    def to_dict(self) -> Dict:
        """JSON-ready representation (core + fleet detail + digest)."""
        core = self._core()
        core["digest"] = self.digest()
        core["fleet"] = self.fleet.to_dict()
        return core

    def summary(self) -> str:
        """Multi-line human-readable scenario report."""
        days = self.horizon_s / 86400.0
        r = self.replans
        lines = [
            f"scenario {self.name!r}: {self.devices_initial} devices, "
            f"model {self.model_name!r}, {days:g} simulated days "
            f"(tick {self.tick_s:g} s, seed {self.seed})",
            f"  demand: {self.demand.get('windows_requested', 0)} "
            f"windows requested, {self.demand.get('epochs_run', 0)} "
            f"epochs run, {self.demand.get('windows_deferred', 0)} "
            f"deferred",
            f"  QoS met: {self.qos_met_fraction:.1%} of governed "
            f"epochs; replans: {r.get('requested', 0)} requested, "
            f"{r.get('applied', 0)} applied, {r.get('shed', 0)} shed "
            f"(storm peak {r.get('storm_peak', 0)}/tick, "
            f"{r.get('storm_ticks', 0)} storm ticks)",
            f"  churn: {self.churn.get('joins', 0)} joins, "
            f"{self.churn.get('leaves', 0)} leaves, "
            f"{self.churn.get('quarantines', 0)} quarantines, "
            f"{self.churn.get('repairs', 0)} repairs; "
            f"final fleet {self.churn.get('final_devices', 0)}",
        ]
        if self.faults_injected:
            hist = ", ".join(
                f"{kind} x{count}"
                for kind, count in sorted(self.faults_injected.items())
            )
            lines.append(f"  faults injected: {hist}")
        gap = self.oracle_gap_fraction
        if gap is not None:
            lines.append(
                f"  oracle gap: +{gap:.2%} energy vs clairvoyant "
                f"({self.oracle.get('devices', 0)} twinned devices)"
            )
        if self.health is not None:
            series = self.health.get("series", {})
            alerts = self.health.get("alerts", [])
            fired = sum(1 for a in alerts if a.get("state") == "firing")
            lines.append(
                f"  health: {series.get('total_samples', 0)} samples "
                f"({series.get('len', 0)} retained), "
                f"{fired} alerts fired, "
                f"{len(self.health.get('alerts_active', []))} active at end"
            )
        lines.append(f"  fleet digest: {self.fleet.digest()}")
        lines.append(f"  digest: {self.digest()}")
        return "\n".join(lines)
