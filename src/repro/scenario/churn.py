"""Device churn: joins, departures, quarantine and repair.

Fleet membership over a multi-day scenario is not static: new boards
are provisioned (JOIN), others are decommissioned or die in the field
(LEAVE), and devices whose telemetry goes persistently invalid are
quarantined by the governor's supervision loop and later repaired
(REPAIR) after a technician visit.

:class:`ChurnModel` is the seeded description; :class:`ChurnProcess`
materializes it: Poisson join/leave event times over the horizon
(sampled up front so the event queue is fully populated before the
clock starts) plus a dedicated victim-selection stream used when a
LEAVE fires.  Victims are drawn from the *sorted* live-device list at
execution time, so the pick depends only on the membership state --
itself deterministic -- and the stream position.

Quarantine is not sampled here: it is a *reaction* (the engine
quarantines a device after ``quarantine_after`` consecutive invalid
telemetry epochs and schedules its REPAIR ``repair_delay_s`` later).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..errors import ReproError

_JOIN_STREAM = 0
_LEAVE_STREAM = 1
_VICTIM_STREAM = 2


@dataclass(frozen=True)
class ChurnModel:
    """Seeded churn description for one scenario.

    Attributes:
        join_per_hour: Poisson rate of fleet-wide JOIN events.
        leave_per_hour: Poisson rate of fleet-wide LEAVE events.
        repair_delay_s: time a quarantined device waits for repair.
        quarantine_after: consecutive invalid telemetry epochs that
            trigger quarantine (0 disables quarantine).
        max_devices: hard cap on fleet size (joins beyond it are
            dropped and counted as rejected).
        seed: root of the event-time and victim-pick streams.
    """

    join_per_hour: float = 0.0
    leave_per_hour: float = 0.0
    repair_delay_s: float = 4.0 * 3600.0
    quarantine_after: int = 3
    max_devices: int = 16384
    seed: int = 0

    def __post_init__(self) -> None:
        if self.join_per_hour < 0 or self.leave_per_hour < 0:
            raise ReproError("churn rates must be >= 0")
        if self.repair_delay_s < 0:
            raise ReproError("repair_delay_s must be >= 0")
        if self.quarantine_after < 0:
            raise ReproError("quarantine_after must be >= 0")
        if self.max_devices < 1:
            raise ReproError("max_devices must be >= 1")

    @property
    def is_static(self) -> bool:
        """True when no join/leave events can ever fire."""
        return self.join_per_hour == 0.0 and self.leave_per_hour == 0.0

    def to_dict(self) -> Dict:
        """JSON-ready description (for scenario reports)."""
        return {
            "join_per_hour": self.join_per_hour,
            "leave_per_hour": self.leave_per_hour,
            "repair_delay_s": self.repair_delay_s,
            "quarantine_after": self.quarantine_after,
            "max_devices": self.max_devices,
            "seed": self.seed,
        }


class ChurnProcess:
    """Materialized churn for one run: event times + victim stream."""

    def __init__(self, model: ChurnModel):
        self.model = model
        self._victim_rng = np.random.default_rng(
            np.random.SeedSequence(
                entropy=model.seed, spawn_key=(_VICTIM_STREAM,)
            )
        )

    def _event_times(
        self, rate_per_hour: float, horizon_s: float, stream: int
    ) -> List[float]:
        if rate_per_hour <= 0 or horizon_s <= 0:
            return []
        rng = np.random.default_rng(
            np.random.SeedSequence(
                entropy=self.model.seed, spawn_key=(stream,)
            )
        )
        rate_per_s = rate_per_hour / 3600.0
        times: List[float] = []
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / rate_per_s))
            if t >= horizon_s:
                return times
            times.append(t)

    def join_times(self, horizon_s: float) -> List[float]:
        """Simulated timestamps of every JOIN in ``[0, horizon_s)``."""
        return self._event_times(
            self.model.join_per_hour, horizon_s, _JOIN_STREAM
        )

    def leave_times(self, horizon_s: float) -> List[float]:
        """Simulated timestamps of every LEAVE in ``[0, horizon_s)``."""
        return self._event_times(
            self.model.leave_per_hour, horizon_s, _LEAVE_STREAM
        )

    def pick_victim(self, live_ids: Sequence[int]) -> int:
        """Choose the device a LEAVE removes.

        ``live_ids`` must be the sorted live membership; the draw
        consumes exactly one value from the victim stream either way,
        so the stream position depends only on how many LEAVEs fired.
        """
        if not live_ids:
            raise ReproError("cannot pick a victim from an empty fleet")
        index = int(self._victim_rng.integers(0, len(live_ids)))
        return live_ids[index]
