# Convenience targets for the DAE+DVFS reproduction.

PYTHON ?= python

.PHONY: install test bench bench-verbose examples clean results

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-verbose:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/vww_deployment.py
	$(PYTHON) examples/qos_sweep.py vww
	$(PYTHON) examples/custom_model.py
	$(PYTHON) examples/battery_lifetime.py
	$(PYTHON) examples/measured_profiling.py

results:
	cat benchmarks/results/*.txt

clean:
	rm -rf benchmarks/results .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
