#!/usr/bin/env python3
"""Profile layers through the simulated measurement chain.

Reproduces the paper's Sec. IV measurement methodology: per-layer
latency via on-board timers, per-layer power via an INA219 sensor --
including thermal drift, which the paper cancels by comparing every
measurement against the baseline model "at the corresponding
timestamp".  The example shows (1) how large the drift-induced error
is on absolute readings, (2) how the differential method cancels it,
and (3) that an optimization pipeline fed by *measured* profiles lands
on nearly the same schedule as the analytic one.

Run:  python examples/measured_profiling.py
"""

from repro import DAEDVFSPipeline, build_tiny_test_model
from repro.dse import paper_design_space
from repro.optimize import MODERATE
from repro.power import (
    EnergyCategory,
    EnergyInterval,
    INA219Config,
    INA219Sensor,
    differential_energy,
)
from repro.profiling import LayerMonitor, LayerProfiler
from repro.units import to_mj


def drift_demo() -> None:
    print("-- drift compensation (paper Sec. IV) --")
    sensor = INA219Sensor(
        INA219Config(
            sample_period_s=1e-3,
            noise_std_w=0.0,
            drift_amplitude_w=0.040,   # +/-40 mW thermal drift
            drift_period_s=2.0,
        )
    )
    trace = [EnergyInterval(0.080, 0.300, EnergyCategory.COMPUTE)]
    baseline = [EnergyInterval(0.080, 0.400, EnergyCategory.COMPUTE)]
    true_energy = 0.080 * 0.300
    for start in (0.3, 0.9, 1.4):
        absolute = sensor.estimate_energy(
            sensor.measure(trace, start_time_s=start)
        )
        compensated = differential_energy(
            sensor, trace, baseline, 0.080 * 0.400, start_time_s=start
        )
        print(
            f"  t={start:.1f}s: absolute {to_mj(absolute):7.3f} mJ "
            f"({abs(absolute / true_energy - 1):5.1%} err)  "
            f"differential {to_mj(compensated):7.3f} mJ "
            f"({abs(compensated / true_energy - 1):5.1%} err)"
        )
    print(f"  truth: {to_mj(true_energy):.3f} mJ")


def measured_pipeline_demo() -> None:
    print("\n-- optimization from measured profiles --")
    model = build_tiny_test_model()
    analytic = DAEDVFSPipeline()
    monitor = LayerMonitor(
        analytic.board,
        sensor_config=INA219Config(sample_period_s=2e-6, noise_std_w=5e-4),
    )
    profiler = LayerProfiler(
        analytic.board,
        paper_design_space(analytic.board.power_model),
        monitor=monitor,
    )
    measured = DAEDVFSPipeline(board=analytic.board, profiler=profiler)

    e_analytic = analytic.deploy(
        model, analytic.optimize(model, qos_level=MODERATE).plan
    )
    e_measured = measured.deploy(
        model, measured.optimize(model, qos_level=MODERATE).plan
    )
    print(f"  analytic-profile schedule: {to_mj(e_analytic.energy_j):.4f} mJ")
    print(f"  measured-profile schedule: {to_mj(e_measured.energy_j):.4f} mJ")
    gap = abs(e_measured.energy_j / e_analytic.energy_j - 1)
    print(f"  gap: {gap:.2%} -- profiling noise does not derail Step 3")

    records = profiler.profile_layer(model, model.dae_nodes()[0])
    worst = max(records, key=lambda r: r.measurement.energy_error)
    print(
        f"  worst single-candidate measurement error: "
        f"{worst.measurement.energy_error:.2%} "
        f"({worst.measurement.samples} sensor samples)"
    )


def main() -> None:
    drift_demo()
    measured_pipeline_demo()


if __name__ == "__main__":
    main()
