#!/usr/bin/env python3
"""Quickstart: optimize and deploy a small CNN under a latency budget.

Builds the default simulated STM32F767ZI Nucleo board, runs the full
DAE+DVFS methodology (per-layer design-space exploration, Pareto
extraction, MCKP optimization) on a small test CNN, and compares the
resulting schedule against the TinyEngine baselines in the paper's
iso-latency energy scenario.

Run:  python examples/quickstart.py
"""

from repro import DAEDVFSPipeline, build_tiny_test_model
from repro.optimize import MODERATE
from repro.units import to_mhz, to_mj, to_ms


def main() -> None:
    model = build_tiny_test_model()
    print(model.summary())
    print()

    pipeline = DAEDVFSPipeline()

    # Step 2 + 3: explore (g, clock) per layer, then solve the MCKP.
    result = pipeline.optimize(model, qos_level=MODERATE)
    print(
        f"baseline (TinyEngine @216 MHz) latency: "
        f"{to_ms(result.baseline_latency_s):.3f} ms"
    )
    print(
        f"QoS budget ({MODERATE.percent}% slack):   "
        f"{to_ms(result.qos_s):.3f} ms"
    )
    print()

    print("per-layer schedule (granularity g, HFO clock):")
    for node_id in sorted(result.plan.layer_plans):
        lp = result.plan.layer_plans[node_id]
        layer = model.nodes[node_id - 1].layer
        print(
            f"  [{node_id:2d}] {layer.name:10s} {layer.kind.value:10s} "
            f"g={lp.granularity:2d} @ {to_mhz(lp.hfo.sysclk_hz):5.0f} MHz"
        )
    print()

    # Visualize the LFO/HFO alternation of the deployed schedule.
    from repro.analysis import render_gantt

    report = pipeline.deploy(model, result.plan)
    print(render_gantt(report, width=76, max_rows=6))
    print()

    # Deploy on the DVFS runtime and compare with the baselines.
    row = pipeline.compare(model, MODERATE)
    print(f"energy over the {to_ms(row.qos_s):.3f} ms window:")
    print(f"  TinyEngine          : {to_mj(row.tinyengine.energy_j):7.4f} mJ")
    print(f"  TinyEngine + gating : {to_mj(row.clock_gated.energy_j):7.4f} mJ")
    print(f"  DAE + DVFS (ours)   : {to_mj(row.ours.energy_j):7.4f} mJ")
    print(f"  savings vs TinyEngine : {row.savings_vs_tinyengine:6.1%}")
    print(f"  savings vs clock-gated: {row.savings_vs_clock_gated:6.1%}")
    print(
        f"  QoS met: {row.ours.met_qos} "
        f"(latency {to_ms(row.ours.latency_s):.3f} ms, "
        f"{row.ours.relock_count} PLL re-locks, "
        f"{row.ours.mux_switch_count} mux switches)"
    )


if __name__ == "__main__":
    main()
