#!/usr/bin/env python3
"""Deploy the Visual Wake Words model end to end.

The scenario the paper's introduction motivates: a battery-operated
camera node runs a person-present classifier with a latency ceiling.
This example walks the complete flow -- verify DAE numerical
equivalence, optimize the schedule for the QoS, deploy on the DVFS
runtime, and break the energy down by where it went.

Run:  python examples/vww_deployment.py
"""

import numpy as np

from repro import DAEDVFSPipeline, build_vww
from repro.engine import DAEExecutor
from repro.nn import QuantizedTensor
from repro.nn.models import INPUT_PARAMS
from repro.optimize import TIGHT
from repro.power import EnergyCategory
from repro.units import to_mhz, to_mj, to_ms


def main() -> None:
    model = build_vww()
    print(
        f"model {model.name!r}: {len(model.conv_nodes())} conv layers, "
        f"{model.total_macs() / 1e6:.1f} MMACs, "
        f"{model.total_weight_bytes() / 1024:.0f} KiB weights, "
        f"{model.dae_layer_fraction():.0%} DAE-eligible"
    )

    pipeline = DAEDVFSPipeline()
    result = pipeline.optimize(model, qos_level=TIGHT)
    plan = result.plan

    # --- sanity: DAE restructuring does not change a single bit -------
    rng = np.random.default_rng(7)
    frame = QuantizedTensor(
        rng.integers(-128, 128, size=model.input_shape).astype(np.int8),
        INPUT_PARAMS.scale,
        INPUT_PARAMS.zero_point,
    )
    reference = model.forward(frame)
    dae_out, stats = DAEExecutor(plan.granularities()).run(model, frame)
    assert np.array_equal(dae_out.data, reference.data)
    print(
        f"DAE execution bit-exact: True "
        f"({stats.total_groups} buffer groups, "
        f"{stats.total_buffered_bytes / 1024:.0f} KiB staged)"
    )

    # --- deploy -----------------------------------------------------------
    report = pipeline.deploy(model, plan)
    print(
        f"\nQoS {TIGHT.percent}%: budget {to_ms(result.qos_s):.2f} ms, "
        f"achieved {to_ms(report.latency_s):.2f} ms "
        f"(met: {report.met_qos})"
    )
    print(f"energy: {to_mj(report.energy_j):.3f} mJ over the window")

    breakdown = report.account.energy_by_category()
    total = report.energy_j
    print("energy breakdown:")
    for category in EnergyCategory:
        energy = breakdown.get(category, 0.0)
        if energy:
            print(
                f"  {category.value:8s} {to_mj(energy):8.4f} mJ "
                f"({energy / total:5.1%})"
            )

    # --- the five most expensive layers --------------------------------
    print("\nhottest layers:")
    hottest = sorted(
        report.layer_reports, key=lambda r: r.energy_j, reverse=True
    )[:5]
    for layer in hottest:
        print(
            f"  {layer.layer_name:8s} {layer.layer_kind.value:10s} "
            f"g={layer.granularity:2d} @ {to_mhz(layer.hfo_hz):3.0f} MHz  "
            f"{to_ms(layer.latency_s):6.3f} ms  {to_mj(layer.energy_j):7.4f} mJ"
        )


if __name__ == "__main__":
    main()
