#!/usr/bin/env python3
"""Battery lifetime of a duty-cycled person-detection node.

The paper's motivating deployment: a battery-operated far-edge camera
node that wakes periodically, classifies a frame within a latency
budget and sleeps.  This example converts the Fig. 5 energy savings
into deployment lifetime -- extra days in the field -- for a
CR123A-class primary cell, and shows how the advantage scales with
the wake-up rate.

Run:  python examples/battery_lifetime.py
"""

from repro import DAEDVFSPipeline, build_person_detection
from repro.analysis import Battery, DutyCycle, estimate_lifetime
from repro.optimize import MODERATE


def main() -> None:
    model = build_person_detection()
    pipeline = DAEDVFSPipeline()
    row = pipeline.compare(model, MODERATE)

    battery = Battery(capacity_mah=1200, voltage_v=3.0)
    print(
        f"node: {model.name}, QoS window {row.qos_s * 1e3:.1f} ms, "
        f"battery {battery.capacity_mah:.0f} mAh @ {battery.voltage_v:.1f} V"
    )
    print(
        f"window energy: TinyEngine {row.tinyengine.energy_j * 1e3:.2f} mJ, "
        f"TE+gating {row.clock_gated.energy_j * 1e3:.2f} mJ, "
        f"ours {row.ours.energy_j * 1e3:.2f} mJ"
    )
    print()
    print(f"{'wake-ups/hour':>14s} {'TinyEngine':>11s} {'TE+gating':>10s} "
          f"{'ours':>8s} {'extra vs TE':>12s}")
    for rate in (6, 60, 360, 1800):
        duty = DutyCycle(windows_per_hour=rate)
        te = estimate_lifetime(battery, row.tinyengine, duty)
        cg = estimate_lifetime(battery, row.clock_gated, duty)
        ours = estimate_lifetime(battery, row.ours, duty)
        print(
            f"{rate:14d} {te.days:9.1f}d {cg.days:8.1f}d {ours.days:6.1f}d "
            f"{ours.days - te.days:+10.1f}d"
        )
    print()
    duty = DutyCycle(windows_per_hour=360)
    ours = estimate_lifetime(battery, row.ours, duty)
    print(
        f"at 360 wake-ups/hour the node is active "
        f"{ours.active_share:.1%} of the time and draws "
        f"{ours.energy_per_hour_j:.2f} J/hour"
    )


if __name__ == "__main__":
    main()
