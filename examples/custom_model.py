#!/usr/bin/env python3
"""Bring your own CNN and your own board.

Demonstrates the extension points a downstream user needs:

* building a custom quantized CNN with the layer/graph API;
* customizing the board (bigger cache, different power constants,
  slower switch fabric) for sensitivity studies;
* restricting the design space; and
* reading the optimizer's Pareto fronts directly.

Run:  python examples/custom_model.py
"""

import numpy as np

from repro import DAEDVFSPipeline
from repro.dse import DesignSpace
from repro.clock import hfo_grid, lfo_config
from repro.mcu import CacheModel, make_nucleo_f767zi
from repro.nn import (
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Flatten,
    GlobalAveragePool,
    Model,
    PointwiseConv2D,
    QuantParams,
)
from repro.optimize import QoSLevel
from repro.power import PowerModelParams
from repro.units import kib, to_mhz, to_mj, to_ms

IN_PARAMS = QuantParams(scale=1 / 128.0, zero_point=0)
ACT_PARAMS = QuantParams(scale=6.0 / 255.0, zero_point=-128)
LOGIT_PARAMS = QuantParams(scale=0.1, zero_point=0)


def build_keyword_spotter(seed: int = 11) -> Model:
    """A small keyword-spotting-style CNN on 32x32 'spectrogram' input."""
    rng = np.random.default_rng(seed)

    def weights(*shape):
        fan_in = int(np.prod(shape[:-1]))
        return rng.normal(0, 1 / np.sqrt(fan_in), size=shape)

    model = Model(name="kws", input_shape=(32, 32, 1), input_params=IN_PARAMS)
    model.add(
        Conv2D(
            "stem", weights(3, 3, 1, 16), rng.normal(0, 0.05, 16),
            IN_PARAMS, ACT_PARAMS, stride=2, activation="relu6",
        )
    )
    params = ACT_PARAMS
    channels = 16
    for i, out_ch in enumerate((24, 32, 48)):
        model.add(
            DepthwiseConv2D(
                f"dw{i}", weights(3, 3, channels), rng.normal(0, 0.05, channels),
                params, ACT_PARAMS, stride=2 if i else 1, activation="relu6",
            )
        )
        model.add(
            PointwiseConv2D(
                f"pw{i}", weights(channels, out_ch),
                rng.normal(0, 0.05, out_ch),
                ACT_PARAMS, ACT_PARAMS, activation="relu6",
            )
        )
        channels = out_ch
    model.add(GlobalAveragePool("gap"))
    model.add(Flatten("flatten"))
    model.add(
        Dense(
            "logits", weights(channels, 12), rng.normal(0, 0.05, 12),
            ACT_PARAMS, LOGIT_PARAMS,
        )
    )
    return model


def main() -> None:
    model = build_keyword_spotter()
    print(model.summary())

    # A custom board: double the cache, slower mux, leakier silicon.
    board = make_nucleo_f767zi(
        power_params=PowerModelParams().scaled(p_mcu_leakage_w=0.012),
        cache=CacheModel(capacity_bytes=kib(32)),
    )

    # A narrowed design space: coarse granularities, top 4 frequencies.
    top_frequencies = sorted(
        hfo_grid(), key=lambda c: c.sysclk_hz, reverse=True
    )
    space = DesignSpace(
        granularities=(0, 4, 16),
        hfo_configs=tuple(top_frequencies[:4]),
        lfo=lfo_config(),
    )

    pipeline = DAEDVFSPipeline(board=board, space=space)
    level = QoSLevel(name="custom", slack=0.25)
    result = pipeline.optimize(model, qos_level=level)

    print(f"\nQoS budget: {to_ms(result.qos_s):.3f} ms "
          f"(baseline {to_ms(result.baseline_latency_s):.3f} ms)")
    print("Pareto front sizes per layer:")
    for node_id, front in sorted(result.pareto_fronts.items()):
        layer = model.nodes[node_id - 1].layer
        chosen = result.plan.layer_plans[node_id]
        print(
            f"  {layer.name:8s}: {len(front):2d} Pareto points -> picked "
            f"g={chosen.granularity:2d} @ {to_mhz(chosen.hfo.sysclk_hz):3.0f} MHz"
        )

    report = pipeline.deploy(model, result.plan)
    print(
        f"\ndeployed: {to_ms(report.latency_s):.3f} ms, "
        f"{to_mj(report.energy_j):.4f} mJ, QoS met: {report.met_qos}"
    )


if __name__ == "__main__":
    main()
