#!/usr/bin/env python3
"""Sweep the QoS budget and chart the energy/latency trade-off.

Shows how the optimizer spends latency slack: as the budget relaxes,
layers migrate from 216 MHz to lower clocks and larger DAE
granularities, and total energy falls until the unconstrained optimum
is reached.  Prints a text chart of normalized energy vs. slack for
the proposed approach and both baselines.

Run:  python examples/qos_sweep.py [model]    (model: vww | pd | mbv2)
"""

import sys

from repro import DAEDVFSPipeline, PAPER_MODELS
from repro.analysis import qos_energy_sweep, saturation_slack
from repro.units import to_mhz, to_mj


def bar(value: float, width: int = 40) -> str:
    filled = int(round(value * width))
    return "#" * filled + "." * (width - filled)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "vww"
    if name not in PAPER_MODELS:
        raise SystemExit(f"unknown model {name!r}; pick from {list(PAPER_MODELS)}")
    model = PAPER_MODELS[name]()
    pipeline = DAEDVFSPipeline()

    slacks = [0.05, 0.10, 0.20, 0.30, 0.40, 0.50, 0.75, 1.00]
    rows = qos_energy_sweep(pipeline, model, slacks)

    e_max = max(r.tinyengine_energy_j for r in rows)
    print(f"model {name}: normalized energy vs QoS slack "
          f"(normalized to the worst TinyEngine point)")
    print(f"{'slack':>6s} {'ours':>8s} {'TE':>8s} {'TE+CG':>8s} "
          f"{'mean f':>7s}  ours (bar)")
    for row in rows:
        print(
            f"{row.slack:6.0%} {to_mj(row.ours_energy_j):8.3f}"
            f" {to_mj(row.tinyengine_energy_j):8.3f}"
            f" {to_mj(row.clock_gated_energy_j):8.3f}"
            f" {to_mhz(row.mean_hfo_hz):5.0f}MHz"
            f"  {bar(row.ours_energy_j / e_max)}"
        )

    print("\nobservations:")
    first, last = rows[0], rows[-1]
    print(
        f"  savings vs TinyEngine: {first.savings_vs_tinyengine:.1%} at "
        f"tightest, {last.savings_vs_tinyengine:.1%} at most relaxed"
    )
    print(
        f"  our schedule saturates (stops improving) at "
        f"~{saturation_slack(rows):.0%} slack"
    )


if __name__ == "__main__":
    main()
